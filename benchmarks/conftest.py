"""Benchmark-suite plumbing.

Each benchmark test runs one paper experiment through the harness in
:mod:`repro.bench`, archives its ResultTable under
``benchmarks/results/``, and registers it for display; this hook prints
every collected table at the end of the session so
``pytest benchmarks/ --benchmark-only`` output contains the full
paper-vs-measured report alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

import pathlib

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_COLLECTED: list[tuple[str, str]] = []


def record_table(name: str, table) -> None:
    """Archive one experiment's output and queue it for the summary."""
    _RESULTS_DIR.mkdir(exist_ok=True)
    text = table.format()
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    _COLLECTED.append((name, text))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _COLLECTED:
        return
    terminalreporter.section("paper reproduction tables")
    for name, text in _COLLECTED:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
    terminalreporter.write_line("")
    terminalreporter.write_line(
        f"(archived under {_RESULTS_DIR}/ as <experiment>.txt)"
    )
