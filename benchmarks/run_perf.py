#!/usr/bin/env python
"""Run the tracked steps-per-second benchmark and write BENCH_walks.json.

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py            # full run
    PYTHONPATH=src python benchmarks/run_perf.py --quick    # CI smoke

The full run times the standard workloads (10k walkers, length 80,
LiveJournal stand-in at scale 1.0) and writes the report to
``BENCH_walks.json`` at the repository root, appending one point to the
repository's throughput trajectory.  ``--quick`` shrinks the workloads
(scale 0.1, 2k walkers, length 20) so CI can verify the
harness end-to-end in seconds; quick reports are written to the same
schema but flagged ``"quick": true`` and are not comparable to full
runs.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.perf import (  # noqa: E402
    OBS_OVERHEAD_LIMIT,
    STEP_ENGINE_FLOOR,
    enforce_engine_floor,
    enforce_obs_overhead,
    format_report,
    run_perf,
    write_report,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny workloads (CI smoke run)",
    )
    parser.add_argument(
        "--enforce-engine-floor",
        action="store_true",
        help=(
            "fail (exit 1) if the step-centric engine falls below "
            f"{STEP_ENGINE_FLOOR:.0%} of walker-centric throughput on "
            "any workload"
        ),
    )
    parser.add_argument(
        "--enforce-obs-overhead",
        action="store_true",
        help=(
            "fail (exit 1) if a disabled tracer costs more than "
            f"{OBS_OVERHEAD_LIMIT:.0%} of node2vec steps/sec versus an "
            "untraced run"
        ),
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per configuration (best is kept)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_walks.json",
        help="report path (default: BENCH_walks.json at the repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")
    if not args.output.parent.is_dir():
        # Fail before the (minutes-long) full run, not after it.
        parser.error(f"output directory does not exist: {args.output.parent}")

    report = run_perf(quick=args.quick, repeats=args.repeats)
    path = write_report(report, args.output)
    print(format_report(report))
    print(f"\nreport written to {path}")
    if args.enforce_engine_floor:
        failures = enforce_engine_floor(report)
        if failures:
            for failure in failures:
                print(f"ENGINE FLOOR VIOLATION: {failure}", file=sys.stderr)
            return 1
        print("engine floor check passed (step-centric vs walker-centric)")
    if args.enforce_obs_overhead:
        failures = enforce_obs_overhead(report)
        if failures:
            for failure in failures:
                print(f"OBS OVERHEAD VIOLATION: {failure}", file=sys.stderr)
            return 1
        print("obs overhead check passed (disabled tracer vs untraced)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
