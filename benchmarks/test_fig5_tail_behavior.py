"""Figure 5 — tail behaviour: random walk vs BFS."""

from repro.bench import fig5

from .conftest import record_table


def test_fig5(benchmark):
    table = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    record_table("fig5_tail_behavior", table)

    bfs_sizes, walk_active = fig5.tail_series()

    # BFS converges in a handful of iterations (paper: 12 on LiveJournal).
    assert len(bfs_sizes) < 30
    # The walk's tail is far longer...
    assert len(walk_active) > 10 * len(bfs_sizes)
    # ...and thinner: the last 20% of iterations hold under 2% of walkers.
    tail_start = int(0.8 * len(walk_active))
    assert max(walk_active[tail_start:]) < 0.02 * walk_active[0]
    # Active counts only shrink (fixed start population, no restarts).
    assert all(
        a >= b for a, b in zip(walk_active, walk_active[1:])
    )
