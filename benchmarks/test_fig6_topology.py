"""Figure 6 — sampling overhead vs graph topology (three sweeps)."""

import numpy as np

from repro.bench import fig6

from .conftest import record_table


def test_fig6a_density(benchmark):
    table = benchmark.pedantic(fig6.run_6a, rounds=1, iterations=1)
    record_table("fig6a_uniform_degree", table)

    degrees = [float(v) for v in table.column("degree")]
    full = [float(v) for v in table.column("full-scan edges/step")]
    knightking = [float(v) for v in table.column("KnightKing edges/step")]

    # Full-scan grows linearly with degree (strong correlation, slope ~1).
    correlation = np.corrcoef(degrees, full)[0, 1]
    assert correlation > 0.99
    assert full[-1] / full[0] > 0.5 * degrees[-1] / degrees[0]
    # KnightKing constant, below one evaluation per step (paper: ~0.75).
    assert max(knightking) < 1.2
    assert max(knightking) - min(knightking) < 0.3


def test_fig6b_skewness(benchmark):
    table = benchmark.pedantic(fig6.run_6b, rounds=1, iterations=1)
    record_table("fig6b_power_law_truncation", table)

    means = [float(v) for v in table.column("mean degree")]
    full = [float(v) for v in table.column("full-scan edges/step")]
    knightking = [float(v) for v in table.column("KnightKing edges/step")]

    # Paper: overhead grows 67x while mean degree grows 3.9x — the cost
    # grows much faster than the density.
    assert full[-1] / full[0] > 3 * (means[-1] / means[0])
    assert max(knightking) - min(knightking) < 0.3


def test_fig6c_hotspots(benchmark):
    table = benchmark.pedantic(fig6.run_6c, rounds=1, iterations=1)
    record_table("fig6c_hotspots", table)

    hotspots = [int(v) for v in table.column("hotspots")]
    full = [float(v) for v in table.column("full-scan edges/step")]
    knightking = [float(v) for v in table.column("KnightKing edges/step")]

    # Full-scan cost grows linearly with the number of hotspots.
    correlation = np.corrcoef(hotspots, full)[0, 1]
    assert correlation > 0.97
    assert full[-1] > 5 * full[0]
    # Rejection sampling is "boring as ever".
    assert max(knightking) - min(knightking) < 0.3
