"""Figure 7 — node2vec scalability, 1 to 8 simulated nodes."""

from repro.bench import fig7

from .conftest import record_table


def test_fig7(benchmark):
    table = benchmark.pedantic(fig7.run, rounds=1, iterations=1)
    record_table("fig7_scalability", table)

    kk_speedup = [float(v) for v in table.column("KnightKing speedup")]
    gemini_speedup = [float(v) for v in table.column("Gemini speedup")]
    kk_seconds = [float(v) for v in table.column("KnightKing (s)")]
    gemini_seconds = [float(v) for v in table.column("Gemini (s)")]

    # Both systems scale (sub-linearly) with node count.
    assert kk_speedup[-1] > 2.0
    assert gemini_speedup[-1] > 2.0
    assert kk_speedup[-1] < 8.0 and gemini_speedup[-1] < 8.0
    # They scale similarly (paper: "both systems scale quite similarly").
    assert abs(kk_speedup[-1] - gemini_speedup[-1]) < 0.5 * kk_speedup[-1]
    # KnightKing's absolute advantage holds at every cluster size
    # (paper: 20.9x at one node).
    for kk, gemini in zip(kk_seconds, gemini_seconds):
        assert gemini > 5 * kk
