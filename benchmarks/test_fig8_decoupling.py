"""Figure 8 — performance impact of decomposing Ps from Pd."""

from repro.bench import fig8

from .conftest import record_table


def test_fig8(benchmark):
    table = benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    record_table("fig8_decoupling", table)

    rows_by_distribution = {"uniform": [], "power-law": []}
    for row in table.rows:
        rows_by_distribution[row[0]].append(
            (float(row[1]), float(row[4]), float(row[5]))
        )  # (max_weight, mixed trials/step, decoupled trials/step)

    for distribution, rows in rows_by_distribution.items():
        mixed_first, mixed_last = rows[0][1], rows[-1][1]
        decoupled_first, decoupled_last = rows[0][2], rows[-1][2]
        # Mixed cost grows with the maximum weight...
        assert mixed_last > 1.3 * mixed_first, distribution
        # ...decoupled stays flat.
        assert decoupled_last < 1.2 * decoupled_first, distribution

    # Power-law weights hurt the mixed formulation more than uniform
    # ones (paper: "power-law weight assignment worsens this growth").
    uniform_growth = (
        rows_by_distribution["uniform"][-1][1]
        / rows_by_distribution["uniform"][0][1]
    )
    power_growth = (
        rows_by_distribution["power-law"][-1][1]
        / rows_by_distribution["power-law"][0][1]
    )
    assert power_growth > uniform_growth
