"""Figure 9 — impact of straggler-aware scheduling (light mode)."""

from repro.bench import fig9

from .conftest import record_table


def test_fig9(benchmark):
    table = benchmark.pedantic(
        fig9.run, kwargs={"scale": 0.5}, rounds=1, iterations=1
    )
    record_table("fig9_straggler", table)

    reductions = {}
    for row in table.rows:
        reductions[(row[0], row[1])] = float(row[4].rstrip("%"))

    # PPR (Pt = 0.149) benefits substantially — the long geometric tail
    # is most of its run (paper: average 37.2%, up to 66.1%).
    for dataset in ("livejournal", "friendster", "twitter"):
        assert reductions[("ppr", dataset)] > 15.0
    # node2vec's tail is shorter; the optimization must at least never
    # hurt materially (paper: average 16.3%; at simulator scale the
    # message-dominated main phase shrinks the win).
    for dataset in ("livejournal", "friendster", "twitter"):
        assert reductions[("node2vec", dataset)] > -2.0
