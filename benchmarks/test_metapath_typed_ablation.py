"""Ablation: three exact Meta-path strategies head-to-head.

Paper section 3 contrasts the general rejection-sampling approach with
the algorithm-specific per-edge-type precompute (Euler) and the naive
full scan.  This ablation runs all three exact implementations on the
same workload and compares per-step work and wall time:

* full scan — O(degree) Pd evaluations per step;
* rejection (KnightKing) — a few trials, a few Pd evaluations;
* typed tables — O(1), zero Pd evaluations, but Meta-path-only.
"""

from repro.algorithms import MetaPathWalk, random_schemes
from repro.baselines import FullScanWalkEngine, TypedMetaPathWalkEngine
from repro.bench.reporting import ResultTable
from repro.bench.workloads import (
    META_NUM_SCHEMES,
    META_NUM_TYPES,
    META_SCHEME_LENGTH,
)
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.datasets import load_dataset
from repro.graph.hetero import assign_random_edge_types

from .conftest import record_table


def run_ablation(scale: float = 0.4, walk_length: int = 40, seed: int = 0):
    graph = assign_random_edge_types(
        load_dataset("friendster", scale=scale), META_NUM_TYPES, seed=seed
    )
    schemes = random_schemes(
        META_NUM_SCHEMES, META_SCHEME_LENGTH, META_NUM_TYPES, seed=seed
    )
    config = WalkConfig(
        num_walkers=graph.num_vertices // 4, max_steps=walk_length, seed=seed
    )

    table = ResultTable(
        title="Ablation: exact Meta-path strategies (Friendster stand-in)",
        columns=["strategy", "Pd evals/step", "trials/step", "wall (s)"],
    )
    engines = (
        ("full scan", FullScanWalkEngine),
        ("rejection (KnightKing)", WalkEngine),
        ("typed tables (Euler)", TypedMetaPathWalkEngine),
    )
    measured = {}
    for name, engine_cls in engines:
        result = engine_cls(graph, MetaPathWalk(schemes), config).run()
        measured[name] = result.stats
        table.add_row(
            name,
            f"{result.stats.pd_evaluations_per_step:.2f}",
            f"{result.stats.trials_per_step:.2f}",
            f"{result.stats.wall_time_seconds:.2f}",
        )
    table.add_note(
        "typed tables win on Meta-path but cannot generalise to "
        "walker-history-dependent Pd (node2vec) — the paper's argument "
        "for rejection sampling as the general mechanism"
    )
    return table, measured


def test_metapath_typed_ablation(benchmark):
    table, measured = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_table("ablation_metapath_typed", table)

    full = measured["full scan"]
    rejection = measured["rejection (KnightKing)"]
    typed = measured["typed tables (Euler)"]

    # Cost ordering on the general metric.
    assert full.pd_evaluations_per_step > 10 * rejection.pd_evaluations_per_step
    assert typed.counters.pd_evaluations == 0
    # Typed tables accept every trial; rejection needs > 1 per step.
    assert typed.trials_per_step < rejection.trials_per_step
