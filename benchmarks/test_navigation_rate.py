"""Intro claim — vertex navigation rate: BFS vs node2vec."""

from repro.bench import navrate

from .conftest import record_table


def test_navigation_rate(benchmark):
    table = benchmark.pedantic(navrate.run, rounds=1, iterations=1)
    record_table("navigation_rate", table)

    rates = {
        row[0]: float(row[1].replace(",", "")) for row in table.rows
    }
    # Full-scan node2vec navigates orders of magnitude slower than BFS
    # (paper: up to 1434x on real Twitter).
    assert rates["BFS"] > 20 * rates["full-scan node2vec"]
    # Rejection sampling recovers most of the gap.
    assert rates["KnightKing node2vec"] > 5 * rates["full-scan node2vec"]
