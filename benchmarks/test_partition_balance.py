"""Partition balance — the section 6.1 design observation, quantified.

KnightKing's 1-D partition balances ``|V_i| + |E_i|`` per node, which
evens out *memory*; the paper notes this "may not produce evenly
distributed random walk processing or communication loads".  This
experiment measures, on every dataset stand-in:

* the memory balance ratio (max/mean of per-node |V_i| + |E_i|) — ~1 by
  construction;
* KnightKing's measured processing balance (trials + Pd evaluations per
  node during a node2vec walk) — also ~1, because rejection sampling
  makes per-step cost degree-independent; and
* the processing balance a *full-scan* sampler would have under the
  same vertex partition (per-node sum over visited vertices of their
  degree) — badly skewed on hub-dominated graphs, since the node owning
  a celebrity hub pays its entire out-edge scan on every visit.

The contrast quantifies a side benefit of the paper's core mechanism:
rejection sampling doesn't just cut total sampling work, it also
removes the load imbalance that degree-proportional work induces.
"""

import numpy as np

from repro.algorithms import Node2Vec
from repro.bench.reporting import ResultTable
from repro.bench.workloads import BENCH_DATASETS, NODE2VEC_P, NODE2VEC_Q
from repro.cluster import DistributedWalkEngine
from repro.core.config import WalkConfig
from repro.graph.datasets import load_dataset

from .conftest import record_table

NUM_NODES = 8


def full_scan_balance(graph, partition, paths) -> float:
    """max/mean per-node scan load if every visited vertex's out-edges
    were recomputed at its owner (the traditional sampler's cost)."""
    visits = np.zeros(graph.num_vertices, dtype=np.int64)
    for path in paths:
        # Every non-final position triggers one scan at that vertex.
        np.add.at(visits, path[:-1], 1)
    scan_load = visits * graph.out_degrees()
    owners = partition.owners(np.arange(graph.num_vertices))
    per_node = np.bincount(owners, weights=scan_load, minlength=NUM_NODES)
    mean = per_node.mean()
    return float(per_node.max() / mean) if mean > 0 else 1.0


def run_balance(scale: float = 0.3, walk_length: int = 20, seed: int = 0):
    table = ResultTable(
        title="Partition balance (paper section 6.1): memory vs processing, "
        "8 nodes, node2vec",
        columns=[
            "graph",
            "memory balance",
            "rejection processing",
            "full-scan processing",
        ],
    )
    measurements = {}
    for dataset in BENCH_DATASETS:
        graph = load_dataset(dataset, scale=scale)
        config = WalkConfig(
            num_walkers=graph.num_vertices,
            max_steps=walk_length,
            seed=seed,
            record_paths=True,
        )
        engine = DistributedWalkEngine(
            graph,
            Node2Vec(p=NODE2VEC_P, q=NODE2VEC_Q, biased=False),
            config,
            num_nodes=NUM_NODES,
        )
        memory_balance = engine.partition.balance_ratio()
        result = engine.run()
        rejection_balance = result.cluster.compute_balance()
        scan_balance = full_scan_balance(graph, engine.partition, result.paths)

        measurements[dataset] = (memory_balance, rejection_balance, scan_balance)
        table.add_row(
            dataset,
            f"{memory_balance:.3f}",
            f"{rejection_balance:.3f}",
            f"{scan_balance:.3f}",
        )
    table.add_note(
        "rejection sampling keeps processing as balanced as memory; "
        "degree-proportional full scans overload the nodes owning the "
        "hubs of skewed graphs"
    )
    return table, measurements


def test_partition_balance(benchmark):
    table, measurements = benchmark.pedantic(run_balance, rounds=1, iterations=1)
    record_table("partition_balance", table)

    for dataset, (memory, rejection, scan) in measurements.items():
        assert memory < 1.1, dataset
        assert 1.0 <= rejection < 1.3, dataset
        assert scan >= 1.0, dataset
    # Hub-dominated graphs: full-scan load concentrates on hub owners.
    assert measurements["twitter"][2] > 2 * measurements["twitter"][1]
    assert measurements["ukunion"][2] > 2 * measurements["ukunion"][1]
    # Mild graphs stay comparatively balanced even under full scans.
    assert measurements["livejournal"][2] < measurements["twitter"][2]
