"""Section 3 — second-order precompute memory (the 970TB/1.89PB claim)."""

from repro.bench import memory

from .conftest import record_table


def test_precompute_memory(benchmark):
    table = benchmark.pedantic(memory.run, rounds=1, iterations=1)
    record_table("precompute_memory", table)

    its_row, alias_row = table.rows
    its_terabytes = float(its_row[1].split()[0])
    alias_petabytes = float(alias_row[1].split()[0])

    # Paper: ~970 TB (ITS) and ~1.89 PB (alias) on the Twitter graph.
    assert 500 < its_terabytes < 2000
    assert 1.0 < alias_petabytes < 4.0
    # Alias costs twice ITS per entry (up to display rounding).
    assert abs(alias_petabytes * 1000 / its_terabytes - 2.0) < 0.05
