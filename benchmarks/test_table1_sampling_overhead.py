"""Table 1 — node2vec sampling overhead: full-scan vs KnightKing."""

from repro.bench import table1

from .conftest import record_table


def test_table1(benchmark):
    table = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    record_table("table1_sampling_overhead", table)

    full = [float(v) for v in table.column("full-scan edges/step")]
    knightking = [float(v) for v in table.column("KnightKing edges/step")]
    graphs = table.column("graph")

    # Paper shape: KnightKing needs < 1 Pd evaluation per step on both
    # graphs; full-scan needs orders of magnitude more, and more on the
    # skewed graph (Twitter) than on the mild one (Friendster).
    assert all(k < 1.2 for k in knightking)
    assert all(f > 50 * k for f, k in zip(full, knightking))
    by_graph = dict(zip(graphs, full))
    assert by_graph["twitter"] > 2 * by_graph["friendster"]
