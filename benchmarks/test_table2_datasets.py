"""Table 2 — dataset profiles: the stand-ins vs the paper's graphs.

Table 2 reports |V|, |E|, degree mean and degree variance for the four
real-world datasets.  This experiment prints the same columns for the
synthetic stand-ins (at bench scale) side-by-side with the paper's
values, and asserts the property the substitution must preserve: the
*skew ordering* (normalised degree variance LiveJournal < Friendster <
UK-Union, Twitter far above both mild graphs), which drives every
skew-dependent result in the evaluation.
"""

from repro.bench.reporting import ResultTable
from repro.graph.datasets import load_dataset

from .conftest import record_table

# Table 2 of the paper: (|V|, undirected |E|, degree mean, variance).
PAPER_PROFILES = {
    "livejournal": ("4.85M", "86.7M", 17.9, 2.72e3),
    "friendster": ("70.2M", "3.61B", 51.4, 1.62e4),
    "twitter": ("41.7M", "2.93B", 70.4, 6.42e6),
    "ukunion": ("134M", "9.39B", 70.3, 3.04e6),
}


def run_profiles(scale: float = 1.0):
    table = ResultTable(
        title="Table 2: dataset stand-in profiles vs the paper's graphs",
        columns=[
            "graph",
            "|V| (stand-in / paper)",
            "|E| (stand-in / paper)",
            "deg mean (s/p)",
            "normalised variance (s/p)",
        ],
    )
    measurements = {}
    for name, (paper_v, paper_e, paper_mean, paper_var) in PAPER_PROFILES.items():
        graph = load_dataset(name, scale=scale)
        stats = graph.degree_stats()
        normalised = stats.variance / stats.mean**2
        paper_normalised = paper_var / paper_mean**2
        measurements[name] = normalised
        table.add_row(
            name,
            f"{graph.num_vertices:,} / {paper_v}",
            f"{graph.num_edges:,} / {paper_e}",
            f"{stats.mean:.1f} / {paper_mean}",
            f"{normalised:.2f} / {paper_normalised:.2f}",
        )
    table.add_note(
        "the stand-ins preserve the skew ordering (normalised variance), "
        "the property every skew-dependent result in the evaluation "
        "depends on; absolute sizes are scaled to simulator reach"
    )
    return table, measurements


def test_table2(benchmark):
    table, measurements = benchmark.pedantic(run_profiles, rounds=1, iterations=1)
    record_table("table2_datasets", table)

    # Skew ordering as in the paper's Table 2.
    assert measurements["livejournal"] < measurements["friendster"]
    assert measurements["friendster"] < measurements["ukunion"]
    assert measurements["friendster"] < measurements["twitter"]
    # Twitter/UK are an order of magnitude above the mild graphs.
    assert measurements["twitter"] > 10 * measurements["livejournal"]
    assert measurements["ukunion"] > 10 * measurements["livejournal"]
