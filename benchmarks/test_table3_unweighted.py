"""Table 3 — overall performance on unweighted graphs."""

from repro.bench import tables34

from .conftest import record_table


def test_table3(benchmark):
    table = benchmark.pedantic(
        tables34.run, kwargs={"weighted": False}, rounds=1, iterations=1
    )
    record_table("table3_unweighted", table)

    speedups = {}
    for row in table.rows:
        algorithm, dataset = row[0], row[1]
        speedups[(algorithm, dataset)] = float(row[4].rstrip("*"))

    # KnightKing wins everywhere.
    assert all(value > 1.0 for value in speedups.values())
    # Static gaps are modest (one order of magnitude)...
    for dataset in ("livejournal", "friendster", "twitter", "ukunion"):
        assert 1.5 < speedups[("DeepWalk", dataset)] < 30
    # ...while dynamic gaps on the skewed graphs are far larger.
    assert speedups[("node2vec", "twitter")] > 2 * speedups[("DeepWalk", "twitter")]
    assert speedups[("node2vec", "ukunion")] > 2 * speedups[("DeepWalk", "ukunion")]
    # Meta-path also pays the full-scan price.
    assert speedups[("Meta-path", "friendster")] > speedups[("DeepWalk", "friendster")]
