"""Table 4 — overall performance on weighted graphs."""

from repro.bench import tables34

from .conftest import record_table


def test_table4(benchmark):
    table = benchmark.pedantic(
        tables34.run, kwargs={"weighted": True}, rounds=1, iterations=1
    )
    record_table("table4_weighted", table)

    rows = {(row[0], row[1]): row for row in table.rows}
    speedups = {
        key: float(row[4].rstrip("*")) for key, row in rows.items()
    }
    assert all(value > 1.0 for value in speedups.values())

    # Paper: "whether the graph is weighted plays little role for
    # node2vec, due to the dominance of connectivity check cost" — the
    # dynamic gaps stay explosive on the skewed graphs.
    assert speedups[("node2vec", "twitter")] > 2 * speedups[("DeepWalk", "twitter")]
    assert speedups[("Meta-path", "ukunion")] > speedups[("DeepWalk", "ukunion")]
