"""Table 5 — lower-bound and outlier optimizations on node2vec."""

from repro.bench import table5

from .conftest import record_table


def test_table5a(benchmark):
    table = benchmark.pedantic(table5.run_5a, rounds=1, iterations=1)
    record_table("table5a_lower_bound", table)

    evals = [float(v) for v in table.column("edges/step")]
    # Rows come in (naive, lower-bound) pairs per (p, q) setting.
    for naive, lower in zip(evals[::2], evals[1::2]):
        assert lower <= naive
    # p=0.5, q=2 is the most expensive setting under naive sampling.
    assert evals[2] == max(evals)
    # p=1, q=1 with the lower bound needs zero Pd evaluations (paper: 0.00).
    assert evals[5] == 0.0


def test_table5b(benchmark):
    table = benchmark.pedantic(table5.run_5b, rounds=1, iterations=1)
    record_table("table5b_outlier_ablation", table)

    evals = {row[0]: float(row[2]) for row in table.rows}
    # Paper ordering: naive (3.60) > L (2.70) > O (1.81) > L+O (0.91).
    assert evals["naive"] > evals["L"] > evals["O"] > evals["L+O"]
    # Combined optimizations cut evaluations by well over half
    # (paper: 75% reduction).
    assert evals["L+O"] < 0.45 * evals["naive"]
