"""Defining a new random walk algorithm with the WalkerProgram API.

This example implements a *hub-averse* walk from scratch — an algorithm
the library does not ship — using exactly the hooks the paper's API
exposes (edgeStaticComp / edgeDynamicComp / bounds):

* Ps: uniform (unbiased candidates);
* Pd(e) = 1 / sqrt(out_degree(target(e))) — the walker prefers quiet
  neighbourhoods over celebrity hubs, a useful bias when sampling
  training data from skewed social graphs;
* bounds: because Pd depends only on static graph structure here, tight
  *per-vertex* envelopes can be pre-computed: Q(v) is the max of Pd over
  v's out-edges and L(v) the min.  This shows off non-constant bounds —
  node2vec only ever needed constants.

Note the division of labour: the program supplies three small
functions, and the engine delivers exact sampling with near-one trials
per step on any topology.

Run with:  python examples/custom_walk.py
"""

import numpy as np

from repro import WalkConfig, WalkEngine, WalkerProgram
from repro.graph import twitter_like


class HubAverseWalk(WalkerProgram):
    """Walk biased away from high-degree vertices."""

    name = "hub-averse"
    dynamic = True
    order = 1
    supports_batch = True

    # --- Pd: prefer low-degree targets ------------------------------
    def edge_dynamic_comp(self, graph, walker, edge_index, query_result=None):
        degree = graph.out_degree(int(graph.targets[edge_index]))
        return 1.0 / np.sqrt(max(degree, 1))

    def batch_dynamic_comp(self, graph, walkers, walker_ids, candidate_edges):
        degrees = graph.out_degrees()[graph.targets[candidate_edges]]
        return 1.0 / np.sqrt(np.maximum(degrees, 1))

    # --- tight per-vertex bounds, pre-computed at init --------------
    def upper_bound_array(self, graph):
        return self._bound(graph, np.maximum.reduceat)

    def lower_bound_array(self, graph):
        return self._bound(graph, np.minimum.reduceat)

    @staticmethod
    def _bound(graph, reducer):
        values = 1.0 / np.sqrt(
            np.maximum(graph.out_degrees()[graph.targets], 1)
        )
        bounds = np.ones(graph.num_vertices)
        starts = graph.offsets[:-1]
        nonempty = graph.out_degrees() > 0
        if nonempty.any():
            reduced = reducer(values, starts[nonempty])
            bounds[nonempty] = reduced
        return bounds


def mean_visited_degree(graph, paths):
    degrees = graph.out_degrees()
    total = count = 0
    for path in paths:
        total += int(degrees[path[1:]].sum())
        count += len(path) - 1
    return total / max(count, 1)


def main() -> None:
    graph = twitter_like(scale=0.25)
    print(f"graph: {graph}")
    print(f"degrees: {graph.degree_stats()}")

    config = WalkConfig(num_walkers=2000, max_steps=30, record_paths=True, seed=5)

    plain = WalkEngine(graph, WalkerProgram(), config).run()
    averse = WalkEngine(graph, HubAverseWalk(), config).run()

    print(f"\nplain walk:      {plain.stats.summary()}")
    print(f"hub-averse walk: {averse.stats.summary()}")
    print(
        f"\nmean degree of visited vertices, plain:      "
        f"{mean_visited_degree(graph, plain.paths):8.1f}"
    )
    print(
        f"mean degree of visited vertices, hub-averse: "
        f"{mean_visited_degree(graph, averse.paths):8.1f}"
    )
    print(
        "\nThe custom bias steers walkers away from celebrity hubs, and "
        f"costs only {averse.stats.pd_evaluations_per_step:.2f} Pd "
        "evaluations per step thanks to the tight per-vertex envelopes."
    )


if __name__ == "__main__":
    main()
