"""Distributed execution: KnightKing vs a Gemini-style graph engine.

Runs the same node2vec workload on the 8-node cluster simulator under
both systems and prints what actually differs: transition-probability
evaluations, messages on the wire, and simulated run time.  This is a
miniature of the paper's Tables 3/4 experiment.

Run with:  python examples/distributed_simulation.py
"""

from repro import WalkConfig
from repro.algorithms import DeepWalk, Node2Vec
from repro.baselines import GeminiWalkEngine
from repro.cluster import DistributedWalkEngine
from repro.graph import twitter_like


def run_both(graph, make_program, config, num_nodes=8):
    rows = []
    for name, engine_cls in (
        ("Gemini", GeminiWalkEngine),
        ("KnightKing", DistributedWalkEngine),
    ):
        result = engine_cls(graph, make_program(), config, num_nodes=num_nodes).run()
        rows.append(
            (
                name,
                result.stats.pd_evaluations_per_step,
                result.cluster.network.total_messages(),
                result.cluster.simulated_seconds,
            )
        )
    return rows


def print_rows(title, rows):
    print(f"\n{title}")
    print(f"  {'system':12} {'Pd evals/step':>14} {'messages':>12} {'sim time':>10}")
    for name, evals, messages, seconds in rows:
        print(f"  {name:12} {evals:14.2f} {messages:12d} {seconds:9.4f}s")
    speedup = rows[0][3] / rows[1][3]
    print(f"  -> KnightKing speedup: {speedup:.1f}x")


def main() -> None:
    graph = twitter_like(scale=0.25)
    print(f"graph: {graph} (Twitter-like skew)")

    static_config = WalkConfig(num_walkers=2000, max_steps=40, seed=1)
    print_rows(
        "static walk (DeepWalk): the gap is communication",
        run_both(graph, DeepWalk, static_config),
    )

    dynamic_config = WalkConfig(num_walkers=1000, max_steps=40, seed=1)
    print_rows(
        "dynamic walk (node2vec): the gap explodes with per-step scans",
        run_both(
            graph,
            lambda: Node2Vec(p=2.0, q=0.5, biased=False),
            dynamic_config,
        ),
    )


if __name__ == "__main__":
    main()
