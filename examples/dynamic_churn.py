"""Walking a graph that changes under you: follow/unfollow churn.

A recommendation service keeps a social graph hot while users follow
and unfollow each other all day.  This example shows the dynamic-graph
contract end to end:

* **epoch-snapshot isolation** — every walk pins the epoch that was
  current when it started; commits racing with it are invisible until
  the next walk;
* **WAL-backed durability** — every committed batch is in the
  write-ahead log before it is visible, so a crash (simulated here as
  a torn append) recovers exactly to the last committed epoch;
* **incremental sampler maintenance** — alias tables are patched per
  touched vertex each epoch, with self-verification probes
  cross-checking against a full rebuild.

Run with:  python examples/dynamic_churn.py
"""

import tempfile
from pathlib import Path

from repro import WalkConfig, WalkEngine
from repro.algorithms import PPR
from repro.graph import twitter_like
from repro.graph.dynamic import DynamicGraph, generate_churn_batches
from repro.graph.wal import _InjectedCrash


def top_visited(result, count=5):
    """The walk's most-visited vertices — the 'recommendations'."""
    visits = {}
    for path in result.paths:
        for vertex in path[1:]:
            visits[int(vertex)] = visits.get(int(vertex), 0) + 1
    ranked = sorted(visits.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:count]


def main():
    graph = twitter_like(0.02, seed=11)  # ~300-vertex stand-in
    config = WalkConfig(
        num_walkers=300, max_steps=25, termination_probability=0.15,
        record_paths=True, seed=42,
    )

    with tempfile.TemporaryDirectory() as scratch:
        wal_path = Path(scratch) / "social.wal"
        dynamic = DynamicGraph(
            graph, wal_path=wal_path, verify="sample", seed=42
        )

        # --- day 0: recommendations on the initial graph -----------
        result = WalkEngine(dynamic, PPR(), config).run()
        print(f"epoch {result.stats.graph_epoch}: "
              f"top accounts {top_visited(result)}")

        # --- churn: three epochs of follows/unfollows ---------------
        for batch in generate_churn_batches(
            graph, num_epochs=3, updates_per_epoch=120, seed=7
        ):
            dynamic.commit(batch)
        stats = dynamic.stats
        print(f"committed {stats.epochs_committed} epochs "
              f"({stats.inserts_applied} follows, "
              f"{stats.deletes_applied} unfollows, "
              f"{stats.reweights_applied} reweights)")

        result = WalkEngine(dynamic, PPR(), config).run()
        print(f"epoch {result.stats.graph_epoch}: "
              f"top accounts {top_visited(result)}")
        maintenance = result.stats.maintenance
        print(f"sampler upkeep: {maintenance.vertices_rebuilt} vertex "
              f"slices rebuilt, {maintenance.vertices_copied} copied, "
              f"{maintenance.verify_checks} verification probes, "
              f"{maintenance.verify_mismatches} mismatches")

        # --- crash mid-append, then recover from the WAL ------------
        doomed = generate_churn_batches(
            dynamic.snapshot().graph, num_epochs=1,
            updates_per_epoch=50, seed=13,
        )[0]
        dynamic.wal.inject_crash_after_bytes = 5
        try:
            dynamic.commit(doomed)
        except _InjectedCrash:
            print("crash injected mid-append: epoch 4 torn off the log")
        dynamic.close()

        recovered = DynamicGraph.recover(graph, wal_path, seed=42)
        report = recovered.stats.recovery
        print(f"recovered to epoch {recovered.epoch} "
              f"({report.records_replayed} records replayed, "
              f"{report.bytes_truncated} torn bytes truncated, "
              f"conservation {'balanced' if report.balanced() else 'VIOLATED'})")

        rerun = WalkEngine(recovered, PPR(), config).run()
        identical = all(
            len(a) == len(b) and (a == b).all()
            for a, b in zip(result.paths, rerun.paths)
        )
        print("post-recovery walk is "
              + ("bit-identical to the pre-crash walk"
                 if identical else "DIFFERENT (bug!)"))
        recovered.close()


if __name__ == "__main__":
    main()
