"""End-to-end network embedding: walks -> skip-gram -> link prediction.

This is the full application pipeline the paper's workloads exist for:
DeepWalk/node2vec generate walk corpora, a skip-gram model turns them
into vertex embeddings, and the embeddings solve a downstream task.
Everything runs inside this repository — the walk engine, the SGNS
trainer, and the evaluation.

The task here is link prediction on a community-structured graph:
embeddings trained on node2vec walks should score true edges above
random non-edges (AUC well over 0.5).

Run with:  python examples/embedding_pipeline.py
"""

import numpy as np

from repro import WalkConfig, WalkEngine
from repro.algorithms import Node2Vec
from repro.embedding import SkipGramModel, link_prediction_auc, sample_edge_split
from repro.graph import from_arrays


def community_graph(num_communities, size, internal_degree, external_degree, seed):
    rng = np.random.default_rng(seed)
    num_vertices = num_communities * size
    sources, targets = [], []
    for vertex in range(num_vertices):
        base = (vertex // size) * size
        for target in base + rng.integers(0, size, size=internal_degree):
            if target != vertex:
                sources.append(vertex)
                targets.append(int(target))
        for target in rng.integers(0, num_vertices, size=external_degree):
            if target != vertex:
                sources.append(vertex)
                targets.append(int(target))
    return from_arrays(
        num_vertices, np.asarray(sources), np.asarray(targets), undirected=True
    )


def main() -> None:
    graph = community_graph(
        num_communities=6, size=80, internal_degree=6, external_degree=1, seed=1
    )
    print(f"graph: {graph} (6 planted communities of 80)")

    # 1. Generate node2vec walks (local bias keeps walks in-community).
    config = WalkConfig(
        num_walkers=2 * graph.num_vertices,
        max_steps=30,
        record_paths=True,
        seed=2,
    )
    program = Node2Vec(p=1.0, q=2.0, biased=False)
    result = WalkEngine(graph, program, config).run()
    print(f"walks: {result.stats.summary()}")

    # 2. Train skip-gram embeddings on the corpus.
    model = SkipGramModel(graph.num_vertices, dimension=32, seed=3)
    loss = model.train(result.paths, window=4, negatives=5, epochs=8)
    print(f"skip-gram trained, final batch loss {loss:.3f}")

    # 3. Evaluate: do embeddings separate edges from non-edges?
    positives, negatives = sample_edge_split(graph, num_pairs=400, seed=4)
    auc = link_prediction_auc(model.embeddings, positives, negatives)
    print(f"link prediction AUC: {auc:.3f} (0.5 = random guessing)")

    # 4. Inspect: nearest neighbours live in the same community.
    probe = 40  # community 0
    neighbours = model.most_similar(probe, top_k=5)
    print(f"\nnearest neighbours of vertex {probe} (community 0):")
    same = 0
    for vertex, score in neighbours:
        community = vertex // 80
        same += community == 0
        print(f"  vertex {vertex:4d}  cosine {score:.3f}  community {community}")
    print(f"{same}/5 in the same community")


if __name__ == "__main__":
    main()
