"""Fault-tolerant distributed walking: chaos with receipts.

Runs the same node2vec workload twice on the 4-node cluster simulator —
once on a healthy cluster, once under a hostile fault plan (a node
crash mid-walk plus message drops, duplicates, and delays on every
protocol message) — and shows the engine's two guarantees:

* the *walk is unchanged*: reliable delivery plus checkpoint/replay
  recovery make the faulty run bit-identical to the healthy one, and
* the *cost is itemised*: retransmissions, dedup discards, checkpoints,
  and replayed supersteps all land on the simulated-time bill.

Run with:  python examples/fault_tolerance.py
"""

import numpy as np

from repro import WalkConfig
from repro.algorithms import Node2Vec
from repro.cluster import (
    DistributedWalkEngine,
    FaultPlan,
    MessageFaults,
    NodeCrash,
)
from repro.graph import twitter_like

NUM_NODES = 4


def run(graph, config, fault_plan=None):
    engine = DistributedWalkEngine(
        graph,
        Node2Vec(p=2.0, q=0.5, biased=False),
        config,
        num_nodes=NUM_NODES,
        fault_plan=fault_plan,
        checkpoint_every=6 if fault_plan is not None else None,
    )
    return engine.run()


def main() -> None:
    graph = twitter_like(scale=0.05)
    config = WalkConfig(num_walkers=400, max_steps=30, record_paths=True, seed=7)
    print(f"graph: {graph} on {NUM_NODES} simulated nodes")

    plan = FaultPlan(
        seed=23,
        crashes=(NodeCrash(superstep=5, node=1),),
        default_faults=MessageFaults(drop=0.08, duplicate=0.04, delay=0.03),
    )
    healthy = run(graph, config)
    chaotic = run(graph, config, fault_plan=plan)

    identical = all(
        np.array_equal(a, b) for a, b in zip(healthy.paths, chaotic.paths)
    )
    print(f"\nwalks bit-identical under faults: {identical}")
    chaotic.cluster.delivery.check_conservation()
    print("delivery conservation laws: OK (exactly-once migration)")

    print("\nhealthy run")
    print("  " + healthy.cluster.report().replace("\n", "\n  "))
    print("chaotic run")
    print("  " + chaotic.cluster.report().replace("\n", "\n  "))

    overhead = (
        chaotic.cluster.simulated_seconds / healthy.cluster.simulated_seconds
        - 1.0
    )
    print(f"\nrobustness bill: +{overhead:.1%} simulated time")


if __name__ == "__main__":
    main()
