"""Fault-tolerant distributed walking: chaos with receipts.

Runs the same node2vec workload on the 4-node cluster simulator —
once on a healthy cluster, once under a hostile message/crash plan,
and once on a *degraded* cluster (a ramping straggler node plus a
flaky high-RTT link, the CLI's ``--fault-slowdown`` /
``--fault-flaky-link`` flags) — and shows the engine's guarantees:

* the *walk is unchanged*: reliable delivery, checkpoint/replay
  recovery, speculation, and rebalancing never touch the walk RNG, so
  every faulty run is bit-identical to the healthy one;
* the *cost is itemised*: retransmissions, dedup discards, checkpoints,
  replayed supersteps, speculative copies, and migrated walkers all
  land on the simulated-time bill; and
* the *straggler is contained*: the failure detector flags the slow
  node, timers adapt to the flaky link, and speculation + rebalancing
  pull the barrier time back toward the healthy nodes' pace.

Run with:  python examples/fault_tolerance.py
"""

import numpy as np

from repro import WalkConfig
from repro.algorithms import Node2Vec
from repro.cluster import (
    DistributedWalkEngine,
    FaultPlan,
    FlakyLink,
    MessageFaults,
    NodeCrash,
    NodeSlowdown,
    StragglerPolicy,
)
from repro.graph import twitter_like

NUM_NODES = 4


def run(graph, config, fault_plan=None, straggler_policy=None):
    engine = DistributedWalkEngine(
        graph,
        Node2Vec(p=2.0, q=0.5, biased=False),
        config,
        num_nodes=NUM_NODES,
        fault_plan=fault_plan,
        checkpoint_every=6 if fault_plan is not None else None,
        straggler_policy=straggler_policy,
    )
    return engine.run()


def main() -> None:
    graph = twitter_like(scale=0.05)
    config = WalkConfig(num_walkers=400, max_steps=30, record_paths=True, seed=7)
    print(f"graph: {graph} on {NUM_NODES} simulated nodes")

    plan = FaultPlan(
        seed=23,
        crashes=(NodeCrash(superstep=5, node=1),),
        default_faults=MessageFaults(drop=0.08, duplicate=0.04, delay=0.03),
    )
    # The degraded-cluster plan: node 1 ramps to 5x slower from
    # superstep 2, and the 0<->2 link drops/delays messages at a 4x RTT.
    # CLI equivalent:
    #   repro walk ... --nodes 4 --fault-slowdown 1:5.0:2:4 \
    #       --fault-flaky-link 0:2:0.2:0.25
    degraded_plan = FaultPlan(
        seed=23,
        slowdowns=(NodeSlowdown(node=1, factor=5.0, start_superstep=2,
                                ramp_supersteps=4),),
        flaky_links=(FlakyLink(a=0, b=2,
                               faults=MessageFaults(drop=0.2, delay=0.25),
                               rtt_factor=4.0),),
    )
    healthy = run(graph, config)
    chaotic = run(graph, config, fault_plan=plan)
    degraded = run(graph, config, fault_plan=degraded_plan)
    # Same degraded cluster with the tolerance stack switched off:
    # every barrier waits for the straggler at full stretch.
    naive = run(
        graph, config, fault_plan=degraded_plan,
        straggler_policy=StragglerPolicy(speculate=False, rebalance=False),
    )

    identical = all(
        np.array_equal(a, b)
        for run_paths in (chaotic.paths, degraded.paths, naive.paths)
        for a, b in zip(healthy.paths, run_paths)
    )
    print(f"\nwalks bit-identical under faults: {identical}")
    for result in (chaotic, degraded, naive):
        result.cluster.delivery.check_conservation()
    print("delivery conservation laws: OK (exactly-once migration)")

    print("\nhealthy run")
    print("  " + healthy.cluster.report().replace("\n", "\n  "))
    print("chaotic run (crash + message faults)")
    print("  " + chaotic.cluster.report().replace("\n", "\n  "))
    print("degraded run (straggler + flaky link, tolerance on)")
    print("  " + degraded.cluster.report().replace("\n", "\n  "))

    overhead = (
        chaotic.cluster.simulated_seconds / healthy.cluster.simulated_seconds
        - 1.0
    )
    print(f"\nrobustness bill: +{overhead:.1%} simulated time")
    saved = 1.0 - (
        degraded.cluster.simulated_seconds / naive.cluster.simulated_seconds
    )
    print(
        "straggler tolerance: "
        f"{degraded.cluster.simulated_seconds:.4f}s vs "
        f"{naive.cluster.simulated_seconds:.4f}s naive "
        f"({saved:.1%} of the straggler tax recovered)"
    )


if __name__ == "__main__":
    main()
