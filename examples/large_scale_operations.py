"""Operating long walks: parallel sharding and checkpoint/resume.

Production walk jobs (|V| walkers x hundreds of steps) want two
operational features beyond a single blocking run:

* **parallelism** — walkers never interact, so sharding them across
  worker processes is exact (`repro.parallel`).  It pays off for
  *scalar* custom programs (one Python call per trial); the built-in
  algorithms' vectorised kernels are usually faster than any amount of
  multiprocessing;
* **fault tolerance** — a long walk can be checkpointed mid-flight and
  resumed bit-identically (`repro.core.snapshot`).

This example runs the same PPR workload three ways — single engine,
4-way parallel, and interrupted+resumed — and shows all three agree.

Run with:  python examples/large_scale_operations.py
"""

import multiprocessing
import os
import tempfile
import time

import numpy as np

from repro import WalkConfig, WalkEngine, WalkerProgram
from repro.algorithms import PPR
from repro.core.snapshot import restore_checkpoint, save_checkpoint
from repro.graph import friendster_like
from repro.parallel import run_parallel_walk


class ScalarUniformWalk(WalkerProgram):
    """A custom program with no batch hooks: the engine runs it one
    Python call per trial, the regime where process sharding shines."""

    name = "scalar-uniform"


def main() -> None:
    graph = friendster_like(scale=0.25)
    print(f"graph: {graph}")
    config = WalkConfig(
        num_walkers=graph.num_vertices,
        max_steps=None,
        termination_probability=1.0 / 80.0,
        seed=11,
        # ITS tables build in O(|E|) vectorised time, keeping each
        # parallel worker's engine initialisation cheap.
        static_sampler="its",
    )

    # 1. Baseline: one engine, one process, scalar program.
    started = time.perf_counter()
    single = WalkEngine(graph, ScalarUniformWalk(), config).run()
    single_seconds = time.perf_counter() - started
    print(
        f"\nsingle engine:   {single.stats.total_steps:,} steps, "
        f"mean length {single.walk_lengths.mean():.1f}, "
        f"{single_seconds:.2f}s"
    )

    # 2. Parallel: the same scalar workload sharded across workers.
    workers = min(4, multiprocessing.cpu_count())
    started = time.perf_counter()
    parallel = run_parallel_walk(
        graph, ScalarUniformWalk(), config, num_workers=workers
    )
    parallel_seconds = time.perf_counter() - started
    print(
        f"{workers}-way parallel:  {parallel.stats.total_steps:,} steps, "
        f"mean length {parallel.walk_lengths.mean():.1f}, "
        f"{parallel_seconds:.2f}s ({single_seconds / parallel_seconds:.1f}x; "
        f"this machine exposes {multiprocessing.cpu_count()} CPU core(s))"
    )

    # 3. Fault tolerance: interrupt after 40 iterations, checkpoint,
    #    resume in a fresh engine, finish the walk (back on the fast
    #    vectorised PPR program).
    engine = WalkEngine(graph, PPR(), config)
    engine.run(max_iterations=40)
    active_at_interrupt = engine.walkers.num_active
    with tempfile.TemporaryDirectory() as scratch:
        checkpoint = os.path.join(scratch, "walk.npz")
        save_checkpoint(engine, checkpoint)
        size_kb = os.path.getsize(checkpoint) / 1024
        resumed_engine = restore_checkpoint(graph, PPR(), config, checkpoint)
        resumed = resumed_engine.run()
    print(
        f"resumed run:     {resumed.stats.total_steps:,} steps "
        f"(interrupted with {active_at_interrupt:,} walkers active; "
        f"checkpoint {size_kb:.0f} KiB)"
    )

    # All three executions sample the same law: compare mean lengths.
    lengths = np.array(
        [
            single.walk_lengths.mean(),
            parallel.walk_lengths.mean(),
            resumed.walk_lengths.mean(),
        ]
    )
    spread = lengths.max() - lengths.min()
    print(
        f"\nmean walk lengths across executions: "
        f"{lengths.round(2).tolist()} (spread {spread:.2f}) — "
        "same distribution, three operating modes."
    )


if __name__ == "__main__":
    main()
