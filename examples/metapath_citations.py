"""Meta-path walks over a heterogeneous bibliographic network.

The paper motivates meta-paths with a publications graph: to probe
citation relationships between *authors*, constrain the walk to the
cyclic pattern

    writes -> cites -> written-by

so every third stop is again an author, reached through a paper that
cites one of the previous author's papers.  This example builds such a
graph, runs the constrained walk, and aggregates which authors are most
often reached from a seed author — a simple citation-influence measure.

Run with:  python examples/metapath_citations.py
"""

from collections import Counter

import numpy as np

from repro import WalkConfig, WalkEngine
from repro.algorithms import MetaPathWalk
from repro.graph import BibliographicSchema, bibliographic_graph


def main() -> None:
    schema = BibliographicSchema()
    num_authors = 200
    graph = bibliographic_graph(
        num_authors=num_authors,
        num_papers=600,
        papers_per_author=5,
        citations_per_paper=4,
        seed=11,
    )
    print(f"graph: {graph} ({num_authors} authors, 600 papers)")

    # The paper's example scheme, as a cyclic edge-type template.
    scheme = [schema.EDGE_WRITES, schema.EDGE_CITES, schema.EDGE_WRITTEN_BY]
    program = MetaPathWalk([scheme])

    seed_author = 17
    num_walkers = 5000
    config = WalkConfig(
        num_walkers=num_walkers,
        max_steps=9,  # three full scheme cycles
        record_paths=True,
        seed=2,
        start_vertices=np.full(num_walkers, seed_author, dtype=np.int64),
    )
    result = WalkEngine(graph, program, config).run()
    print(f"walks: {result.stats.summary()}")
    print(
        f"dead-ended walks (no edge of the required type): "
        f"{result.stats.termination.by_dead_end}"
    )

    # Authors visited at scheme-cycle boundaries (positions 3, 6, 9).
    influence: Counter[int] = Counter()
    for path in result.paths:
        for position in range(3, len(path), 3):
            author = int(path[position])
            if author != seed_author:
                influence[author] += 1

    print(f"\nauthors most cited (transitively) by author {seed_author}:")
    for author, count in influence.most_common(8):
        assert graph.vertex_types[author] == schema.VERTEX_AUTHOR
        print(f"  author {author:4d}  reached {count:4d} times")


if __name__ == "__main__":
    main()
