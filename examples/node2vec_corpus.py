"""node2vec corpus generation: the BFS/DFS knob in action.

node2vec's p (return) and q (in-out) hyper-parameters shape the walks:
low q explores outwards (DFS-like), high q stays local (BFS-like).
This example generates walk corpora under both regimes on a skewed
social-graph stand-in and quantifies the difference directly on the
walks — the number of *distinct* vertices each walk touches, and how
often walks immediately backtrack.

The corpora this produces are exactly what one would feed to a
skip-gram trainer for network embeddings.

Run with:  python examples/node2vec_corpus.py
"""

import numpy as np

from repro import WalkConfig, WalkEngine
from repro.algorithms import Node2Vec
from repro.graph import friendster_like


def corpus_statistics(paths) -> tuple[float, float]:
    """(mean distinct vertices per walk, immediate-backtrack rate)."""
    distinct = []
    backtracks = 0
    transitions = 0
    for path in paths:
        distinct.append(len(set(path.tolist())))
        for position in range(2, len(path)):
            transitions += 1
            if path[position] == path[position - 2]:
                backtracks += 1
    return float(np.mean(distinct)), backtracks / max(transitions, 1)


def main() -> None:
    graph = friendster_like(scale=0.2)
    print(f"graph: {graph}")

    settings = {
        "exploratory (p=4, q=0.25, DFS-like)": dict(p=4.0, q=0.25),
        "local       (p=0.25, q=4, BFS-like)": dict(p=0.25, q=4.0),
    }
    config = WalkConfig(
        num_walkers=2000, max_steps=40, record_paths=True, seed=3
    )

    print(f"{'setting':44}  distinct/walk  backtrack rate  edges/step")
    for label, params in settings.items():
        program = Node2Vec(biased=False, **params)
        result = WalkEngine(graph, program, config).run()
        distinct, backtrack = corpus_statistics(result.paths)
        print(
            f"{label:44}  {distinct:13.1f}  {backtrack:14.3f}  "
            f"{result.stats.pd_evaluations_per_step:10.2f}"
        )

    print(
        "\nThe exploratory setting covers far more distinct vertices per "
        "walk;\nthe local setting revisits and backtracks - exactly the "
        "node2vec paper's\nBFS/DFS interpolation, produced here with exact "
        "rejection sampling."
    )


if __name__ == "__main__":
    main()
