"""The serving layer under a bursty overload.

A walk engine behind real traffic needs more than speed: when requests
arrive faster than they can be served, *something* has to give, and it
should give explicitly.  This example drives a bursty mixed stream —
cheap interactive walks, heavy corpus jobs, deadline-tight queries,
and the occasional malformed (poison) request — through
:class:`repro.service.WalkService` and shows the four robustness
layers working together:

* the bounded admission queue sheds excess load with a priority-aware
  eviction policy (every shed names its reason);
* deadlines propagate into the engine's chunked run loop, so a
  too-slow request returns a *well-formed partial* walk instead of
  nothing;
* under pressure, requests are degraded (paths dropped, steps capped)
  rather than shed, and each response lists what was taken away;
* poison requests fail cleanly without taking a worker down.

At the end the books must balance exactly:
``submitted == served + shed + failed``.

Run with:  python examples/overload.py
"""

import time

from repro.algorithms import DeepWalk, UniformWalk
from repro.core.config import WalkConfig
from repro.graph import twitter_like
from repro.service import (
    DEADLINE_EXCEEDED,
    FAILED,
    OK,
    SHED,
    DegradationPolicy,
    WalkRequest,
    WalkService,
)


class PoisonWalk(UniformWalk):
    """A malformed request: raises during setup."""

    def setup_walkers(self, graph, walkers, rng):
        raise RuntimeError("malformed request payload")


def make_request(index: int) -> WalkRequest:
    """A deterministic traffic mix keyed on the request index."""
    seed = 104_729 * index + 1
    bucket = index % 12
    if bucket < 6:  # interactive: small, cheap, low priority
        return WalkRequest(
            program=UniformWalk(),
            config=WalkConfig(num_walkers=24, max_steps=10, seed=seed),
            priority=0,
            tag="interactive",
        )
    if bucket < 9:  # batch corpus job: heavy, high priority
        return WalkRequest(
            program=DeepWalk(),
            config=WalkConfig(
                num_walkers=256, max_steps=40, record_paths=True, seed=seed
            ),
            priority=2,
            tag="batch",
        )
    if bucket < 11:  # latency-sensitive: tight deadline, top priority
        return WalkRequest(
            program=UniformWalk(),
            config=WalkConfig(
                num_walkers=48, max_steps=40, record_paths=True, seed=seed
            ),
            deadline=0.05,
            priority=3,
            tag="tight",
        )
    return WalkRequest(program=PoisonWalk(), priority=1, tag="poison")


def main() -> None:
    graph = twitter_like(scale=0.05)
    print(f"graph: {graph}")

    total = 120
    service = WalkService(
        graph,
        num_workers=2,
        queue_capacity=8,
        shed_policy="priority",
        degradation=DegradationPolicy(max_steps_cap=10),
    )
    print(
        f"\nsubmitting {total} requests in bursts against "
        f"{len(service._workers)} workers, queue capacity 8, "
        f"priority shedding ...\n"
    )

    tickets = []
    for index in range(total):
        tickets.append(service.submit(make_request(index)))
        if index % 12 == 11:
            time.sleep(0.05)  # brief gap between bursts
    service.close(wait=True)
    responses = [ticket.wait(timeout=300.0) for ticket in tickets]

    # ------------------------------------------------------------------
    # What happened, per traffic class.
    # ------------------------------------------------------------------
    print(f"{'class':<12} {'ok':>4} {'partial':>8} {'shed':>5} {'failed':>7}")
    for tag in ("interactive", "batch", "tight", "poison"):
        rows = [r for r in responses if r.tag == tag]
        print(
            f"{tag:<12} "
            f"{sum(r.status == OK for r in rows):>4} "
            f"{sum(r.status == DEADLINE_EXCEEDED for r in rows):>8} "
            f"{sum(r.status == SHED for r in rows):>5} "
            f"{sum(r.status == FAILED for r in rows):>7}"
        )

    partials = [r for r in responses if r.status == DEADLINE_EXCEEDED]
    if partials:
        sample = partials[0]
        walked = sample.result.walkers.steps
        print(
            f"\ndeadline partial: {walked.size} walkers walked "
            f"{int(walked.sum())} steps before the deadline "
            f"(status {sample.result.status!r} — arrays well-formed)"
        )
    degraded = [r for r in responses if r.degradations]
    if degraded:
        print(
            f"degraded {len(degraded)} responses under pressure, "
            f"e.g. {degraded[0].degradations}"
        )
    sheds = service.metrics.shed_reasons
    if sheds:
        reasons = ", ".join(f"{k}={v}" for k, v in sorted(sheds.items()))
        print(f"shed reasons: {reasons}")

    print(f"\n{service.metrics.report()}")
    balanced = service.accounting_balanced()
    metrics = service.metrics
    print(
        f"accounting exact: {metrics.submitted} submitted == "
        f"{metrics.served} served + {metrics.shed} shed + "
        f"{metrics.failed} failed -> {balanced}"
    )
    assert balanced, "conservation law violated"


if __name__ == "__main__":
    main()
