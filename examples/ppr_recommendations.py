"""Personalized PageRank recommendations from random walks.

Fully-personalized PageRank is the classic "people you may know"
primitive: rank every vertex by its importance *from one user's point
of view*.  Exact computation is infeasible at scale, so production
systems estimate it from random walks (the paper's PPR workload).

This example builds a community-structured friendship graph, runs
termination-coin walks from one user, and prints the top
recommendations — which land inside the user's own community, as they
should.

Run with:  python examples/ppr_recommendations.py
"""

import numpy as np

from repro import WalkConfig, WalkEngine
from repro.algorithms import PPR, estimate_ppr
from repro.graph import from_arrays


def community_graph(
    num_communities: int, size: int, internal_degree: int, external_degree: int, seed: int
):
    """Planted-partition graph: dense inside communities, sparse across."""
    rng = np.random.default_rng(seed)
    num_vertices = num_communities * size
    sources, targets = [], []
    for vertex in range(num_vertices):
        community = vertex // size
        base = community * size
        internal = base + rng.integers(0, size, size=internal_degree)
        external = rng.integers(0, num_vertices, size=external_degree)
        for target in np.concatenate([internal, external]):
            if target != vertex:
                sources.append(vertex)
                targets.append(int(target))
    return from_arrays(
        num_vertices,
        np.asarray(sources),
        np.asarray(targets),
        undirected=True,
    )


def main() -> None:
    size = 100
    graph = community_graph(
        num_communities=8,
        size=size,
        internal_degree=8,
        external_degree=1,
        seed=5,
    )
    print(f"graph: {graph} (8 planted communities of {size})")

    user = 42  # a member of community 0
    num_walkers = 20_000
    config = WalkConfig(
        num_walkers=num_walkers,
        max_steps=None,
        termination_probability=1.0 / 80.0,  # the paper's Pt
        record_paths=True,
        seed=9,
        start_vertices=np.full(num_walkers, user, dtype=np.int64),
    )
    result = WalkEngine(graph, PPR(), config).run()
    print(f"walks: {result.stats.summary()}")

    scores = estimate_ppr(result, source=user, num_vertices=graph.num_vertices)
    scores[user] = 0.0  # don't recommend the user to themselves
    top = np.argsort(scores)[::-1][:10]

    print(f"\ntop-10 recommendations for user {user} (community 0):")
    in_community = 0
    for rank, candidate in enumerate(top, start=1):
        community = int(candidate) // size
        in_community += community == user // size
        print(
            f"  {rank:2d}. vertex {int(candidate):4d}  "
            f"score {scores[candidate]:.5f}  community {community}"
        )
    print(
        f"\n{in_community}/10 recommendations fall in the user's own "
        "community - personalized ranking recovered from walks alone."
    )


if __name__ == "__main__":
    main()
