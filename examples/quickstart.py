"""Quickstart: run your first random walk with the repro engine.

Builds a small social-network-like graph, runs DeepWalk-style truncated
random walks over it, and prints the engine's statistics along with a
few of the generated walk sequences.

Run with:  python examples/quickstart.py
"""

from repro import WalkConfig, WalkEngine
from repro.algorithms import DeepWalk
from repro.graph import assign_random_weights, truncated_power_law_graph


def main() -> None:
    # A 2000-vertex graph with a power-law degree distribution, made
    # undirected and weighted - the typical shape of real social data.
    graph = truncated_power_law_graph(
        num_vertices=2000,
        exponent=2.1,
        min_degree=3,
        max_degree=150,
        seed=7,
        undirected=True,
    )
    graph = assign_random_weights(graph, seed=8)
    print(f"graph: {graph}")
    print(f"degrees: {graph.degree_stats()}")

    # One walker per vertex, 20 steps each, biased by edge weight.
    config = WalkConfig(max_steps=20, record_paths=True, seed=1)
    engine = WalkEngine(graph, DeepWalk(), config)
    result = engine.run()

    print(f"\nwalk finished: {result.stats.summary()}")
    print(f"termination: {result.stats.termination}")
    print("\nfirst three walk sequences:")
    for path in result.paths[:3]:
        print("  " + " -> ".join(str(v) for v in path[:10]) + " ...")


if __name__ == "__main__":
    main()
