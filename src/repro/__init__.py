"""repro — a pure-Python reproduction of KnightKing (SOSP '19).

KnightKing is a general-purpose distributed graph random walk engine
built around rejection sampling over a unified transition probability
``P(e) = Ps(e) * Pd(e, v, w) * Pe(v, w)``.  This package reimplements
the full system from scratch:

* :mod:`repro.graph` — CSR storage, generators, partitioning;
* :mod:`repro.sampling` — alias, ITS, and rejection samplers;
* :mod:`repro.core` — the walker-centric programming model and engine;
* :mod:`repro.algorithms` — DeepWalk, PPR, Meta-path, node2vec;
* :mod:`repro.cluster` — the distributed-execution simulator;
* :mod:`repro.baselines` — full-scan and Gemini-style comparators;
* :mod:`repro.bench` — harnesses regenerating every table and figure.

Quickstart::

    from repro import WalkEngine, WalkConfig
    from repro.algorithms import DeepWalk
    from repro.graph import livejournal_like

    graph = livejournal_like(scale=0.1)
    result = WalkEngine(
        graph, DeepWalk(), WalkConfig(num_walkers=1000, record_paths=True)
    ).run()
    print(result.stats.summary())
"""

from repro.core import (
    WalkConfig,
    WalkEngine,
    WalkResult,
    WalkerProgram,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "WalkConfig",
    "WalkEngine",
    "WalkResult",
    "WalkerProgram",
    "ReproError",
    "__version__",
]
