"""Built-in random walk algorithms (paper section 2.2).

Four representative algorithms spanning the taxonomy:

* :class:`~repro.algorithms.deepwalk.DeepWalk` — biased, static;
* :class:`~repro.algorithms.ppr.PPR` — biased, static, geometric
  termination;
* :class:`~repro.algorithms.metapath.MetaPathWalk` — dynamic,
  first-order;
* :class:`~repro.algorithms.node2vec.Node2Vec` — dynamic, second-order;

plus :class:`~repro.algorithms.uniform.UniformWalk`, the unbiased
static special case.
"""

from repro.algorithms.avoiding import WindowedSelfAvoidingWalk
from repro.algorithms.deepwalk import DeepWalk, build_corpus, deepwalk_config
from repro.algorithms.metapath import MetaPathWalk, random_schemes
from repro.algorithms.node2vec import Node2Vec, node2vec_config
from repro.algorithms.nonbacktracking import NonBacktrackingWalk
from repro.algorithms.ppr import (
    DEFAULT_TERMINATION,
    POWERWALK_TERMINATION,
    PPR,
    estimate_ppr,
    ppr_config,
)
from repro.algorithms.rwr import RandomWalkWithRestart, rwr_config, rwr_scores
from repro.algorithms.triangle import TriangleClosingWalk, common_neighbour_count
from repro.algorithms.uniform import UniformWalk

__all__ = [
    "UniformWalk",
    "DeepWalk",
    "deepwalk_config",
    "build_corpus",
    "PPR",
    "ppr_config",
    "estimate_ppr",
    "DEFAULT_TERMINATION",
    "POWERWALK_TERMINATION",
    "MetaPathWalk",
    "random_schemes",
    "Node2Vec",
    "node2vec_config",
    "NonBacktrackingWalk",
    "WindowedSelfAvoidingWalk",
    "RandomWalkWithRestart",
    "rwr_config",
    "rwr_scores",
    "TriangleClosingWalk",
    "common_neighbour_count",
]
