"""Windowed self-avoiding walk — a higher-order (order > 2) program.

The paper's unified definition allows walker state to carry "the
previous n vertices visited" (section 2.2) even though every evaluated
algorithm needs only one step of history.  This program exercises the
engine's configurable history depth: the walker refuses to revisit any
of its last ``window`` stops (Pd = 0 on edges leading back into the
window, 1 elsewhere), a classic exploration-boosting bias used in graph
sampling.

With ``window = 1`` it degenerates to the non-backtracking walk.  A
walker whose every out-edge leads into the window dead-ends (the
zero-mass guard terminates it, per the no-positive-probability rule).
"""

from __future__ import annotations

import numpy as np

from repro.core.program import WalkerProgram
from repro.core.walker import NO_VERTEX, WalkerSet, WalkerView
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph

__all__ = ["WindowedSelfAvoidingWalk"]


class WindowedSelfAvoidingWalk(WalkerProgram):
    """Walk that never revisits its last ``window`` stops.

    Parameters
    ----------
    window:
        how many recent vertices are forbidden; sets the engine's
        per-walker history depth.
    biased:
        whether Ps follows edge weights.
    """

    name = "self-avoiding"
    dynamic = True
    order = 2  # history-dependent, but all checks are local
    supports_batch = True

    def __init__(self, window: int = 2, biased: bool = True) -> None:
        if window < 1:
            raise ProgramError("window must be at least 1")
        self.window = int(window)
        self.history_depth = int(window)
        self.biased = bool(biased)

    def edge_static_comp(self, graph: CSRGraph) -> np.ndarray | None:
        if self.biased:
            return None
        return np.ones(graph.num_edges, dtype=np.float64)

    # ------------------------------------------------------------------
    def edge_dynamic_comp(
        self,
        graph: CSRGraph,
        walker: WalkerView,
        edge_index: int,
        query_result: object | None = None,
    ) -> float:
        candidate = int(graph.targets[edge_index])
        recent = walker.recent
        blocked = bool(np.any(recent == candidate))
        return 0.0 if blocked else 1.0

    def upper_bound_array(self, graph: CSRGraph) -> np.ndarray:
        return np.ones(graph.num_vertices, dtype=np.float64)

    def lower_bound_array(self, graph: CSRGraph) -> np.ndarray:
        return np.zeros(graph.num_vertices, dtype=np.float64)

    # ------------------------------------------------------------------
    def _recent_matrix(self, walkers: WalkerSet, walker_ids: np.ndarray):
        if walkers.history is not None:
            return walkers.history[walker_ids]
        return walkers.previous[walker_ids][:, None]

    def batch_dynamic_comp(
        self,
        graph: CSRGraph,
        walkers: WalkerSet,
        walker_ids: np.ndarray,
        candidate_edges: np.ndarray,
    ) -> np.ndarray:
        candidates = graph.targets[candidate_edges]
        recent = self._recent_matrix(walkers, walker_ids)
        blocked = np.any(recent == candidates[:, None], axis=1)
        # NO_VERTEX padding never equals a real candidate id (>= 0).
        return np.where(blocked, 0.0, 1.0)

    def batch_dynamic_with_answers(
        self, graph, walkers, walker_ids, candidate_edges, answers, answered
    ) -> np.ndarray:
        return self.batch_dynamic_comp(graph, walkers, walker_ids, candidate_edges)

    def batch_state_queries(
        self, graph, walkers, walker_ids, candidate_edges
    ) -> tuple[np.ndarray, np.ndarray]:
        # History is local walker state: no remote queries ever.
        targets = np.full(walker_ids.size, -1, dtype=np.int64)
        return targets, graph.targets[candidate_edges]
