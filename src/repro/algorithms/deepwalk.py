"""DeepWalk (Perozzi et al., KDD 2014) — biased static random walk.

DeepWalk generates truncated random walks whose sequences feed a
skip-gram model (paper section 2.2).  As a walk program it is the
canonical *biased static* algorithm: the transition probability of an
edge is proportional to its weight (Ps = weight, Pd = 1), and walks run
to a fixed length (80 in the paper's evaluation) with no early
termination.

Use :func:`deepwalk_config` for the paper's standard setup, and
:func:`build_corpus` to turn a recorded walk into skip-gram input.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DEFAULT_WALK_LENGTH, WalkConfig
from repro.core.engine import WalkResult
from repro.core.program import WalkerProgram
from repro.graph.csr import CSRGraph

__all__ = ["DeepWalk", "deepwalk_config", "build_corpus"]


class DeepWalk(WalkerProgram):
    """Biased static walk: Ps = edge weight, Pd = 1, fixed length.

    On unweighted graphs this degenerates to the original (unbiased)
    DeepWalk; on weighted graphs it is the biased extension the paper
    cites (Cochez et al.).
    """

    name = "deepwalk"
    dynamic = False
    order = 1
    supports_batch = True

    def edge_static_comp(self, graph: CSRGraph) -> np.ndarray | None:
        # None selects the graph's weights (1.0 when unweighted) — the
        # "return e.weight" of the paper's sample edgeStaticComp.
        return None


def deepwalk_config(
    num_walkers: int | None = None,
    walk_length: int = DEFAULT_WALK_LENGTH,
    walks_per_vertex: int | None = None,
    seed: int = 0,
    record_paths: bool = False,
) -> WalkConfig:
    """The paper's DeepWalk setup: |V| walkers, fixed length 80.

    ``walks_per_vertex`` implements DeepWalk's gamma parameter (the
    original paper starts gamma walks from every vertex — the engine
    paper's "the process may be repeated for multiple rounds"):
    gamma * |V| walkers, round-robin over vertices.  Mutually exclusive
    with ``num_walkers``.
    """
    return WalkConfig(
        num_walkers=num_walkers,
        walks_per_vertex=walks_per_vertex,
        max_steps=walk_length,
        termination_probability=0.0,
        seed=seed,
        record_paths=record_paths,
    )


def build_corpus(result: WalkResult) -> list[list[int]]:
    """Walk sequences as skip-gram "sentences" (vertex-id lists)."""
    return result.corpus()
