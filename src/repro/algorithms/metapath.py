"""Meta-path constrained random walk (paper section 2.2, Eq. 1).

Meta-path algorithms (metapath2vec and relatives) walk heterogeneous
graphs under a *scheme*: a cyclic pattern of edge types that each step
must follow.  At the k-th step a walker assigned scheme ``S`` may only
take edges of type ``S[k mod |S|]`` — a *dynamic, first-order* walk:
the transition distribution depends on walker state (its scheme and
step counter) but not on previously visited vertices.

The paper's evaluation uses 5 edge types and 10 cyclic schemes of
length 5, each walker assigned one scheme at random
(:func:`random_schemes` reproduces that setup).

Pd is an indicator (0 or 1), so the rejection envelope is 1 and the
expected trials per step equal (total static mass) / (eligible static
mass).  A vertex may have *no* eligible out-edges for the walker's
current required type — the engines' zero-mass guard then terminates
the walk, per the paper's "no out edges with positive transition
probability" rule.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.program import WalkerProgram
from repro.core.walker import WalkerSet, WalkerView
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph

__all__ = ["MetaPathWalk", "random_schemes"]

SCHEME_STATE = "metapath_scheme"


def random_schemes(
    num_schemes: int,
    scheme_length: int,
    num_types: int,
    seed: int,
) -> list[list[int]]:
    """Random cyclic schemes, the evaluation's workload generator
    (10 schemes of length 5 over 5 edge types in the paper)."""
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, num_types, size=scheme_length).astype(int).tolist()
        for _ in range(num_schemes)
    ]


class MetaPathWalk(WalkerProgram):
    """Dynamic first-order walk constrained by cyclic type schemes."""

    name = "metapath"
    dynamic = True
    order = 1
    supports_batch = True

    def __init__(self, schemes: Sequence[Sequence[int]]) -> None:
        if not schemes:
            raise ProgramError("at least one meta-path scheme is required")
        if any(len(scheme) == 0 for scheme in schemes):
            raise ProgramError("schemes must be non-empty")
        self.schemes = [list(scheme) for scheme in schemes]
        lengths = np.asarray([len(scheme) for scheme in self.schemes], dtype=np.int64)
        matrix = np.full((len(schemes), int(lengths.max())), -1, dtype=np.int32)
        for row, scheme in enumerate(self.schemes):
            matrix[row, : len(scheme)] = scheme
        self._matrix = matrix
        self._lengths = lengths

    # ------------------------------------------------------------------
    def setup_walkers(
        self, graph: CSRGraph, walkers: WalkerSet, rng: np.random.Generator
    ) -> None:
        """Assign each walker one scheme uniformly at random."""
        if graph.edge_types is None:
            raise ProgramError("MetaPathWalk needs a graph with edge types")
        assignment = rng.integers(
            0, len(self.schemes), size=walkers.num_walkers, dtype=np.int64
        )
        walkers.add_state(SCHEME_STATE, assignment)

    def required_type(self, scheme_id: int, step: int) -> int:
        """Edge type scheme ``scheme_id`` demands at ``step``."""
        scheme = self.schemes[scheme_id]
        return scheme[step % len(scheme)]

    # ------------------------------------------------------------------
    def edge_dynamic_comp(
        self,
        graph: CSRGraph,
        walker: WalkerView,
        edge_index: int,
        query_result: object | None = None,
    ) -> float:
        scheme_id = int(walker.state(SCHEME_STATE))
        required = self.required_type(scheme_id, walker.step)
        assert graph.edge_types is not None
        return 1.0 if int(graph.edge_types[edge_index]) == required else 0.0

    def dynamic_upper_bound(self, graph: CSRGraph, vertex: int) -> float:
        return 1.0

    def upper_bound_array(self, graph: CSRGraph) -> np.ndarray:
        return np.ones(graph.num_vertices, dtype=np.float64)

    def lower_bound_array(self, graph: CSRGraph) -> np.ndarray:
        return np.zeros(graph.num_vertices, dtype=np.float64)

    # ------------------------------------------------------------------
    def batch_dynamic_comp(
        self,
        graph: CSRGraph,
        walkers: WalkerSet,
        walker_ids: np.ndarray,
        candidate_edges: np.ndarray,
    ) -> np.ndarray:
        assert graph.edge_types is not None
        scheme_ids = walkers.state(SCHEME_STATE)[walker_ids]
        steps = walkers.steps[walker_ids]
        positions = steps % self._lengths[scheme_ids]
        required = self._matrix[scheme_ids, positions]
        return (graph.edge_types[candidate_edges] == required).astype(np.float64)
