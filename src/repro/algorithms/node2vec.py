"""node2vec (Grover & Leskovec, KDD 2016) — second-order random walk.

node2vec's dynamic component depends on the distance ``d_tx`` between
the walker's previous stop ``t`` and a candidate ``x`` (paper Eq. 2):

* ``d_tx = 0`` (x is t, the *return edge*): Pd = 1/p
* ``d_tx = 1`` (x adjacent to t):            Pd = 1
* ``d_tx = 2`` (otherwise):                  Pd = 1/q

Checking ``d_tx = 1`` requires knowing whether ``t`` and ``x`` are
neighbours — walker-to-vertex state handled through the engine's query
protocol in distributed mode (``postNeighbourQuery`` in the paper's
sample code) or a direct ``has_edge`` locally.

This program implements everything section 4 develops on the node2vec
running example:

* rejection sampling with envelope ``max(1/p, 1, 1/q)``;
* optional *outlier folding* — when ``1/p`` towers above
  ``max(1, 1/q)``, the return edge is folded into an appendix so the
  envelope drops to ``max(1, 1/q)`` (Figure 3b); and
* the lower bound ``min(1/p, 1, 1/q)`` for pre-acceptance (Figure 3c,
  engine toggle ``use_lower_bound``).

On the first step (no previous vertex) Pd is defined as 1 for all
edges, i.e. the first hop follows the static distribution alone.  (The
paper's sample code returns the constant ``max(1/p, 1, 1/q)`` instead;
any constant yields the same law, and 1 keeps the folded envelope
valid.)
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DEFAULT_WALK_LENGTH, WalkConfig
from repro.core.program import StateQuery, WalkerProgram
from repro.core.walker import NO_VERTEX, WalkerSet, WalkerView
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph
from repro.sampling.rejection import OutlierSpec

__all__ = ["Node2Vec", "node2vec_config"]


class Node2Vec(WalkerProgram):
    """Second-order biased/unbiased walk with p/q hyper-parameters.

    Parameters
    ----------
    p:
        return parameter; the return edge has Pd = 1/p.
    q:
        in-out parameter; non-neighbour candidates have Pd = 1/q.
    biased:
        whether Ps follows edge weights (biased node2vec) or is uniform.
    fold_outlier:
        fold the return edge out of the envelope when 1/p exceeds
        max(1, 1/q).  ``None`` (default) enables folding exactly when
        it helps; ``False`` reproduces the paper's "naïve" Table 5
        variant; ``True`` insists (a no-op when 1/p is not the max).
    """

    name = "node2vec"
    dynamic = True
    order = 2
    supports_batch = True

    def __init__(
        self,
        p: float = 1.0,
        q: float = 1.0,
        biased: bool = True,
        fold_outlier: bool | None = None,
    ) -> None:
        if p <= 0 or q <= 0:
            raise ProgramError("node2vec parameters p and q must be positive")
        self.p = float(p)
        self.q = float(q)
        self.biased = bool(biased)
        self.return_pd = 1.0 / self.p
        self.inout_pd = 1.0 / self.q
        base_envelope = max(1.0, self.inout_pd)
        wants_folding = fold_outlier if fold_outlier is not None else True
        self.folding = bool(wants_folding) and self.return_pd > base_envelope
        self.envelope = base_envelope if self.folding else max(
            self.return_pd, base_envelope
        )
        self.floor = min(self.return_pd, 1.0, self.inout_pd)

    # ------------------------------------------------------------------
    # Static component
    # ------------------------------------------------------------------
    def edge_static_comp(self, graph: CSRGraph) -> np.ndarray | None:
        if self.biased:
            return None  # graph weights (1.0 when unweighted)
        return np.ones(graph.num_edges, dtype=np.float64)

    def _static_of(self, graph: CSRGraph, edge_index: int) -> float:
        if self.biased and graph.weights is not None:
            return float(graph.weights[edge_index])
        return 1.0

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def upper_bound_array(self, graph: CSRGraph) -> np.ndarray:
        return np.full(graph.num_vertices, self.envelope, dtype=np.float64)

    def lower_bound_array(self, graph: CSRGraph) -> np.ndarray:
        return np.full(graph.num_vertices, self.floor, dtype=np.float64)

    def dynamic_upper_bound(self, graph: CSRGraph, vertex: int) -> float:
        return self.envelope

    def dynamic_lower_bound(self, graph: CSRGraph, vertex: int) -> float:
        return self.floor

    # ------------------------------------------------------------------
    # Dynamic component (scalar)
    # ------------------------------------------------------------------
    def edge_dynamic_comp(
        self,
        graph: CSRGraph,
        walker: WalkerView,
        edge_index: int,
        query_result: object | None = None,
    ) -> float:
        previous = walker.prev
        if previous == NO_VERTEX:
            return 1.0
        candidate = int(graph.targets[edge_index])
        if candidate == previous:
            return self.return_pd  # d_tx = 0
        adjacent = (
            bool(query_result)
            if query_result is not None
            else graph.has_edge(previous, candidate)
        )
        return 1.0 if adjacent else self.inout_pd

    def state_query(
        self, graph: CSRGraph, walker: WalkerView, edge_index: int
    ) -> StateQuery | None:
        previous = walker.prev
        if previous == NO_VERTEX:
            return None
        candidate = int(graph.targets[edge_index])
        if candidate == previous:
            return None  # return edge needs no adjacency check
        return StateQuery(target_vertex=previous, payload=candidate)

    # answer_state_query: inherited postNeighbourQuery semantics.

    # ------------------------------------------------------------------
    # Outlier folding (scalar)
    # ------------------------------------------------------------------
    def outlier_specs(
        self, graph: CSRGraph, walker: WalkerView
    ) -> tuple[OutlierSpec, ...]:
        if not self.folding or walker.prev == NO_VERTEX:
            return ()
        first = graph.edge_index(walker.current, walker.prev)
        if first < 0:
            return ()  # no return edge on this (directed) graph
        # Cover parallel return edges with one appendix of their
        # combined static mass.
        start, end = graph.edge_range(walker.current)
        mass = 0.0
        index = first
        while index < end and graph.targets[index] == walker.prev:
            mass += self._static_of(graph, index)
            index += 1
        return (
            OutlierSpec(
                edge=first,
                pd_bound=self.return_pd,
                width=mass,
                static_mass=mass,
            ),
        )

    # ------------------------------------------------------------------
    # Batch hooks
    # ------------------------------------------------------------------
    def batch_dynamic_comp(
        self,
        graph: CSRGraph,
        walkers: WalkerSet,
        walker_ids: np.ndarray,
        candidate_edges: np.ndarray,
    ) -> np.ndarray:
        previous = walkers.previous[walker_ids]
        candidates = graph.targets[candidate_edges]
        values = np.full(walker_ids.size, self.inout_pd, dtype=np.float64)

        first_step = previous == NO_VERTEX
        is_return = candidates == previous
        values[is_return] = self.return_pd
        undecided = np.flatnonzero(~(is_return | first_step))
        if undecided.size:
            adjacent = graph.has_edges_batch(
                previous[undecided], candidates[undecided]
            )
            values[undecided[adjacent]] = 1.0
        values[first_step] = 1.0
        return values

    def batch_state_queries(
        self,
        graph: CSRGraph,
        walkers: WalkerSet,
        walker_ids: np.ndarray,
        candidate_edges: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Post a neighbour query for candidates that are neither the
        return edge nor a first step — the only lanes where d_tx must
        be resolved remotely."""
        previous = walkers.previous[walker_ids]
        candidates = graph.targets[candidate_edges]
        needs = (previous != NO_VERTEX) & (candidates != previous)
        targets = np.where(needs, previous, -1)
        return targets, candidates

    def batch_dynamic_with_answers(
        self,
        graph: CSRGraph,
        walkers: WalkerSet,
        walker_ids: np.ndarray,
        candidate_edges: np.ndarray,
        answers: np.ndarray,
        answered: np.ndarray,
    ) -> np.ndarray:
        previous = walkers.previous[walker_ids]
        candidates = graph.targets[candidate_edges]
        values = np.full(walker_ids.size, self.inout_pd, dtype=np.float64)
        values[answered & (answers > 0.0)] = 1.0
        values[candidates == previous] = self.return_pd
        values[previous == NO_VERTEX] = 1.0
        return values

    def batch_outliers(
        self, graph: CSRGraph, walkers: WalkerSet, walker_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        if not self.folding:
            return None
        previous = walkers.previous[walker_ids]
        current = walkers.current[walker_ids]
        edges = np.full(walker_ids.size, -1, dtype=np.int64)
        masses = np.zeros(walker_ids.size, dtype=np.float64)

        valid = np.flatnonzero(previous != NO_VERTEX)
        if valid.size:
            first, counts = graph.edge_span_batch(
                current[valid], previous[valid]
            )
            found = first >= 0
            lanes = valid[found]
            edges[lanes] = first[found]
            if self.biased and graph.weights is not None and lanes.size:
                # Segment sums over the (start, start+count) spans in
                # one reduceat: interleave starts and ends, keep the
                # even slots.  Weights are padded with a trailing zero
                # so an end index of |E| stays legal.
                padded = self._padded_weights(graph)
                starts = first[found]
                segments = np.empty(2 * starts.size, dtype=np.int64)
                segments[0::2] = starts
                segments[1::2] = starts + counts[found]
                masses[lanes] = np.add.reduceat(padded, segments)[0::2]
            else:
                masses[lanes] = counts[found].astype(np.float64)

        bounds = np.full(walker_ids.size, self.return_pd, dtype=np.float64)
        return edges, bounds, masses, masses

    def _padded_weights(self, graph: CSRGraph) -> np.ndarray:
        """Graph weights with one trailing zero, cached per graph."""
        cached = getattr(self, "_padded_weight_cache", None)
        if cached is None or cached[0] is not graph.weights:
            padded = np.concatenate(
                [graph.weights, np.zeros(1, dtype=np.float64)]
            )
            self._padded_weight_cache = (graph.weights, padded)
            return padded
        return cached[1]


def node2vec_config(
    num_walkers: int | None = None,
    walk_length: int = DEFAULT_WALK_LENGTH,
    seed: int = 0,
    record_paths: bool = False,
) -> WalkConfig:
    """The paper's node2vec setup: |V| walkers, fixed length 80."""
    return WalkConfig(
        num_walkers=num_walkers,
        max_steps=walk_length,
        termination_probability=0.0,
        seed=seed,
        record_paths=record_paths,
    )
