"""Non-backtracking random walk.

A second-order walk that forbids immediately revisiting the previous
vertex (Pd = 0 on the return edge, 1 elsewhere).  Non-backtracking
walks mix faster than simple random walks and underpin spectral
clustering and community detection methods; as a walk program they are
the minimal demonstration of second-order dynamics — the walker's
one-step history changes the transition law, but no remote adjacency
information is needed (the return-edge check is local).

Degenerate case: at a degree-1 vertex every edge is the return edge, so
the total transition mass is zero and the walk terminates (the engines'
zero-mass guard handles this, matching the paper's
no-positive-probability termination rule).
"""

from __future__ import annotations

import numpy as np

from repro.core.program import WalkerProgram
from repro.core.walker import NO_VERTEX, WalkerSet, WalkerView
from repro.graph.csr import CSRGraph

__all__ = ["NonBacktrackingWalk"]


class NonBacktrackingWalk(WalkerProgram):
    """Biased walk that never immediately returns where it came from.

    Parameters
    ----------
    biased:
        whether Ps follows edge weights (default) or is uniform.
    """

    name = "non-backtracking"
    dynamic = True
    order = 2
    supports_batch = True

    def __init__(self, biased: bool = True) -> None:
        self.biased = bool(biased)

    def edge_static_comp(self, graph: CSRGraph) -> np.ndarray | None:
        if self.biased:
            return None
        return np.ones(graph.num_edges, dtype=np.float64)

    # ------------------------------------------------------------------
    def edge_dynamic_comp(
        self,
        graph: CSRGraph,
        walker: WalkerView,
        edge_index: int,
        query_result: object | None = None,
    ) -> float:
        if walker.prev == NO_VERTEX:
            return 1.0
        return 0.0 if int(graph.targets[edge_index]) == walker.prev else 1.0

    def upper_bound_array(self, graph: CSRGraph) -> np.ndarray:
        return np.ones(graph.num_vertices, dtype=np.float64)

    def lower_bound_array(self, graph: CSRGraph) -> np.ndarray:
        return np.zeros(graph.num_vertices, dtype=np.float64)

    # ------------------------------------------------------------------
    def batch_dynamic_comp(
        self,
        graph: CSRGraph,
        walkers: WalkerSet,
        walker_ids: np.ndarray,
        candidate_edges: np.ndarray,
    ) -> np.ndarray:
        previous = walkers.previous[walker_ids]
        candidates = graph.targets[candidate_edges]
        blocked = (previous != NO_VERTEX) & (candidates == previous)
        return np.where(blocked, 0.0, 1.0)

    def batch_dynamic_with_answers(
        self, graph, walkers, walker_ids, candidate_edges, answers, answered
    ) -> np.ndarray:
        # The return-edge check is purely local; answers are unused.
        return self.batch_dynamic_comp(graph, walkers, walker_ids, candidate_edges)

    def batch_state_queries(
        self, graph, walkers, walker_ids, candidate_edges
    ) -> tuple[np.ndarray, np.ndarray]:
        # Never query: Pd needs no remote vertex state.
        targets = np.full(walker_ids.size, -1, dtype=np.int64)
        return targets, graph.targets[candidate_edges]
