"""Personalized PageRank via random walks (paper section 2.2).

Fully-personalized PageRank is too expensive to compute exactly on
large graphs, so the standard approach (Fogaras et al.; PowerWalk)
simulates many short random walks: each walker follows out-edges with
probability proportional to weight and terminates with a fixed
probability Pt per step, so walk endpoints (and visit counts) estimate
the personalized ranking from the start vertex.

As a walk program PPR is *biased static* like DeepWalk — the difference
is purely in the extension component Pe, which here is the geometric
termination coin.  The paper uses Pt = 1/80 (expected length matching
DeepWalk's fixed 80) for Tables 3/4 and Pt = 0.149 (the PowerWalk
setting) for the straggler study of Figure 9.

:func:`estimate_ppr` turns recorded walks into a personalized ranking
estimate for queries from a given source vertex.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.config import WalkConfig
from repro.core.engine import WalkResult
from repro.core.program import WalkerProgram
from repro.graph.csr import CSRGraph

__all__ = ["PPR", "ppr_config", "estimate_ppr", "DEFAULT_TERMINATION", "POWERWALK_TERMINATION"]

# Pt = 1/80 makes the expected walk length match DeepWalk's fixed 80.
DEFAULT_TERMINATION = 1.0 / 80.0
# Pt = 0.149 is the setting PowerWalk uses, adopted for Figure 9.
POWERWALK_TERMINATION = 0.149


class PPR(WalkerProgram):
    """Biased static walk with geometric termination (via config)."""

    name = "ppr"
    dynamic = False
    order = 1
    supports_batch = True

    def edge_static_comp(self, graph: CSRGraph) -> np.ndarray | None:
        return None  # proportional to edge weight


def ppr_config(
    num_walkers: int | None = None,
    termination_probability: float = DEFAULT_TERMINATION,
    seed: int = 0,
    record_paths: bool = False,
    max_steps: int | None = None,
) -> WalkConfig:
    """PPR setup: geometric termination, no step cap by default.

    ``max_steps=None`` leaves walk lengths unbounded (the paper
    observes walks beyond 1000 steps with Pt = 1/80 — the straggler
    behaviour of Figure 5/9).
    """
    return WalkConfig(
        num_walkers=num_walkers,
        max_steps=max_steps,
        termination_probability=termination_probability,
        seed=seed,
        record_paths=record_paths,
    )


def estimate_ppr(
    result: WalkResult, source: int, num_vertices: int
) -> np.ndarray:
    """Estimate the PPR vector of ``source`` from recorded walks.

    Counts visits across all walks that started at ``source``
    (including the start itself), normalised to sum to 1 — the
    Monte-Carlo estimator of the personalized stationary distribution.
    """
    if result.paths is None:
        raise ValueError("estimate_ppr needs record_paths=True walks")
    visits: Counter[int] = Counter()
    for path in result.paths:
        if path[0] != source:
            continue
        visits.update(int(vertex) for vertex in path)
    estimate = np.zeros(num_vertices, dtype=np.float64)
    for vertex, count in visits.items():
        estimate[vertex] = count
    total = estimate.sum()
    if total > 0:
        estimate /= total
    return estimate
