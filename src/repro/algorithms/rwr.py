"""Random Walk with Restart (Tong, Faloutsos & Pan, ICDM 2006).

RWR is the restart-flavoured member of the random walk family the
paper's introduction cites: at each step the walker either follows an
out-edge (biased by weight, like PPR/DeepWalk) or, with probability
``restart_probability``, jumps back to its start vertex.  The walker's
stationary visit distribution is the relevance score of every vertex
with respect to the start — widely used for proximity queries and
recommendation.

RWR exercises two engine features beyond the four paper algorithms:

* per-walker custom state (each walker remembers its *home* vertex);
* the teleport hook (a jump is a move that samples no edge).

Restarting is equivalent in law to PPR's terminate-and-relaunch (a
restart chain of expected segment length ``1/c``), but operationally a
single long walk per query — which is exactly how RWR implementations
batch their queries.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import WalkConfig
from repro.core.engine import WalkResult
from repro.core.program import WalkerProgram
from repro.core.walker import WalkerSet
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph

__all__ = ["RandomWalkWithRestart", "rwr_config", "rwr_scores"]

HOME_STATE = "rwr_home"


class RandomWalkWithRestart(WalkerProgram):
    """Biased static walk with probabilistic restart to the start."""

    name = "rwr"
    dynamic = False
    order = 1
    supports_batch = True

    def __init__(self, restart_probability: float = 0.15) -> None:
        if not 0.0 < restart_probability < 1.0:
            raise ProgramError("restart_probability must be in (0, 1)")
        self.restart_probability = float(restart_probability)

    def setup_walkers(
        self, graph: CSRGraph, walkers: WalkerSet, rng: np.random.Generator
    ) -> None:
        """Remember every walker's start vertex as its restart home."""
        walkers.add_state(HOME_STATE, walkers.current.copy())

    def teleport_targets(
        self,
        graph: CSRGraph,
        walkers: WalkerSet,
        walker_ids: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        coins = rng.random(walker_ids.size)
        jumping = coins < self.restart_probability
        if not jumping.any():
            return walker_ids[:0], walkers.current[walker_ids[:0]]
        jumpers = walker_ids[jumping]
        homes = walkers.state(HOME_STATE)[jumpers]
        return jumpers, homes


def rwr_config(
    num_walkers: int | None = None,
    walk_length: int = 400,
    seed: int = 0,
    record_paths: bool = True,
) -> WalkConfig:
    """Long fixed-length walks; visit counts estimate RWR relevance."""
    return WalkConfig(
        num_walkers=num_walkers,
        max_steps=walk_length,
        termination_probability=0.0,
        seed=seed,
        record_paths=record_paths,
    )


def rwr_scores(result: WalkResult, source: int, num_vertices: int) -> np.ndarray:
    """RWR relevance vector of ``source`` from recorded walks.

    Normalised visit counts over all walks started at ``source`` —
    the Monte-Carlo estimate of the restart chain's stationary
    distribution.
    """
    if result.paths is None:
        raise ProgramError("rwr_scores needs record_paths=True walks")
    scores = np.zeros(num_vertices, dtype=np.float64)
    for path in result.paths:
        if path[0] != source:
            continue
        counts = np.bincount(path, minlength=num_vertices)
        scores += counts
    total = scores.sum()
    if total > 0:
        scores /= total
    return scores
