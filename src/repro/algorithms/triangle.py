"""Triangle-closing walk — a second-order walk with a *custom* state query.

node2vec's walker-to-vertex query is the standard neighbour test; the
paper notes that "beside postNeighborQuery, users can also define
customized queries" (section 5.2).  This algorithm exercises that API:
the walker favours candidates that close many triangles with its
previous vertex, so the query asks the previous vertex's owner for the
*number of common neighbours* with the candidate — an aggregate no
built-in query provides.

Dynamic component for a walker that came from ``t`` considering
candidate ``x``:

    Pd(e) = 1 + strength * min(common_neighbours(t, x), cap) / cap

bounded in ``[1, 1 + strength]``.  Walks under this law concentrate in
triangle-dense regions, a useful bias for community-sensitive sampling.
"""

from __future__ import annotations

import numpy as np

from repro.core.program import StateQuery, WalkerProgram
from repro.core.walker import NO_VERTEX, WalkerSet, WalkerView
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph

__all__ = ["TriangleClosingWalk", "common_neighbour_count"]


def common_neighbour_count(graph: CSRGraph, u: int, v: int) -> int:
    """|N(u) ∩ N(v)| via a linear merge of the sorted adjacencies."""
    return int(
        np.intersect1d(
            graph.neighbors(u), graph.neighbors(v), assume_unique=False
        ).size
    )


class TriangleClosingWalk(WalkerProgram):
    """Second-order walk biased toward triangle-closing candidates.

    Parameters
    ----------
    strength:
        how strongly triangles attract the walker (Pd spans
        ``[1, 1 + strength]``).
    cap:
        common-neighbour count at which the bonus saturates.
    """

    name = "triangle-closing"
    dynamic = True
    order = 2
    supports_batch = True

    def __init__(self, strength: float = 2.0, cap: int = 4) -> None:
        if strength <= 0:
            raise ProgramError("strength must be positive")
        if cap < 1:
            raise ProgramError("cap must be at least 1")
        self.strength = float(strength)
        self.cap = int(cap)

    # ------------------------------------------------------------------
    def _bonus(self, common: float) -> float:
        return 1.0 + self.strength * min(common, self.cap) / self.cap

    def edge_dynamic_comp(
        self,
        graph: CSRGraph,
        walker: WalkerView,
        edge_index: int,
        query_result: object | None = None,
    ) -> float:
        if walker.prev == NO_VERTEX:
            return 1.0
        candidate = int(graph.targets[edge_index])
        common = (
            float(query_result)
            if query_result is not None
            else common_neighbour_count(graph, walker.prev, candidate)
        )
        return self._bonus(common)

    def state_query(
        self, graph: CSRGraph, walker: WalkerView, edge_index: int
    ) -> StateQuery | None:
        if walker.prev == NO_VERTEX:
            return None
        return StateQuery(
            target_vertex=walker.prev,
            payload=int(graph.targets[edge_index]),
        )

    def answer_state_query(self, graph: CSRGraph, query: StateQuery) -> object:
        """Custom query execution: common-neighbour count, computed at
        the node owning the previous vertex."""
        return common_neighbour_count(graph, query.target_vertex, query.payload)

    # ------------------------------------------------------------------
    def upper_bound_array(self, graph: CSRGraph) -> np.ndarray:
        return np.full(
            graph.num_vertices, 1.0 + self.strength, dtype=np.float64
        )

    def lower_bound_array(self, graph: CSRGraph) -> np.ndarray:
        return np.ones(graph.num_vertices, dtype=np.float64)

    # ------------------------------------------------------------------
    def batch_dynamic_comp(
        self,
        graph: CSRGraph,
        walkers: WalkerSet,
        walker_ids: np.ndarray,
        candidate_edges: np.ndarray,
    ) -> np.ndarray:
        previous = walkers.previous[walker_ids]
        candidates = graph.targets[candidate_edges]
        values = np.ones(walker_ids.size, dtype=np.float64)
        for lane in range(walker_ids.size):
            if previous[lane] == NO_VERTEX:
                continue
            common = common_neighbour_count(
                graph, int(previous[lane]), int(candidates[lane])
            )
            values[lane] = self._bonus(common)
        return values

    def batch_state_queries(
        self, graph, walkers, walker_ids, candidate_edges
    ) -> tuple[np.ndarray, np.ndarray]:
        previous = walkers.previous[walker_ids]
        targets = np.where(previous != NO_VERTEX, previous, -1)
        return targets, graph.targets[candidate_edges]

    def batch_answer_queries(
        self, graph, query_targets, payloads
    ) -> np.ndarray:
        answers = np.zeros(query_targets.size, dtype=np.float64)
        for lane in range(query_targets.size):
            answers[lane] = common_neighbour_count(
                graph, int(query_targets[lane]), int(payloads[lane])
            )
        return answers

    def batch_dynamic_with_answers(
        self, graph, walkers, walker_ids, candidate_edges, answers, answered
    ) -> np.ndarray:
        previous = walkers.previous[walker_ids]
        values = np.ones(walker_ids.size, dtype=np.float64)
        bonus = 1.0 + self.strength * np.minimum(answers, self.cap) / self.cap
        use = answered & (previous != NO_VERTEX)
        values[use] = bonus[use]
        # Lanes with previous context but no posted answer (local
        # resolution) fall back to direct computation.
        local = ~answered & (previous != NO_VERTEX)
        if local.any():
            values[local] = self.batch_dynamic_comp(
                graph, walkers, walker_ids[local], candidate_edges[local]
            )
        return values
