"""Unbiased static random walk — the simplest special case.

Both Ps and Pd are identically 1 (paper section 2.2): every out-edge of
the current vertex is equally likely regardless of weights.  Useful as
a baseline workload and as the simplest correctness oracle (its exact
per-step law is uniform over out-neighbours).
"""

from __future__ import annotations

import numpy as np

from repro.core.program import WalkerProgram
from repro.graph.csr import CSRGraph

__all__ = ["UniformWalk"]


class UniformWalk(WalkerProgram):
    """Unbiased, static, first-order walk (Ps = Pd = 1)."""

    name = "uniform"
    dynamic = False
    order = 1
    supports_batch = True

    def edge_static_comp(self, graph: CSRGraph) -> np.ndarray:
        # Explicit all-ones: ignore edge weights even on weighted graphs.
        return np.ones(graph.num_edges, dtype=np.float64)
