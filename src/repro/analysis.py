"""Analysis utilities over recorded walks.

Random walk engines are usually a pre-processing stage (the paper's
DeepWalk/node2vec workloads feed skip-gram training; PPR/RWR walks feed
ranking queries).  This module provides the standard post-processing
primitives over a :class:`~repro.core.engine.WalkResult`'s paths:

* visit counts and empirical transition counts (sanity-checking a walk
  against its intended law, estimating stationary distributions);
* skip-gram (center, context) pair extraction with a sliding window —
  the input format of word2vec-style trainers; and
* a plain-text corpus format (one walk per line) for interoperability
  with external embedding tools.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import ReproError

__all__ = [
    "visit_counts",
    "transition_counts",
    "empirical_transition_matrix",
    "skipgram_pairs",
    "save_corpus",
    "load_corpus",
    "stationary_distribution",
    "estimate_clustering_coefficient",
]

Paths = Sequence[np.ndarray] | Sequence[Sequence[int]]


def visit_counts(paths: Paths, num_vertices: int) -> np.ndarray:
    """How often each vertex appears across all walks (starts included)."""
    counts = np.zeros(num_vertices, dtype=np.int64)
    for path in paths:
        counts += np.bincount(
            np.asarray(path, dtype=np.int64), minlength=num_vertices
        )
    return counts


def transition_counts(paths: Paths, num_vertices: int) -> np.ndarray:
    """Dense (num_vertices x num_vertices) matrix of observed moves.

    Intended for small graphs (tests, diagnostics); the matrix is
    O(|V|^2) memory.
    """
    counts = np.zeros((num_vertices, num_vertices), dtype=np.int64)
    for path in paths:
        array = np.asarray(path, dtype=np.int64)
        if array.size < 2:
            continue
        np.add.at(counts, (array[:-1], array[1:]), 1)
    return counts


def empirical_transition_matrix(paths: Paths, num_vertices: int) -> np.ndarray:
    """Row-normalised :func:`transition_counts` (rows with no
    observations stay all-zero)."""
    counts = transition_counts(paths, num_vertices).astype(np.float64)
    row_sums = counts.sum(axis=1, keepdims=True)
    np.divide(counts, row_sums, out=counts, where=row_sums > 0)
    return counts


def skipgram_pairs(
    paths: Paths, window: int
) -> Iterable[tuple[int, int]]:
    """Yield (center, context) vertex pairs within a sliding window.

    This is word2vec's pair extraction applied to walks-as-sentences,
    the exact consumption pattern of DeepWalk and node2vec.
    """
    if window < 1:
        raise ReproError("window must be at least 1")
    for path in paths:
        sentence = np.asarray(path, dtype=np.int64)
        length = sentence.size
        for center_pos in range(length):
            low = max(0, center_pos - window)
            high = min(length, center_pos + window + 1)
            for context_pos in range(low, high):
                if context_pos != center_pos:
                    yield int(sentence[center_pos]), int(sentence[context_pos])


def stationary_distribution(
    graph, tolerance: float = 1e-10, max_iterations: int = 10_000
) -> np.ndarray:
    """Exact stationary distribution of the weighted simple walk.

    Power iteration on the row-stochastic transition matrix (dense —
    intended for analysis/test graphs).  For connected undirected
    graphs this is the classic degree/weight-proportional distribution,
    which long uniform walks' visit frequencies converge to — the
    oracle behind the convergence tests.
    """
    size = graph.num_vertices
    transition = np.zeros((size, size), dtype=np.float64)
    for vertex in range(size):
        start, end = graph.edge_range(vertex)
        if start == end:
            transition[vertex, vertex] = 1.0  # absorbing dead end
            continue
        weights = graph.edge_weights(vertex)
        total = weights.sum()
        np.add.at(
            transition[vertex], graph.targets[start:end], weights / total
        )
    state = np.full(size, 1.0 / size)
    for _ in range(max_iterations):
        next_state = state @ transition
        if np.abs(next_state - state).max() < tolerance:
            return next_state
        state = next_state
    return state


def estimate_clustering_coefficient(
    graph, num_samples: int, seed: int = 0
) -> float:
    """Monte-Carlo global clustering coefficient via 2-step walks.

    The classic walk-based estimator: sample a wedge (x <- center -> y
    with x != y) at a vertex chosen proportionally to the number of
    wedges it hosts, and test whether the closing edge x-y exists.  The
    closure rate estimates the global clustering coefficient (triangle
    density over wedge density) — one of the measurement applications
    random walk engines serve.
    """
    from repro.errors import ReproError as _ReproError

    degrees = graph.out_degrees().astype(np.float64)
    wedges = degrees * (degrees - 1)
    total = wedges.sum()
    if total <= 0:
        raise _ReproError("graph has no wedges (all degrees < 2)")
    rng = np.random.default_rng(seed)
    centers = rng.choice(
        graph.num_vertices, size=num_samples, p=wedges / total
    )
    closed = 0
    for center in centers:
        neighbours = graph.neighbors(int(center))
        first, second = rng.choice(neighbours.size, size=2, replace=False)
        if graph.has_edge(int(neighbours[first]), int(neighbours[second])):
            closed += 1
    return closed / num_samples


def save_corpus(paths: Paths, path: str | os.PathLike) -> None:
    """Write one whitespace-separated walk per line."""
    with open(path, "w", encoding="ascii") as handle:
        for walk in paths:
            handle.write(" ".join(str(int(v)) for v in walk) + "\n")


def load_corpus(path: str | os.PathLike) -> list[np.ndarray]:
    """Load a corpus written by :func:`save_corpus`."""
    walks: list[np.ndarray] = []
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            fields = line.split()
            if not fields:
                continue
            try:
                walks.append(np.asarray([int(f) for f in fields], dtype=np.int64))
            except ValueError as exc:
                raise ReproError(
                    f"{path}:{line_number}: malformed corpus line"
                ) from exc
    return walks
