"""Comparison systems the paper evaluates against (sections 3 and 7).

* :class:`~repro.baselines.full_scan.FullScanWalkEngine` — exact
  dynamic walk by per-step O(deg) probability scans (Table 1, Fig 6);
* :class:`~repro.baselines.gemini.GeminiWalkEngine` — random-walk-
  adapted Gemini with mirrors and two-phase sampling (Tables 3/4,
  Fig 7);
* :mod:`~repro.baselines.precompute` — the infeasible second-order
  precompute baseline and its memory estimator (the 970TB/1.89PB
  claim), plus a tiny-graph exact oracle.
"""

from repro.baselines.full_scan import (
    FullScanWalkEngine,
    gather_out_edges,
    segmented_sample,
)
from repro.baselines.gemini import GeminiWalkEngine
from repro.baselines.mixed import MixedNode2Vec
from repro.baselines.typed_metapath import TypedMetaPathWalkEngine
from repro.baselines.precompute import (
    ALIAS_BYTES_PER_ENTRY,
    ITS_BYTES_PER_ENTRY,
    PrecomputedNode2Vec,
    estimate_from_degree_stats,
    second_order_table_bytes,
    second_order_table_entries,
)

__all__ = [
    "FullScanWalkEngine",
    "GeminiWalkEngine",
    "MixedNode2Vec",
    "TypedMetaPathWalkEngine",
    "gather_out_edges",
    "segmented_sample",
    "PrecomputedNode2Vec",
    "second_order_table_entries",
    "second_order_table_bytes",
    "estimate_from_degree_stats",
    "ITS_BYTES_PER_ENTRY",
    "ALIAS_BYTES_PER_ENTRY",
]
