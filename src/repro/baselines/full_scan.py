"""The traditional full-scan baseline for dynamic random walk.

Before KnightKing, exact implementations of dynamic walks recomputed
the transition probability of *every* out-edge at each step, then drew
one edge by inverse transform sampling (paper sections 1 and 3).  The
cost is O(deg) probability computations per step — the "Full-scan
average overhead" column of Table 1 and the "traditional sampling"
series of Figure 6.

:class:`FullScanWalkEngine` implements that strategy on the same
harness as the KnightKing engine, so the two report identical
semantics and directly comparable counters.  For static programs the
scan is unnecessary (probabilities are precomputed), so it falls back
to plain table sampling with zero Pd evaluations, like real systems do.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import WalkEngine
from repro.graph.csr import CSRGraph

__all__ = ["FullScanWalkEngine", "gather_out_edges", "segmented_sample"]


def gather_out_edges(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flat edge indices of all out-edges of ``vertices``.

    Returns ``(edge_indices, segment_ids, segment_offsets)`` where
    ``segment_ids[j]`` says which input lane edge ``j`` belongs to and
    ``segment_offsets`` (length ``len(vertices) + 1``) delimits each
    lane's slice in the gathered arrays.
    """
    starts = graph.offsets[vertices]
    degrees = graph.offsets[vertices + 1] - starts
    total = int(degrees.sum())
    segment_offsets = np.zeros(vertices.size + 1, dtype=np.int64)
    np.cumsum(degrees, out=segment_offsets[1:])
    segment_ids = np.repeat(np.arange(vertices.size, dtype=np.int64), degrees)
    positions = np.arange(total, dtype=np.int64) - np.repeat(
        segment_offsets[:-1], degrees
    )
    edge_indices = np.repeat(starts, degrees) + positions
    return edge_indices, segment_ids, segment_offsets


def segmented_sample(
    mass: np.ndarray,
    segment_offsets: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """ITS draw within each segment of a concatenated mass array.

    Returns ``(choices, totals)``: per segment, the chosen position in
    the *flat* array (or -1 when the segment's total mass is zero) and
    the segment's total mass.  This is the vectorised equivalent of
    building each vertex's CDF and binary-searching it — the full-scan
    baseline's per-step sampling procedure.

    Floating-point caveat: the search runs over one global prefix sum,
    so a segment whose total mass is below the ulp of the preceding
    cumulative mass (a ~1e-16 relative corner) samples an arbitrary
    in-segment position rather than a weight-proportional one — the
    distinction is below float resolution to begin with.
    """
    num_segments = segment_offsets.size - 1
    cumulative = np.cumsum(mass)
    base = np.where(
        segment_offsets[:-1] > 0, cumulative[segment_offsets[:-1] - 1], 0.0
    )
    ends = segment_offsets[1:]
    # Per-segment totals via reduceat, not cumsum differences: a tiny
    # segment following a large one would cancel to zero and kill a
    # walker that still has positive transition mass.
    if mass.size == 0:
        totals = np.zeros(num_segments)
    else:
        starts = np.minimum(segment_offsets[:-1], mass.size - 1)
        totals = np.add.reduceat(mass, starts)
        totals = np.where(ends > segment_offsets[:-1], totals, 0.0)

    choices = np.full(num_segments, -1, dtype=np.int64)
    viable = totals > 0
    if not viable.any():
        return choices, totals
    draws = base + rng.random(num_segments) * totals

    low = segment_offsets[:-1].copy()
    high = ends.copy()
    clamp = max(mass.size - 1, 0)
    active = viable & (low < high)
    while active.any():
        mid = (low + high) >> 1
        go_right = active & (cumulative[np.minimum(mid, clamp)] <= draws)
        low = np.where(go_right, mid + 1, low)
        high = np.where(active & ~go_right, mid, high)
        active = viable & (low < high)
    # Floating-point slack can push a draw one past the segment end.
    choices[viable] = np.minimum(low[viable], ends[viable] - 1)
    return choices, totals


class FullScanWalkEngine(WalkEngine):
    """Exact dynamic walk by per-step full scans (the Table 1 baseline).

    Shares configuration, termination, statistics, and path recording
    with :class:`~repro.core.engine.WalkEngine`; only the sampling
    strategy differs.  ``stats.counters.pd_evaluations`` counts one
    evaluation per scanned edge, and every step costs exactly one
    "trial" (the scan never rejects).
    """

    def _attempt_once(self, walker_ids: np.ndarray) -> np.ndarray:
        if not self.program.dynamic:
            # Static probabilities are precomputed; sample directly.
            edges = self.tables.sample_batch(
                self.walkers.current[walker_ids], self._rng
            )
            self.stats.counters.trials += walker_ids.size
            self.stats.counters.accepts += walker_ids.size
            self._move(walker_ids, edges)
            return np.ones(walker_ids.size, dtype=bool)

        vertices = self.walkers.current[walker_ids]
        edge_indices, segment_ids, segment_offsets = gather_out_edges(
            self.graph, vertices
        )
        dynamic = self.program.batch_dynamic_comp(
            self.graph, self.walkers, walker_ids[segment_ids], edge_indices
        )
        self.stats.counters.pd_evaluations += edge_indices.size
        self.stats.counters.trials += walker_ids.size
        mass = self.tables.static_weights[edge_indices] * dynamic
        choices, _totals = segmented_sample(mass, segment_offsets, self._rng)

        moved = np.ones(walker_ids.size, dtype=bool)
        sampled = choices >= 0
        if sampled.any():
            self.stats.counters.accepts += int(sampled.sum())
            self._move(walker_ids[sampled], edge_indices[choices[sampled]])
        dead = np.flatnonzero(~sampled)
        if dead.size:
            # No out-edge with positive transition probability.
            doomed = walker_ids[dead]
            self.walkers.kill(doomed)
            self.stats.termination.by_dead_end += doomed.size
        return moved

    def _move(self, walker_ids: np.ndarray, edges: np.ndarray) -> None:
        targets = self.graph.targets[edges]
        self.walkers.move(walker_ids, targets)
        self.stats.total_steps += walker_ids.size
        if self._recorder is not None:
            self._recorder.record_moves(walker_ids, targets)
