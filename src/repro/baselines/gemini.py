"""Gemini-adapted random walk — the paper's system baseline.

The paper compares KnightKing against random-walk-adapted Gemini, the
state-of-the-art distributed graph engine (section 7.1).  Gemini's
chunk-based partitioning spreads a vertex's out-edges over multiple
nodes as *mirrors*, which forces a **two-phase sampling** scheme:

* phase 1 — the walker's master samples which node to walk through,
  by ITS over the per-node totals of its out-edge weights;
* phase 2 — the chosen node's mirror samples a specific local edge.

For *static* walks both phases use precomputed distributions, so the
per-step penalty versus KnightKing is purely communication: the
phase-2 round trip, plus Gemini's push-style **mirror broadcast** (a
vertex update notifies all its mirrors, wasteful when a walker follows
a single edge), plus walker migration.

For *dynamic* walks nothing can be precomputed: every step recomputes
the transition probability of **every** out-edge across all mirrors
(the O(deg) explosion of Tables 3/4), and the per-node sums must be
collected by the master before phase 1 — one request/response pair per
remote mirror per step.  Mirror scattering also rules out rejection
sampling: reading one specific edge from the master costs a two-round
exchange, so candidate-then-check is no cheaper than scanning.

:class:`GeminiWalkEngine` implements this on the cluster simulator:
the walk itself is exact (two-phase sampling draws from the same joint
law as direct sampling), while work and messages are counted per node
under Gemini's layout and charged to the same cost model as
KnightKing's engine — apples-to-apples simulated seconds.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.full_scan import gather_out_edges, segmented_sample
from repro.cluster.cost_model import CostModel
from repro.cluster.engine import DistributedWalkEngine
from repro.cluster.network import MessageKind
from repro.cluster.scheduler import ThreadPolicy
from repro.core.config import WalkConfig
from repro.core.program import WalkerProgram
from repro.graph.csr import CSRGraph
from repro.graph.partition import MirroredPartition

__all__ = ["GeminiWalkEngine"]


class GeminiWalkEngine(DistributedWalkEngine):
    """Random-walk-adapted Gemini on the cluster simulator."""

    def __init__(
        self,
        graph: CSRGraph,
        program: WalkerProgram,
        config: WalkConfig | None = None,
        num_nodes: int = 8,
        thread_policy: ThreadPolicy | None = None,
        cost_model: CostModel | None = None,
    ) -> None:
        super().__init__(
            graph,
            program,
            config,
            num_nodes=num_nodes,
            thread_policy=thread_policy,
            cost_model=cost_model,
        )
        self.mirrored = MirroredPartition(graph, num_nodes)
        self._mirror_counts = self.mirrored.mirror_counts
        # Whether each vertex's master also hosts some of its out-edges
        # (then one "mirror" interaction is local and free).
        masters = self.partition.owners(np.arange(graph.num_vertices))
        self._master_is_mirror = self.mirrored.hosts_edges(
            np.arange(graph.num_vertices), masters
        )

    # ------------------------------------------------------------------
    def _distributed_round(self, walker_ids: np.ndarray) -> np.ndarray:
        graph, program, walkers = self.graph, self.program, self.walkers
        counters = self.stats.counters
        vertices = walkers.current[walker_ids]
        masters = self.partition.owners(vertices)

        remote_mirrors = (
            self._mirror_counts[vertices]
            - self._master_is_mirror[vertices].astype(np.int64)
        )

        if program.dynamic:
            # Recompute Pd for every out-edge, attributed to the node
            # hosting each edge, then collect per-node sums (one
            # request/response pair per remote mirror) and ITS-sample.
            edge_indices, segment_ids, segment_offsets = gather_out_edges(
                graph, vertices
            )
            dynamic = program.batch_dynamic_comp(
                graph, walkers, walker_ids[segment_ids], edge_indices
            )
            counters.pd_evaluations += edge_indices.size
            scan_owners = self.mirrored.edge_owners[edge_indices]
            np.add.at(self._node_pd, scan_owners, 1)

            # Second-order connectivity checks (node2vec's d_tx) stay
            # local under Gemini's layout: the node scanning candidate
            # edge (v, x) is owner(x), which also hosts every edge
            # *into* x, so "does t -> x exist?" is a local binary
            # search.  The dominance of connectivity-check cost the
            # paper reports is therefore the sheer per-step *volume* of
            # checks (one per scanned edge), charged via pd_cost above.
            mass = self.tables.static_weights[edge_indices] * dynamic
            choices, _ = segmented_sample(mass, segment_offsets, self._rng)
            sampled = choices >= 0
            edges = np.where(sampled, edge_indices[np.maximum(choices, 0)], -1)

            scan_requests = 2 * remote_mirrors
            self.stats.messages_sent += self.network.record_scatter(
                MessageKind.STATE_QUERY, masters, scan_requests
            )
            np.add.at(self._node_msgs, masters, scan_requests)
            counters.trials += walker_ids.size
        else:
            # Both phases precomputed; drawing the edge directly from
            # the global tables is distributionally identical to
            # phase-1 (node) then phase-2 (edge) ITS draws.
            edges = self.tables.sample_batch(vertices, self._rng)
            sampled = np.ones(walker_ids.size, dtype=bool)
            counters.trials += 2 * walker_ids.size  # two ITS draws

        moved = np.ones(walker_ids.size, dtype=bool)
        if sampled.any():
            lanes = np.flatnonzero(sampled)
            chosen = edges[lanes]
            chosen_owner = self.mirrored.edge_owners[chosen]
            # Phase 2 hand-off to the node hosting the sampled edge.
            self.stats.messages_sent += self.network.record_batch(
                MessageKind.STATE_QUERY, masters[lanes], chosen_owner
            )
            self.stats.messages_sent += self.network.record_batch(
                MessageKind.QUERY_RESPONSE, chosen_owner, masters[lanes]
            )
            np.add.at(self._node_msgs, masters[lanes], 2)
            np.add.at(self._node_msgs, chosen_owner, 2)

            # Push-style mirror broadcast: the moving vertex notifies
            # every remote mirror (the waste the paper calls out).
            broadcast = remote_mirrors[lanes]
            self.stats.messages_sent += self.network.record_scatter(
                MessageKind.WALKER_MIGRATE, masters[lanes], broadcast
            )
            np.add.at(self._node_msgs, masters[lanes], broadcast)

            # Walker migration to the new vertex's master.
            new_vertices = graph.targets[chosen]
            new_masters = self.partition.owners(new_vertices)
            migrated = self.network.record_batch(
                MessageKind.WALKER_MIGRATE, chosen_owner, new_masters
            )
            self.stats.messages_sent += migrated
            np.add.at(self._node_msgs, chosen_owner, 1)
            np.add.at(self._node_msgs, new_masters, 1)

            movers = walker_ids[lanes]
            counters.accepts += movers.size
            self.walkers.move(movers, new_vertices)
            self.stats.total_steps += movers.size
            if self._recorder is not None:
                self._recorder.record_moves(movers, new_vertices)

        dead = np.flatnonzero(~sampled)
        if dead.size:
            doomed = walker_ids[dead]
            self.walkers.kill(doomed)
            self.stats.termination.by_dead_end += doomed.size
        return moved
