"""node2vec with Ps folded into Pd — the Figure 8 "mixed" ablation.

The paper argues that *decoupling* the static component (edge weights)
from the dynamic component is a performance feature, not just an API
nicety: traditional dynamic sampling computes the product
``weight * pd`` per edge, so a rejection sampler built on it must draw
candidates uniformly and use an envelope of
``max_weight(v) * max(1/p, 1, 1/q)`` — the weight's dynamic range
inflates the dartboard's dead area, and heavy-tailed weights make it
worse (Figure 8's "mixed" series grows with the maximum edge weight
while the "decoupled" series stays flat).

:class:`MixedNode2Vec` implements exactly that mixed formulation on the
same engine, isolating the effect of the unified Ps/Pd decomposition.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.node2vec import Node2Vec
from repro.core.walker import WalkerSet
from repro.graph.csr import CSRGraph

__all__ = ["MixedNode2Vec"]


class MixedNode2Vec(Node2Vec):
    """node2vec sampling ``weight * Pd`` dynamically over uniform
    candidates (no static pre-processing of the weights)."""

    name = "node2vec-mixed"

    def __init__(self, p: float = 1.0, q: float = 1.0) -> None:
        # biased=True semantically, but the weight is applied inside
        # the dynamic component below; folding is disabled because the
        # envelope already has to absorb the weight range.
        super().__init__(p=p, q=q, biased=True, fold_outlier=False)

    def edge_static_comp(self, graph: CSRGraph) -> np.ndarray:
        """Uniform candidates: the weight is NOT pre-processed."""
        return np.ones(graph.num_edges, dtype=np.float64)

    def _mixed_weights(self, graph: CSRGraph) -> np.ndarray:
        if graph.weights is None:
            return np.ones(graph.num_edges, dtype=np.float64)
        return graph.weights

    def upper_bound_array(self, graph: CSRGraph) -> np.ndarray:
        """Envelope must cover max(weight) * max(Pd) per vertex."""
        weights = self._mixed_weights(graph)
        max_weight = np.zeros(graph.num_vertices, dtype=np.float64)
        for vertex in range(graph.num_vertices):
            start, end = graph.edge_range(vertex)
            if start < end:
                max_weight[vertex] = weights[start:end].max()
        # Vertices with no edges never sample; give them a positive
        # envelope so validation passes.
        max_weight[max_weight == 0.0] = 1.0
        return max_weight * max(self.return_pd, 1.0, self.inout_pd)

    def lower_bound_array(self, graph: CSRGraph) -> np.ndarray:
        weights = self._mixed_weights(graph)
        min_weight = np.zeros(graph.num_vertices, dtype=np.float64)
        for vertex in range(graph.num_vertices):
            start, end = graph.edge_range(vertex)
            if start < end:
                min_weight[vertex] = weights[start:end].min()
        return min_weight * self.floor

    def edge_dynamic_comp(self, graph, walker, edge_index, query_result=None):
        base = super().edge_dynamic_comp(graph, walker, edge_index, query_result)
        return base * float(self._mixed_weights(graph)[edge_index])

    def batch_dynamic_comp(self, graph, walkers, walker_ids, candidate_edges):
        base = super().batch_dynamic_comp(
            graph, walkers, walker_ids, candidate_edges
        )
        return base * self._mixed_weights(graph)[candidate_edges]

    def batch_dynamic_with_answers(
        self, graph, walkers, walker_ids, candidate_edges, answers, answered
    ):
        base = super().batch_dynamic_with_answers(
            graph, walkers, walker_ids, candidate_edges, answers, answered
        )
        return base * self._mixed_weights(graph)[candidate_edges]

    def batch_outliers(
        self, graph: CSRGraph, walkers: WalkerSet, walker_ids: np.ndarray
    ):
        return None  # naive mixed formulation: no folding

    def outlier_specs(self, graph, walker):
        return ()
