"""The infeasible second-order precompute baseline (paper section 3).

Static-walk optimizations (ITS arrays, alias tables) can in principle
be extended to second-order walks by precomputing one table per
*(previous vertex, current vertex)* state — i.e. one table per directed
edge, each of size ``out_degree(current)``.  The paper notes this needs
about **970 TB** (ITS) or **1.89 PB** (alias) for node2vec on the 11 GB
Twitter graph, which is why pre-processing systems "are known to not
scale well".

This module provides both halves of that claim:

* :func:`second_order_table_entries` / :func:`second_order_table_bytes`
  — the analytic memory estimator, applicable to any graph (and to
  Table 2's published Twitter statistics, reproducing the paper's
  numbers); and
* :class:`PrecomputedNode2Vec` — an actual implementation that builds
  every per-edge alias table, usable only on tiny graphs, serving as an
  exact-sampling oracle in tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.walker import NO_VERTEX
from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.sampling.alias import AliasTable

__all__ = [
    "second_order_table_entries",
    "second_order_table_bytes",
    "estimate_from_degree_stats",
    "ITS_BYTES_PER_ENTRY",
    "ALIAS_BYTES_PER_ENTRY",
    "PrecomputedNode2Vec",
]

# One float32 CDF value per entry for ITS; alias needs a probability
# plus an alias index (float32 + int32).
ITS_BYTES_PER_ENTRY = 4
ALIAS_BYTES_PER_ENTRY = 8


def second_order_table_entries(graph: CSRGraph) -> int:
    """Entries needed to precompute all second-order distributions.

    One table per directed edge (t -> v), each with ``out_degree(v)``
    entries: total = sum over edges of the destination's out-degree.
    """
    degrees = graph.out_degrees()
    return int(degrees[graph.targets].sum())


def second_order_table_bytes(
    graph: CSRGraph, bytes_per_entry: int = ITS_BYTES_PER_ENTRY
) -> int:
    """Precompute memory in bytes for a given table representation."""
    return second_order_table_entries(graph) * bytes_per_entry


def estimate_from_degree_stats(
    num_vertices: int,
    degree_mean: float,
    degree_variance: float,
    bytes_per_entry: int = ITS_BYTES_PER_ENTRY,
) -> float:
    """Estimate precompute bytes from published degree statistics.

    For an undirected graph, ``sum over edges (t,v) of deg(v)`` equals
    ``sum over v of deg(v)^2 = |V| * (variance + mean^2)``.  Plugging in
    Table 2's Twitter numbers (|V| = 41.7M, mean 70.4, variance 6.42e6)
    gives about 1.07 PB for ITS and 2.1 PB for alias — the order of
    magnitude of the paper's 970 TB / 1.89 PB claim.
    """
    second_moment = degree_variance + degree_mean**2
    return num_vertices * second_moment * bytes_per_entry


class PrecomputedNode2Vec:
    """Exact node2vec sampling from fully precomputed alias tables.

    Builds one alias table per (previous, current) edge state plus one
    per start vertex.  Memory is O(sum over edges of deg(target)) —
    fine for toy graphs, impossible at scale, which is the point.
    Used in tests as an exact-distribution oracle for the rejection
    sampler.
    """

    def __init__(
        self, graph: CSRGraph, p: float, q: float, biased: bool = True
    ) -> None:
        self.graph = graph
        self.p = float(p)
        self.q = float(q)
        return_pd = 1.0 / self.p
        inout_pd = 1.0 / self.q

        static = (
            graph.weights
            if (biased and graph.weights is not None)
            else np.ones(graph.num_edges, dtype=np.float64)
        )
        self._start_tables: dict[int, AliasTable] = {}
        self._state_tables: dict[tuple[int, int], AliasTable] = {}
        self.table_entries = 0

        for current in range(graph.num_vertices):
            start, end = graph.edge_range(current)
            if start == end:
                continue
            weights = static[start:end].astype(np.float64)
            if weights.sum() > 0:
                self._start_tables[current] = AliasTable(weights)
                self.table_entries += weights.size
            neighbours = graph.targets[start:end]
            # One table per possible previous vertex of `current`.
            for previous in np.unique(graph.targets[start:end]):
                previous = int(previous)
                if not graph.has_edge(previous, current):
                    continue
                dynamic = np.empty(end - start, dtype=np.float64)
                for offset, candidate in enumerate(neighbours):
                    candidate = int(candidate)
                    if candidate == previous:
                        dynamic[offset] = return_pd
                    elif graph.has_edge(previous, candidate):
                        dynamic[offset] = 1.0
                    else:
                        dynamic[offset] = inout_pd
                mass = weights * dynamic
                if mass.sum() > 0:
                    self._state_tables[(previous, current)] = AliasTable(mass)
                    self.table_entries += mass.size

    def sample(
        self, current: int, previous: int, rng: np.random.Generator
    ) -> int:
        """Draw the next vertex exactly; O(1) per draw, as the paper's
        hypothetical precompute baseline would."""
        if previous == NO_VERTEX:
            table = self._start_tables.get(current)
        else:
            table = self._state_tables.get((previous, current))
        if table is None:
            raise SamplingError(
                f"no precomputed table for state ({previous}, {current})"
            )
        start, _ = self.graph.edge_range(current)
        return int(self.graph.targets[start + table.sample(rng)])

    def memory_bytes(self, bytes_per_entry: int = ALIAS_BYTES_PER_ENTRY) -> int:
        """Bytes the precomputed tables would occupy in a compact
        (non-Python) representation."""
        return self.table_entries * bytes_per_entry
