"""Meta-path walking via per-edge-type precomputed tables.

The algorithm-specific alternative to rejection sampling that paper
section 3 attributes to Euler: pre-build one alias table per
(vertex, edge type) partition, then sample each Meta-path step in O(1)
with zero dynamic-probability evaluations.  Exact, and as fast as
static sampling — but it *only* works because Meta-path's dynamic
component is an indicator over a static edge attribute; it cannot
generalise to node2vec-style walker-history-dependent probabilities.

:class:`TypedMetaPathWalkEngine` runs a
:class:`~repro.algorithms.metapath.MetaPathWalk` program on this
strategy, sharing all harness semantics with the other engines so the
ablation benchmark can compare the three exact approaches (full-scan,
rejection, typed tables) head-to-head.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.metapath import SCHEME_STATE, MetaPathWalk
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph
from repro.sampling.typed import TypedVertexAliasTables

__all__ = ["TypedMetaPathWalkEngine"]


class TypedMetaPathWalkEngine(WalkEngine):
    """Exact Meta-path execution over per-type alias tables."""

    def __init__(
        self,
        graph: CSRGraph,
        program: MetaPathWalk,
        config: WalkConfig | None = None,
    ) -> None:
        if not isinstance(program, MetaPathWalk):
            raise ProgramError(
                "TypedMetaPathWalkEngine only runs MetaPathWalk programs"
            )
        super().__init__(graph, program, config)
        self.typed_tables = TypedVertexAliasTables(
            graph, self.tables.static_weights
        )
        # Pre-resolve each walker's scheme as arrays for fast lookup.
        self._scheme_matrix = program._matrix
        self._scheme_lengths = program._lengths

    def _required_types(self, walker_ids: np.ndarray) -> np.ndarray:
        scheme_ids = self.walkers.state(SCHEME_STATE)[walker_ids]
        steps = self.walkers.steps[walker_ids]
        positions = steps % self._scheme_lengths[scheme_ids]
        return self._scheme_matrix[scheme_ids, positions]

    def _attempt_once(self, walker_ids: np.ndarray) -> np.ndarray:
        vertices = self.walkers.current[walker_ids]
        required = self._required_types(walker_ids)
        edges = self.typed_tables.sample_batch(vertices, required, self._rng)
        self.stats.counters.trials += walker_ids.size

        sampled = edges >= 0
        moved = np.ones(walker_ids.size, dtype=bool)
        if sampled.any():
            movers = walker_ids[sampled]
            targets = self.graph.targets[edges[sampled]]
            self.stats.counters.accepts += movers.size
            self.walkers.move(movers, targets)
            self.stats.total_steps += movers.size
            if self._recorder is not None:
                self._recorder.record_moves(movers, targets)
        dead = np.flatnonzero(~sampled)
        if dead.size:
            # No edge of the required type: the walk terminates, per
            # the no-positive-probability rule.
            doomed = walker_ids[dead]
            self.walkers.kill(doomed)
            self.stats.termination.by_dead_end += doomed.size
        return moved
