"""Benchmark harness: one runner per paper table/figure.

Each module exposes ``run(...)`` returning a
:class:`~repro.bench.reporting.ResultTable` that prints the paper-style
rows; the pytest-benchmark wrappers in ``benchmarks/`` drive them and
archive the outputs.  See DESIGN.md's experiment index for the mapping.
"""

from repro.bench import (
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    memory,
    navrate,
    table1,
    table5,
    tables34,
)
from repro.bench.reporting import ResultTable

__all__ = [
    "ResultTable",
    "table1",
    "tables34",
    "table5",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "memory",
    "navrate",
]
