"""Figure 5 — tail behaviour: random walk vs BFS (LiveJournal).

BFS has a fast-growing, fast-shrinking active set completing in ~12
iterations; a random walk with non-deterministic termination (PPR) has
a *longer and thinner* tail: a handful of walkers lag for hundreds of
iterations.  The experiment reports both active-set series on the
LiveJournal stand-in.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import PPR
from repro.bench.reporting import ResultTable
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.datasets import load_dataset
from repro.graph.traversal import bfs

__all__ = ["run", "tail_series"]


def tail_series(
    scale: float = 0.5,
    termination_probability: float = 1.0 / 80.0,
    seed: int = 0,
) -> tuple[list[int], list[int]]:
    """(bfs frontier sizes, walk active counts) per iteration."""
    graph = load_dataset("livejournal", scale=scale)
    bfs_result = bfs(graph, source=0)

    config = WalkConfig(
        num_walkers=graph.num_vertices,
        max_steps=None,
        termination_probability=termination_probability,
        seed=seed,
    )
    walk = WalkEngine(graph, PPR(), config).run()
    return bfs_result.frontier_sizes, walk.stats.active_per_iteration


def run(scale: float = 0.5, seed: int = 0) -> ResultTable:
    """Regenerate the Figure 5 series (sampled display rows)."""
    bfs_sizes, walk_active = tail_series(scale=scale, seed=seed)
    table = ResultTable(
        title="Figure 5: active set per iteration, BFS vs random walk "
        "(LiveJournal stand-in)",
        columns=["iteration", "BFS active", "walk active"],
    )
    display = sorted(
        set(
            np.unique(
                np.geomspace(
                    1, max(len(bfs_sizes), len(walk_active)), num=16
                ).astype(int)
            ).tolist()
        )
    )
    for iteration in display:
        table.add_row(
            iteration,
            bfs_sizes[iteration - 1] if iteration <= len(bfs_sizes) else 0,
            walk_active[iteration - 1] if iteration <= len(walk_active) else 0,
        )
    table.add_note(
        f"BFS completes in {len(bfs_sizes)} iterations (paper: 12); the "
        f"walk drains over {len(walk_active)} iterations with a long thin "
        "tail of stragglers"
    )
    return table
