"""Figure 6 — sampling overhead vs graph topology.

Three sweeps on synthetic graphs, comparing traditional full-scan
sampling against KnightKing's rejection sampling; the metric is Pd
evaluations per walker step (the paper's "number of calculating
per-edge transition probabilities needed for walking one step"):

* 6a — uniform-degree graphs, growing density: full-scan cost grows
  linearly with degree, rejection stays constant (~0.75);
* 6b — truncated power-law graphs, growing truncation bound: full-scan
  cost grows much faster than the mean degree (the paper sees 67x cost
  growth for 3.9x mean-degree growth), rejection flat;
* 6c — a uniform graph plus high-degree hotspots: full-scan cost grows
  linearly with the *number of hotspots*, rejection flat.

All sweeps use unbiased node2vec (p = 2, q = 0.5), the paper's running
example of dynamic walks.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.algorithms import Node2Vec
from repro.baselines import FullScanWalkEngine
from repro.bench.reporting import ResultTable
from repro.bench.workloads import NODE2VEC_P, NODE2VEC_Q
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    hotspot_graph,
    truncated_power_law_graph,
    uniform_degree_graph,
)

__all__ = ["run_6a", "run_6b", "run_6c", "measure_overheads"]


def measure_overheads(
    graph: CSRGraph,
    walk_length: int,
    num_walkers: int,
    seed: int = 0,
) -> tuple[float, float]:
    """(full-scan, KnightKing) Pd evaluations per step on ``graph``."""
    program = Node2Vec(p=NODE2VEC_P, q=NODE2VEC_Q, biased=False)
    config = WalkConfig(
        num_walkers=num_walkers, max_steps=walk_length, seed=seed
    )
    full = FullScanWalkEngine(graph, program, config).run()
    rejection = WalkEngine(graph, program, config).run()
    return (
        full.stats.pd_evaluations_per_step,
        rejection.stats.pd_evaluations_per_step,
    )


def run_6a(
    degrees: Sequence[int] = (10, 20, 40, 80, 160, 320),
    num_vertices: int = 8000,
    walk_length: int = 20,
    num_walkers: int = 400,
    seed: int = 0,
) -> ResultTable:
    """6a: density sweep over uniform-degree graphs."""
    table = ResultTable(
        title="Figure 6a: sampling overhead vs uniform degree",
        columns=["degree", "full-scan edges/step", "KnightKing edges/step"],
    )
    for degree in degrees:
        graph = uniform_degree_graph(
            num_vertices, degree, seed=seed + degree, undirected=True
        )
        full, rejection = measure_overheads(
            graph, walk_length, num_walkers, seed=seed
        )
        table.add_row(2 * degree, f"{full:.1f}", f"{rejection:.2f}")
    table.add_note(
        "full-scan grows linearly with degree; KnightKing stays constant "
        "(paper: ~0.75 thanks to lower-bound pre-acceptance)"
    )
    return table


def run_6b(
    max_degrees: Sequence[int] = (50, 100, 400, 1600, 6400),
    num_vertices: int = 10000,
    walk_length: int = 20,
    num_walkers: int = 400,
    seed: int = 0,
) -> ResultTable:
    """6b: skewness sweep via the power-law truncation bound.

    The paper raises the bound from 100 to 25600 (256x); this sweep
    covers 128x at simulator scale with the same exponent family.
    """
    table = ResultTable(
        title="Figure 6b: sampling overhead vs power-law truncation bound",
        columns=[
            "max degree",
            "mean degree",
            "full-scan edges/step",
            "KnightKing edges/step",
        ],
    )
    for max_degree in max_degrees:
        graph = truncated_power_law_graph(
            num_vertices,
            exponent=1.9,
            min_degree=5,
            max_degree=max_degree,
            seed=seed + max_degree,
            undirected=True,
        )
        full, rejection = measure_overheads(
            graph, walk_length, num_walkers, seed=seed
        )
        table.add_row(
            max_degree,
            f"{graph.degree_stats().mean:.1f}",
            f"{full:.1f}",
            f"{rejection:.2f}",
        )
    table.add_note(
        "full-scan overhead grows far faster than the mean degree "
        "(paper: 67x cost for 3.9x mean); KnightKing stays constant"
    )
    return table


def run_6c(
    hotspot_counts: Sequence[int] = (0, 1, 2, 4, 8),
    num_vertices: int = 10000,
    base_degree: int = 20,
    walk_length: int = 20,
    num_walkers: int = 400,
    seed: int = 0,
) -> ResultTable:
    """6c: hotspot sweep — a few very popular vertices."""
    table = ResultTable(
        title="Figure 6c: sampling overhead vs number of hotspot vertices",
        columns=[
            "hotspots",
            "full-scan edges/step",
            "KnightKing edges/step",
        ],
    )
    hotspot_degree = num_vertices // 2
    for count in hotspot_counts:
        graph = hotspot_graph(
            num_vertices,
            base_degree=base_degree,
            num_hotspots=count,
            hotspot_degree=hotspot_degree,
            seed=seed + count,
        )
        full, rejection = measure_overheads(
            graph, walk_length, num_walkers, seed=seed
        )
        table.add_row(count, f"{full:.1f}", f"{rejection:.2f}")
    table.add_note(
        "full-scan overhead grows linearly with hotspot count (paper: "
        "100 -> 1977 with two hotspots); KnightKing is 'boring as ever'"
    )
    return table
