"""Figure 7 — node2vec scalability, 1 to 8 nodes.

Unbiased node2vec on the Friendster stand-in, run on growing simulated
clusters with both systems.  As in the paper, each system's times are
normalized to its own single-node run ("results are normalized to each
system's single-node run time"), and the KnightKing 1-node baseline's
absolute advantage over Gemini's is reported alongside (paper: 20.9x).
Both systems scale similarly though not linearly.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.algorithms import Node2Vec
from repro.baselines import GeminiWalkEngine
from repro.bench.reporting import ResultTable
from repro.bench.workloads import (
    NODE2VEC_P,
    NODE2VEC_Q,
    extrapolate_walkers,
)
from repro.cluster import DistributedWalkEngine
from repro.core.config import WalkConfig
from repro.graph.datasets import load_dataset

__all__ = ["run", "scaling_series"]


def scaling_series(
    node_counts: Sequence[int] = (1, 2, 4, 8),
    scale: float = 0.25,
    walk_length: int = 40,
    gemini_fraction: float = 0.1,
    seed: int = 0,
) -> tuple[list[float], list[float]]:
    """(KnightKing, Gemini) simulated seconds per cluster size."""
    graph = load_dataset("friendster", scale=scale)
    program_args = dict(p=NODE2VEC_P, q=NODE2VEC_Q, biased=False)

    knightking_times = []
    gemini_times = []
    for nodes in node_counts:
        kk_config = WalkConfig(
            num_walkers=graph.num_vertices, max_steps=walk_length, seed=seed
        )
        kk = DistributedWalkEngine(
            graph, Node2Vec(**program_args), kk_config, num_nodes=nodes
        ).run()
        knightking_times.append(kk.cluster.simulated_seconds)

        sampled = max(1, int(graph.num_vertices * gemini_fraction))
        gem_config = WalkConfig(
            num_walkers=sampled, max_steps=walk_length, seed=seed
        )
        gem = GeminiWalkEngine(
            graph, Node2Vec(**program_args), gem_config, num_nodes=nodes
        ).run()
        gemini_times.append(
            extrapolate_walkers(gem.cluster.simulated_seconds, gemini_fraction)
        )
    return knightking_times, gemini_times


def run(
    node_counts: Sequence[int] = (1, 2, 4, 8),
    scale: float = 0.25,
    seed: int = 0,
) -> ResultTable:
    """Regenerate Figure 7."""
    knightking, gemini = scaling_series(
        node_counts=node_counts, scale=scale, seed=seed
    )
    table = ResultTable(
        title="Figure 7: node2vec scalability on Friendster stand-in "
        "(normalized to each system's 1-node time)",
        columns=[
            "nodes",
            "KnightKing speedup",
            "Gemini speedup",
            "KnightKing (s)",
            "Gemini (s)",
        ],
    )
    for index, nodes in enumerate(node_counts):
        table.add_row(
            nodes,
            f"{knightking[0] / knightking[index]:.2f}",
            f"{gemini[0] / gemini[index]:.2f}",
            f"{knightking[index]:.3f}",
            f"{gemini[index]:.3f}",
        )
    table.add_note(
        f"KnightKing 1-node baseline advantage over Gemini: "
        f"{gemini[0] / knightking[0]:.1f}x (paper: 20.9x)"
    )
    return table
