"""Figure 8 — performance impact of decomposing Ps from Pd.

Biased node2vec on the Twitter stand-in, repeating the run with growing
maximum edge weight under two weight distributions (uniform and
power-law) and two probability formulations:

* "decoupled" — the unified definition: weights pre-processed as Ps,
  Pd contains only the p/q terms (KnightKing's approach);
* "mixed" — the traditional definition: uniform candidates, weight
  folded into Pd, inflating the rejection envelope.

Paper result: mixed run time grows with the maximum weight (worse
under power-law weights); decoupled stays flat.  We report both wall
time and trials/step — the machine-independent cause of the slowdown.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.algorithms import Node2Vec
from repro.baselines import MixedNode2Vec
from repro.bench.reporting import ResultTable
from repro.bench.workloads import NODE2VEC_P, NODE2VEC_Q
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.builder import assign_power_law_weights, assign_random_weights
from repro.graph.datasets import load_dataset

__all__ = ["run", "decoupling_series"]


def _weighted_graph(base, distribution: str, max_weight: float, seed: int):
    if distribution == "uniform":
        return assign_random_weights(base, seed=seed, low=1.0, high=max_weight)
    if distribution == "power-law":
        return assign_power_law_weights(
            base, seed=seed, max_weight=max_weight, exponent=2.0
        )
    raise ValueError(f"unknown weight distribution {distribution!r}")


def decoupling_series(
    max_weights: Sequence[float] = (2.0, 4.0, 8.0, 16.0, 32.0),
    distribution: str = "uniform",
    scale: float = 0.3,
    walk_length: int = 30,
    walker_fraction: float = 0.5,
    seed: int = 0,
) -> list[tuple[float, float, float, float, float]]:
    """Rows of (max_weight, mixed_s, decoupled_s, mixed_trials,
    decoupled_trials) for one weight distribution."""
    base = load_dataset("twitter", scale=scale)
    num_walkers = max(1, int(base.num_vertices * walker_fraction))
    rows = []
    for max_weight in max_weights:
        graph = _weighted_graph(base, distribution, max_weight, seed)
        config = WalkConfig(
            num_walkers=num_walkers, max_steps=walk_length, seed=seed
        )
        mixed = WalkEngine(graph, MixedNode2Vec(NODE2VEC_P, NODE2VEC_Q), config).run()
        decoupled = WalkEngine(
            graph, Node2Vec(NODE2VEC_P, NODE2VEC_Q, biased=True), config
        ).run()
        rows.append(
            (
                max_weight,
                mixed.stats.wall_time_seconds,
                decoupled.stats.wall_time_seconds,
                mixed.stats.trials_per_step,
                decoupled.stats.trials_per_step,
            )
        )
    return rows


def run(
    max_weights: Sequence[float] = (2.0, 4.0, 8.0, 16.0, 32.0),
    scale: float = 0.3,
    seed: int = 0,
) -> ResultTable:
    """Regenerate Figure 8 (both weight distributions)."""
    table = ResultTable(
        title="Figure 8: decoupled Ps/Pd vs mixed formulation, biased "
        "node2vec (Twitter stand-in)",
        columns=[
            "weights",
            "max weight",
            "mixed (s)",
            "decoupled (s)",
            "mixed trials/step",
            "decoupled trials/step",
        ],
    )
    for distribution in ("uniform", "power-law"):
        for row in decoupling_series(
            max_weights=max_weights,
            distribution=distribution,
            scale=scale,
            seed=seed,
        ):
            max_weight, mixed_s, dec_s, mixed_t, dec_t = row
            table.add_row(
                distribution,
                f"{max_weight:g}",
                f"{mixed_s:.2f}",
                f"{dec_s:.2f}",
                f"{mixed_t:.2f}",
                f"{dec_t:.2f}",
            )
    table.add_note(
        "mixed cost grows with max weight (worse for power-law weights); "
        "decoupled stays flat — the paper's argument for the unified "
        "transition probability definition"
    )
    return table
