"""Figure 9 — impact of straggler-aware scheduling (light mode).

PPR (Pt = 0.149, the PowerWalk setting) and unbiased node2vec on the
LiveJournal/Friendster/Twitter stand-ins, with the light-mode
optimization on vs off.  The paper reports up to 66.1% execution-time
reduction (average 37.2% for PPR, 16.3% for node2vec), with the
largest gains on the smallest graph, where the long tail is a bigger
share of the run.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.algorithms import Node2Vec, POWERWALK_TERMINATION, PPR
from repro.bench.reporting import ResultTable
from repro.bench.workloads import NODE2VEC_P, NODE2VEC_Q
from repro.cluster import DistributedWalkEngine, ThreadPolicy
from repro.core.config import WalkConfig
from repro.graph.datasets import load_dataset

__all__ = ["run", "straggler_pair"]

NUM_NODES = 8


def straggler_pair(
    dataset: str,
    algorithm: str,
    scale: float,
    seed: int = 0,
    threshold: int | None = None,
) -> tuple[float, float]:
    """(baseline, light-mode) simulated seconds for one workload.

    The paper's absolute threshold (4000 active walkers per node) is
    calibrated to multi-million-walker runs; at simulator scale the
    equivalent knee — where per-superstep thread overhead overtakes the
    parallel-work saving — sits at a fixed fraction of the initial
    per-node walker count, so the default threshold is 25% of
    walkers/node (capped like the paper's absolute setting).
    """
    graph = load_dataset(dataset, scale=scale)
    if threshold is None:
        threshold = max(32, min(4000, graph.num_vertices // NUM_NODES // 4))
    if algorithm == "ppr":
        program_factory = PPR
        config = WalkConfig(
            num_walkers=graph.num_vertices,
            max_steps=None,
            termination_probability=POWERWALK_TERMINATION,
            seed=seed,
        )
    elif algorithm == "node2vec":
        program_factory = lambda: Node2Vec(  # noqa: E731 - tiny factory
            p=NODE2VEC_P, q=NODE2VEC_Q, biased=False
        )
        config = WalkConfig(
            num_walkers=graph.num_vertices, max_steps=40, seed=seed
        )
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    times = []
    for light in (False, True):
        engine = DistributedWalkEngine(
            graph,
            program_factory(),
            config,
            num_nodes=NUM_NODES,
            thread_policy=ThreadPolicy(light_mode=light, threshold=threshold),
        )
        times.append(engine.run().cluster.simulated_seconds)
    return times[0], times[1]


def run(
    datasets: Sequence[str] = ("livejournal", "friendster", "twitter"),
    scale: float = 0.3,
    seed: int = 0,
) -> ResultTable:
    """Regenerate Figure 9."""
    table = ResultTable(
        title="Figure 9: straggler-aware scheduling (light mode), "
        "simulated seconds on 8 nodes",
        columns=[
            "algorithm",
            "graph",
            "baseline (s)",
            "light mode (s)",
            "reduction",
        ],
    )
    for algorithm in ("ppr", "node2vec"):
        for dataset in datasets:
            baseline, light = straggler_pair(
                dataset, algorithm, scale=scale, seed=seed
            )
            reduction = 100.0 * (1.0 - light / baseline)
            table.add_row(
                algorithm,
                dataset,
                f"{baseline:.4f}",
                f"{light:.4f}",
                f"{reduction:.1f}%",
            )
    table.add_note(
        "paper: up to 66.1% reduction, average 37.2% (PPR) / 16.3% "
        "(node2vec), largest on the smallest graph"
    )
    return table
