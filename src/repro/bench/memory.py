"""Section 3's precompute-memory claim.

"exact computation of node2vec using CDF or alias requires about 970TB
or 1.89PB memory, respectively, on the 11 GB Twitter graph" — the
reason pre-processing systems cannot scale to second-order walks.

Two reproductions:

* analytic — plug Table 2's published Twitter statistics into the
  second-moment estimator;
* empirical — actually build every second-order alias table on a tiny
  graph (:class:`~repro.baselines.precompute.PrecomputedNode2Vec`) and
  check the entry count against the estimator.
"""

from __future__ import annotations

from repro.baselines.precompute import (
    ALIAS_BYTES_PER_ENTRY,
    ITS_BYTES_PER_ENTRY,
    PrecomputedNode2Vec,
    estimate_from_degree_stats,
    second_order_table_entries,
)
from repro.bench.reporting import ResultTable
from repro.graph.generators import uniform_degree_graph

__all__ = ["run"]

# Table 2, Twitter row.
TWITTER_VERTICES = 41.7e6
TWITTER_DEGREE_MEAN = 70.4
TWITTER_DEGREE_VARIANCE = 6.42e6

PETABYTE = 1e15
TERABYTE = 1e12


def run(seed: int = 0) -> ResultTable:
    """Regenerate the precompute-memory comparison."""
    table = ResultTable(
        title="Section 3: second-order precompute memory for node2vec",
        columns=["representation", "estimated size", "paper"],
    )
    its = estimate_from_degree_stats(
        TWITTER_VERTICES,
        TWITTER_DEGREE_MEAN,
        TWITTER_DEGREE_VARIANCE,
        ITS_BYTES_PER_ENTRY,
    )
    alias = estimate_from_degree_stats(
        TWITTER_VERTICES,
        TWITTER_DEGREE_MEAN,
        TWITTER_DEGREE_VARIANCE,
        ALIAS_BYTES_PER_ENTRY,
    )
    table.add_row("ITS (CDF)", f"{its / TERABYTE:.0f} TB", "~970 TB")
    table.add_row("alias", f"{alias / PETABYTE:.2f} PB", "~1.89 PB")

    # Empirical sanity check on a graph small enough to actually build.
    tiny = uniform_degree_graph(200, 6, seed=seed, undirected=True)
    built = PrecomputedNode2Vec(tiny, p=2.0, q=0.5, biased=False)
    predicted = second_order_table_entries(tiny) + tiny.num_edges
    table.add_note(
        f"empirical check (200-vertex graph): built {built.table_entries} "
        f"table entries; second-moment estimator predicts about {predicted} "
        "(start tables included)"
    )
    return table
