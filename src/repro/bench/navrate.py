"""The introduction's vertex navigation rate claim.

Paper section 1: "even when implemented above the state-of-the-art
graph engine Gemini, node2vec is bogged down by edge sampling,
producing a vertex navigation rate (number of vertices visited per
second) up to 1434 times slower than BFS on the Twitter graph."

This experiment measures vertex navigation rates on the Twitter
stand-in for three executions: BFS, full-scan node2vec (the
traditional exact implementation), and KnightKing node2vec — showing
both the problem (full-scan walks navigate orders of magnitude slower
than BFS) and the fix (rejection sampling recovers most of the gap).

Rates are wall-clock vertices/second of this Python implementation;
the *ratios* are the reproduced quantity.
"""

from __future__ import annotations

import time

from repro.algorithms import Node2Vec
from repro.baselines import FullScanWalkEngine
from repro.bench.reporting import ResultTable
from repro.bench.workloads import NODE2VEC_P, NODE2VEC_Q
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.datasets import load_dataset
from repro.graph.traversal import bfs

__all__ = ["run", "navigation_rates"]


def navigation_rates(
    scale: float = 0.5,
    walk_length: int = 30,
    walker_fraction: float = 0.05,
    seed: int = 0,
) -> dict[str, float]:
    """Vertices navigated per second for BFS and both node2vec engines."""
    graph = load_dataset("twitter", scale=scale)

    started = time.perf_counter()
    reached = bfs(graph, source=0).num_reached
    bfs_rate = reached / (time.perf_counter() - started)

    program = Node2Vec(p=NODE2VEC_P, q=NODE2VEC_Q, biased=False)
    walkers = max(1, int(graph.num_vertices * walker_fraction))
    config = WalkConfig(num_walkers=walkers, max_steps=walk_length, seed=seed)

    rates = {"BFS": bfs_rate}
    for name, engine_cls in (
        ("full-scan node2vec", FullScanWalkEngine),
        ("KnightKing node2vec", WalkEngine),
    ):
        result = engine_cls(graph, program, config).run()
        rates[name] = result.stats.total_steps / result.stats.wall_time_seconds
    return rates


def run(scale: float = 0.5, seed: int = 0) -> ResultTable:
    """Regenerate the navigation-rate comparison."""
    rates = navigation_rates(scale=scale, seed=seed)
    table = ResultTable(
        title="Intro claim: vertex navigation rate, BFS vs node2vec "
        "(Twitter stand-in)",
        columns=["execution", "vertices/second", "slowdown vs BFS"],
    )
    for name, rate in rates.items():
        table.add_row(
            name, f"{rate:,.0f}", f"{rates['BFS'] / rate:.1f}x"
        )
    table.add_note(
        "paper: full-scan node2vec navigates up to 1434x slower than BFS "
        "on Twitter; rejection sampling recovers most of the gap"
    )
    return table
