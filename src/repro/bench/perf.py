"""Tracked steps-per-second benchmark of the walk engine hot paths.

Unlike the paper-reproduction benches (which report machine-independent
work counts against the paper's tables), this harness tracks the *raw
throughput trajectory* of this repository across PRs: every run times
the standard workloads on the stand-in graphs and writes
``BENCH_walks.json`` at the repository root, so a regression in the
sampler hot paths or the trial kernels shows up as a number, not a
feeling.

Methodology
-----------
* Workloads: DeepWalk (static), node2vec with the paper's default
  p = 2, q = 0.5 (second-order, trial-paced), and Meta-path (first
  order, dynamic, step-paced — the workload the fused multi-trial
  kernel targets), all on the LiveJournal stand-in at scale 1.0 with
  10k walkers of length 80.
* Timing: the walk loop only (``WalkStats.wall_time_seconds``), best
  of ``repeats`` runs; sampling-table construction is charged to init,
  matching the paper's methodology of excluding graph loading.
* Each workload is also run with ``fuse_trials=False`` (the
  single-trial comparison), with ``engine_mode="walker"`` (the
  walker-at-a-time reference the step-centric default must not
  regress against — see :func:`enforce_engine_floor`), and with
  ``sampler_policy="auto"`` (whose per-degree-class decisions are
  recorded under the entry's ``"sampler"`` key).

The pre-PR reference throughput baked into the JSON was measured at
the seed revision (commit ``eb6ac31``) with this same workload
definition, because the old engine cannot be re-run from the current
tree.  Compare runs on the same machine only — the JSON is a
trajectory, not a cross-machine score.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path

from repro.bench.workloads import paper_algorithms, prepare_graph
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.builder import assign_random_weights
from repro.graph.dynamic import DynamicGraph, generate_churn_batches
from repro.graph.generators import erdos_renyi_graph

__all__ = [
    "PerfWorkload",
    "PERF_WORKLOADS",
    "PRE_PR_NODE2VEC_STEPS_PER_SEC",
    "STEP_ENGINE_FLOOR",
    "OBS_OVERHEAD_LIMIT",
    "enforce_engine_floor",
    "enforce_obs_overhead",
    "run_perf",
    "write_report",
]

# node2vec (p=2, q=0.5), 10k walkers x 80 steps, livejournal scale 1.0,
# measured at the seed revision before the fused-kernel/hot-path PR.
# The acceptance target for that PR was >= 2x this figure.
PRE_PR_NODE2VEC_STEPS_PER_SEC = 1_867_803

# The step-centric engine must deliver at least this fraction of the
# walker-centric throughput on every workload (the CI smoke gate; 0.8
# allows quick-mode timing noise, not a real regression).
STEP_ENGINE_FLOOR = 0.8

# A *disabled* tracer (the default state: engines hold no tracer, and
# an attached tracer with enabled=False is detached by observe()) may
# cost at most this fraction of node2vec steps/sec versus a run that
# never touched the observability layer.
OBS_OVERHEAD_LIMIT = 0.03


@dataclass(frozen=True)
class PerfWorkload:
    """One tracked throughput scenario."""

    name: str
    algorithm: str  # AlgorithmSpec.name in paper_algorithms()
    dataset: str = "livejournal"
    scale: float = 1.0
    num_walkers: int = 10_000
    walk_length: int = 80


PERF_WORKLOADS: tuple[PerfWorkload, ...] = (
    PerfWorkload(name="deepwalk", algorithm="DeepWalk"),
    PerfWorkload(name="node2vec", algorithm="node2vec"),
    PerfWorkload(name="metapath", algorithm="Meta-path"),
)

_QUICK_SCALE = 0.1
_QUICK_WALKERS = 2_000
_QUICK_LENGTH = 20


def _time_engine(
    graph, spec, num_walkers: int, walk_length: int, seed: int,
    fuse_trials: bool, repeats: int,
    engine_mode: str = "step", sampler_policy: str = "fixed",
    tracer_factory=None,
) -> dict:
    """Best-of-``repeats`` timing of one engine configuration.

    ``tracer_factory``, when given, is called per attempt and its
    result attached via ``engine.observe`` — the obs-overhead section
    uses it to time the same workload with tracing absent, disabled,
    and enabled.
    """
    best = None
    for attempt in range(repeats):
        program = spec.make_program(graph)
        config = WalkConfig(
            num_walkers=num_walkers,
            max_steps=walk_length,
            termination_probability=spec.termination_probability,
            seed=seed + attempt,
            engine_mode=engine_mode,
            sampler_policy=sampler_policy,
        )
        engine = WalkEngine(graph, program, config, fuse_trials=fuse_trials)
        if tracer_factory is not None:
            engine.observe(tracer_factory())
        stats = engine.run().stats
        seconds = stats.wall_time_seconds
        rate = stats.total_steps / seconds if seconds > 0 else 0.0
        if best is None or rate > best["steps_per_sec"]:
            best = {
                "fused": engine._fuse,
                "steps": stats.total_steps,
                "seconds": round(seconds, 6),
                "steps_per_sec": round(rate, 1),
                "trials_per_step": round(stats.trials_per_step, 4),
                "pd_evals_per_step": round(stats.pd_evaluations_per_step, 4),
                "init_seconds": round(stats.init_time_seconds, 6),
            }
            if sampler_policy == "auto":
                best["sampler"] = stats.sampler.as_dict()
    return best


def _time_updates(quick: bool, seed: int, repeats: int) -> dict:
    """Update-apply throughput of the dynamic-graph commit path.

    Commits a churn stream (insert/delete/reweight) into a
    :class:`~repro.graph.dynamic.DynamicGraph` and times commit +
    snapshot materialization — the cost an online serving deployment
    pays per epoch.  Reported as a top-level section so the walk-rate
    entries under ``workloads`` keep their shape.
    """
    num_vertices = 2_000 if quick else 20_000
    updates_per_epoch = 1_000 if quick else 5_000
    num_epochs = 4
    base = assign_random_weights(
        erdos_renyi_graph(num_vertices, 8.0, seed=7), seed=8
    )
    batches = generate_churn_batches(
        base, num_epochs=num_epochs,
        updates_per_epoch=updates_per_epoch, seed=seed,
    )
    applied = sum(len(batch) for batch in batches)
    best_rate, best_seconds = 0.0, 0.0
    for _ in range(repeats):
        dynamic = DynamicGraph(base)
        start = time.perf_counter()
        for batch in batches:
            dynamic.commit(batch)
            dynamic.snapshot()
        seconds = time.perf_counter() - start
        rate = applied / seconds if seconds > 0 else 0.0
        if rate > best_rate:
            best_rate, best_seconds = rate, seconds
    return {
        "graph": f"erdos-renyi |V|={num_vertices}, mean degree 8",
        "num_epochs": num_epochs,
        "updates_applied": applied,
        "seconds": round(best_seconds, 6),
        "edges_per_sec": round(best_rate, 1),
    }


def _time_obs_overhead(quick: bool, seed: int, repeats: int) -> dict:
    """Observability cost on the node2vec workload, three states.

    * ``baseline`` — the engine never sees the obs layer;
    * ``disabled`` — a ``Tracer(enabled=False)`` is attached (and
      detached by ``observe``, leaving only the one-attribute guard the
      hot loop always pays) — this is the state the <3% budget gates;
    * ``enabled`` — full structural tracing, reported for visibility
      but not gated (measuring costs; the off-switch must be free).
    """
    from repro.obs import Tracer

    spec = next(s for s in paper_algorithms(seed=7) if s.name == "node2vec")
    workload = next(w for w in PERF_WORKLOADS if w.name == "node2vec")
    scale = _QUICK_SCALE if quick else workload.scale
    walkers = _QUICK_WALKERS if quick else workload.num_walkers
    length = _QUICK_LENGTH if quick else workload.walk_length
    graph = prepare_graph(
        workload.dataset, spec, scale=scale, weighted=False, seed=7
    )

    def timed(tracer_factory):
        return _time_engine(
            graph, spec, walkers, length, seed, True, repeats,
            tracer_factory=tracer_factory,
        )["steps_per_sec"]

    baseline = timed(None)
    disabled = timed(lambda: Tracer(enabled=False))
    enabled = timed(lambda: Tracer())
    entry = {
        "workload": "node2vec",
        "baseline_steps_per_sec": baseline,
        "disabled_steps_per_sec": disabled,
        "enabled_steps_per_sec": enabled,
        "limit": OBS_OVERHEAD_LIMIT,
    }
    if baseline:
        entry["disabled_overhead"] = round(1.0 - disabled / baseline, 4)
        entry["enabled_overhead"] = round(1.0 - enabled / baseline, 4)
    return entry


def run_perf(
    quick: bool = False, repeats: int = 3, seed: int = 11
) -> dict:
    """Run every tracked workload; returns the report dictionary."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    report: dict = {
        "schema": 1,
        "created_unix": int(time.time()),
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {},
        "reference": {
            "node2vec_pre_pr_steps_per_sec": PRE_PR_NODE2VEC_STEPS_PER_SEC,
            "note": (
                "measured at the seed revision with the standard "
                "(non-quick) workload definition on the build machine; "
                "quick-mode numbers are not comparable to it"
            ),
        },
    }
    for workload in PERF_WORKLOADS:
        spec = next(
            s for s in paper_algorithms(seed=7) if s.name == workload.algorithm
        )
        scale = _QUICK_SCALE if quick else workload.scale
        walkers = _QUICK_WALKERS if quick else workload.num_walkers
        length = _QUICK_LENGTH if quick else workload.walk_length
        graph = prepare_graph(
            workload.dataset, spec, scale=scale, weighted=False, seed=7
        )
        fused = _time_engine(
            graph, spec, walkers, length, seed, True, repeats
        )
        single = _time_engine(
            graph, spec, walkers, length, seed, False, repeats
        )
        walker = _time_engine(
            graph, spec, walkers, length, seed, True, repeats,
            engine_mode="walker",
        )
        auto = _time_engine(
            graph, spec, walkers, length, seed, True, repeats,
            sampler_policy="auto",
        )
        entry = {
            "dataset": workload.dataset,
            "scale": scale,
            "num_walkers": walkers,
            "walk_length": length,
            **fused,
            "single_trial_steps_per_sec": single["steps_per_sec"],
            "walker_mode_steps_per_sec": walker["steps_per_sec"],
            "auto_policy_steps_per_sec": auto["steps_per_sec"],
            "sampler": auto["sampler"],
        }
        if walker["steps_per_sec"]:
            entry["step_speedup_vs_walker"] = round(
                fused["steps_per_sec"] / walker["steps_per_sec"], 3
            )
        # Only meaningful where the fused kernel actually engages
        # (step-paced dynamic programs); elsewhere both runs take the
        # same path and the ratio would be timing noise — the key is
        # omitted rather than carried as null.
        if fused["fused"] and single["steps_per_sec"]:
            entry["fused_speedup_vs_single_trial"] = round(
                fused["steps_per_sec"] / single["steps_per_sec"], 3
            )
        if workload.name == "node2vec" and not quick:
            entry["speedup_vs_pre_pr"] = round(
                fused["steps_per_sec"] / PRE_PR_NODE2VEC_STEPS_PER_SEC, 3
            )
        report["workloads"][workload.name] = entry
    report["update_throughput"] = _time_updates(quick, seed, repeats)
    report["obs"] = _time_obs_overhead(quick, seed, repeats)
    return report


def enforce_engine_floor(
    report: dict, floor: float = STEP_ENGINE_FLOOR
) -> list[str]:
    """Check the step-centric engine against the walker-centric floor.

    Returns one message per workload whose step-mode throughput fell
    below ``floor`` times its walker-mode throughput (empty when the
    report passes).  CI runs this on the quick smoke report so an
    accidental slowdown of the staged hot loop fails the build instead
    of landing silently.
    """
    failures = []
    for name, entry in report["workloads"].items():
        walker_rate = entry.get("walker_mode_steps_per_sec")
        if not walker_rate:
            continue
        ratio = entry["steps_per_sec"] / walker_rate
        if ratio < floor:
            failures.append(
                f"{name}: step-centric engine at {ratio:.2f}x of "
                f"walker-centric throughput ({entry['steps_per_sec']:,.0f} "
                f"vs {walker_rate:,.0f} steps/sec; floor {floor:.2f})"
            )
    return failures


def enforce_obs_overhead(
    report: dict, limit: float | None = None
) -> list[str]:
    """Check the disabled-tracer path against the overhead budget.

    Returns one message when the ``obs`` section's disabled-path
    overhead exceeds ``limit`` (default: the section's recorded limit),
    empty when it passes or the section is absent.  CI runs this so
    the observability layer's off-switch stays effectively free.
    """
    section = report.get("obs")
    if not section or "disabled_overhead" not in section:
        return []
    budget = section["limit"] if limit is None else limit
    overhead = section["disabled_overhead"]
    if overhead > budget:
        return [
            f"{section['workload']}: disabled-tracer path at "
            f"{overhead:.1%} overhead vs untraced baseline "
            f"({section['disabled_steps_per_sec']:,.0f} vs "
            f"{section['baseline_steps_per_sec']:,.0f} steps/sec; "
            f"budget {budget:.0%})"
        ]
    return []


def write_report(report: dict, path: str | Path) -> Path:
    """Write the JSON report; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def format_report(report: dict) -> str:
    """Aligned text summary of one report, for terminal output."""
    lines = [
        f"{'workload':10s} {'steps/sec':>12s} {'walker-mode':>12s} "
        f"{'auto':>12s} {'single-trial':>12s} {'fused dx':>9s} "
        f"{'trials/step':>12s} {'pd/step':>9s}"
    ]
    updates = report.get("update_throughput")
    if updates:
        lines.append(
            f"updates    {updates['edges_per_sec']:>12,.0f} edges/sec "
            f"({updates['updates_applied']:,} updates over "
            f"{updates['num_epochs']} epochs, {updates['graph']})"
        )
    obs = report.get("obs")
    if obs and "disabled_overhead" in obs:
        lines.append(
            f"obs        disabled {obs['disabled_overhead']:+.1%} / "
            f"enabled {obs['enabled_overhead']:+.1%} overhead on "
            f"{obs['workload']} (budget {obs['limit']:.0%} on the "
            "disabled path)"
        )
    for name, entry in report["workloads"].items():
        speedup = entry.get("fused_speedup_vs_single_trial")
        lines.append(
            f"{name:10s} {entry['steps_per_sec']:>12,.0f} "
            f"{entry['walker_mode_steps_per_sec']:>12,.0f} "
            f"{entry['auto_policy_steps_per_sec']:>12,.0f} "
            f"{entry['single_trial_steps_per_sec']:>12,.0f} "
            f"{speedup if speedup is not None else '-':>9} "
            f"{entry['trials_per_step']:>12.3f} "
            f"{entry['pd_evals_per_step']:>9.3f}"
        )
        if "speedup_vs_pre_pr" in entry:
            lines.append(
                f"{'':10s} {entry['speedup_vs_pre_pr']:.2f}x vs pre-PR "
                f"reference ({report['reference']['node2vec_pre_pr_steps_per_sec']:,} steps/sec)"
            )
    return "\n".join(lines)
