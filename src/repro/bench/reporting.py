"""Plain-text result tables for the benchmark harness.

Every experiment runner returns a :class:`ResultTable` whose
``format()`` output mirrors the corresponding paper table/figure as
rows of aligned text, plus free-form notes (e.g. extrapolation
disclaimers, matching the paper's ``*`` convention for estimated
entries).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ResultTable", "format_seconds", "format_speedup"]


def format_seconds(value: float) -> str:
    """Human-scale seconds with sensible precision."""
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


def format_speedup(value: float, estimated: bool = False) -> str:
    """The paper's speedup column style, with ``*`` for extrapolated
    entries (its convention for runs too slow to complete)."""
    text = f"{value:.2f}" if value < 100 else f"{value:.0f}"
    return f"{text}*" if estimated else text


@dataclass
class ResultTable:
    """An experiment's output: header, rows, and notes."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(cell) for cell in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[str]:
        """All values of one column, by header name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def format(self) -> str:
        widths = [len(header) for header in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: list[str]) -> str:
            return "  ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        parts = [self.title, "=" * len(self.title), line(self.columns)]
        parts.append(line(["-" * width for width in widths]))
        parts.extend(line(row) for row in self.rows)
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.format()
