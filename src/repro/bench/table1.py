"""Table 1 — node2vec sampling overhead, full-scan vs KnightKing.

Paper numbers (per walker step, Pd evaluations):

    Friendster: full-scan 361   edges/step, KnightKing 0.77
    Twitter:    full-scan 92202 edges/step, KnightKing 0.79

The experiment runs unbiased node2vec (p = 2, q = 0.5, the overall-
performance default) on the Friendster and Twitter stand-ins with both
engines and reports the same metric.  Full-scan runs use a sampled
walker fraction — edges/step is a per-step average, so subsampling
walkers does not bias it.
"""

from __future__ import annotations

from repro.algorithms import Node2Vec
from repro.bench.reporting import ResultTable
from repro.bench.workloads import NODE2VEC_P, NODE2VEC_Q
from repro.baselines import FullScanWalkEngine
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.datasets import load_dataset

__all__ = ["run"]

PAPER = {
    "friendster": (361.0, 0.77),
    "twitter": (92202.0, 0.79),
}


def run(
    scale: float = 1.0,
    walk_length: int = 30,
    full_scan_fraction: float = 0.03,
    seed: int = 0,
) -> ResultTable:
    """Regenerate Table 1 on the dataset stand-ins."""
    table = ResultTable(
        title="Table 1: node2vec sampling overhead (Pd evaluations per step)",
        columns=[
            "graph",
            "deg mean",
            "deg variance",
            "full-scan edges/step",
            "KnightKing edges/step",
            "paper (full-scan / KK)",
        ],
    )
    for dataset in ("friendster", "twitter"):
        graph = load_dataset(dataset, scale=scale)
        stats = graph.degree_stats()
        program = Node2Vec(p=NODE2VEC_P, q=NODE2VEC_Q, biased=False)

        sampled = max(1, int(graph.num_vertices * full_scan_fraction))
        full_cfg = WalkConfig(
            num_walkers=sampled, max_steps=walk_length, seed=seed
        )
        full = FullScanWalkEngine(graph, program, full_cfg).run()

        kk_cfg = WalkConfig(
            num_walkers=graph.num_vertices, max_steps=walk_length, seed=seed
        )
        knightking = WalkEngine(graph, program, kk_cfg).run()

        paper_full, paper_kk = PAPER[dataset]
        table.add_row(
            dataset,
            f"{stats.mean:.1f}",
            f"{stats.variance:.3g}",
            f"{full.stats.pd_evaluations_per_step:.1f}",
            f"{knightking.stats.pd_evaluations_per_step:.2f}",
            f"{paper_full:g} / {paper_kk:g}",
        )
    table.add_note(
        f"stand-in graphs at scale={scale}; absolute full-scan overheads "
        "shrink with graph size, the full-scan >> KnightKing gap and its "
        "growth with skew are the reproduced claims"
    )
    table.add_note(
        f"full-scan measured over a {full_scan_fraction:.0%} walker sample "
        "(edges/step is a per-step average; sampling walkers is unbiased)"
    )
    return table
