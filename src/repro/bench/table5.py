"""Table 5 — rejection-sampling optimizations on node2vec.

Unbiased node2vec on the Twitter stand-in, varying the hyper-parameters
and the two section-4.2 optimizations.

Table 5a (lower bound vs naive, three (p, q) settings); paper numbers
for edges/step:

    p=2,q=0.5: naive 1.05 -> lower bound 0.79
    p=0.5,q=2: naive 3.60 -> lower bound 2.70
    p=1,q=1:   naive 1.00 -> lower bound 0.00

Table 5b (all variants at the adversarial p=0.5, q=2): naive 3.60,
L 2.70, O 1.81, L+O 0.91.
"""

from __future__ import annotations

from repro.algorithms import Node2Vec
from repro.bench.reporting import ResultTable
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.datasets import load_dataset

__all__ = ["run_5a", "run_5b", "run_variant"]

SETTINGS_5A = ((2.0, 0.5), (0.5, 2.0), (1.0, 1.0))
PAPER_5A = {
    (2.0, 0.5): (1.05, 0.79),
    (0.5, 2.0): (3.60, 2.70),
    (1.0, 1.0): (1.00, 0.00),
}
PAPER_5B = {"naive": 3.60, "L": 2.70, "O": 1.81, "L+O": 0.91}


def run_variant(
    graph,
    p: float,
    q: float,
    lower_bound: bool,
    outlier: bool,
    walk_length: int,
    num_walkers: int,
    seed: int = 0,
) -> tuple[float, float]:
    """(wall seconds, Pd evaluations/step) for one optimization mix."""
    program = Node2Vec(p=p, q=q, biased=False, fold_outlier=outlier)
    config = WalkConfig(
        num_walkers=num_walkers, max_steps=walk_length, seed=seed
    )
    engine = WalkEngine(graph, program, config, use_lower_bound=lower_bound)
    result = engine.run()
    return (
        result.stats.wall_time_seconds + result.stats.init_time_seconds,
        result.stats.pd_evaluations_per_step,
    )


def run_5a(
    scale: float = 0.4,
    walk_length: int = 40,
    walker_fraction: float = 0.5,
    seed: int = 0,
) -> ResultTable:
    """Table 5a: lower-bound pre-acceptance across (p, q) settings."""
    graph = load_dataset("twitter", scale=scale)
    num_walkers = max(1, int(graph.num_vertices * walker_fraction))
    table = ResultTable(
        title="Table 5a: impact of lower bound, unbiased node2vec "
        "(Twitter stand-in)",
        columns=[
            "p, q",
            "variant",
            "time (s)",
            "edges/step",
            "paper edges/step",
        ],
    )
    for p, q in SETTINGS_5A:
        paper_naive, paper_lower = PAPER_5A[(p, q)]
        for variant, lower in (("naive", False), ("lower bound", True)):
            seconds, evals = run_variant(
                graph, p, q, lower, outlier=False,
                walk_length=walk_length, num_walkers=num_walkers, seed=seed,
            )
            table.add_row(
                f"p={p:g}, q={q:g}",
                variant,
                f"{seconds:.2f}",
                f"{evals:.2f}",
                f"{paper_lower if lower else paper_naive:.2f}",
            )
    return table


def run_5b(
    scale: float = 0.4,
    walk_length: int = 40,
    walker_fraction: float = 0.5,
    seed: int = 0,
) -> ResultTable:
    """Table 5b: outlier folding and lower bound at p=0.5, q=2."""
    graph = load_dataset("twitter", scale=scale)
    num_walkers = max(1, int(graph.num_vertices * walker_fraction))
    table = ResultTable(
        title="Table 5b: optimization ablation at p=0.5, q=2 "
        "(Twitter stand-in)",
        columns=["variant", "time (s)", "edges/step", "paper edges/step"],
    )
    variants = (
        ("naive", False, False),
        ("L", True, False),
        ("O", False, True),
        ("L+O", True, True),
    )
    for name, lower, outlier in variants:
        seconds, evals = run_variant(
            graph, 0.5, 2.0, lower, outlier,
            walk_length=walk_length, num_walkers=num_walkers, seed=seed,
        )
        table.add_row(
            name, f"{seconds:.2f}", f"{evals:.2f}", f"{PAPER_5B[name]:.2f}"
        )
    return table
