"""Tables 3 & 4 — overall performance, Gemini vs KnightKing.

Four algorithms x four graphs, unweighted (Table 3) and weighted
(Table 4).  Both systems run on the 8-node cluster simulator with the
same cost model; the reported metric is simulated seconds and the
speedup ratio.  The paper's qualitative results to reproduce:

* static walks (DeepWalk, PPR): KnightKing wins by one order of
  magnitude at most (5.8x-16.9x) — a systems gap (two-phase sampling,
  mirror broadcast), not an algorithmic one;
* dynamic walks (Meta-path, node2vec): the gap explodes on the skewed
  graphs (Twitter, UK-Union), where the paper extrapolates Gemini at
  hundreds of hours (1000x-11000x speedups, starred);
* weighting changes little for node2vec (connectivity-check cost
  dominates).

Following the paper's methodology, intractable baseline configurations
run with a sampled walker fraction and are extrapolated linearly
(marked ``*``).
"""

from __future__ import annotations

from repro.baselines import GeminiWalkEngine
from repro.bench.reporting import ResultTable, format_seconds, format_speedup
from repro.bench.workloads import (
    BENCH_DATASETS,
    AlgorithmSpec,
    extrapolate_walkers,
    paper_algorithms,
    paper_config,
    prepare_graph,
)
from repro.cluster import DistributedWalkEngine

__all__ = ["run"]

NUM_NODES = 8

# Paper speedups for reference columns (unweighted / weighted).
PAPER_SPEEDUPS = {
    (False, "DeepWalk", "livejournal"): "7.93",
    (False, "DeepWalk", "friendster"): "8.61",
    (False, "DeepWalk", "twitter"): "7.60",
    (False, "DeepWalk", "ukunion"): "5.78",
    (False, "PPR", "livejournal"): "16.94",
    (False, "PPR", "friendster"): "9.65",
    (False, "PPR", "twitter"): "9.94",
    (False, "PPR", "ukunion"): "7.10",
    (False, "Meta-path", "livejournal"): "23.20",
    (False, "Meta-path", "friendster"): "21.41",
    (False, "Meta-path", "twitter"): "1152*",
    (False, "Meta-path", "ukunion"): "8038*",
    (False, "node2vec", "livejournal"): "11.93",
    (False, "node2vec", "friendster"): "21.02",
    (False, "node2vec", "twitter"): "2206*",
    (False, "node2vec", "ukunion"): "11139*",
    (True, "DeepWalk", "livejournal"): "5.65",
    (True, "DeepWalk", "friendster"): "6.35",
    (True, "DeepWalk", "twitter"): "5.91",
    (True, "DeepWalk", "ukunion"): "3.70",
    (True, "PPR", "livejournal"): "14.92",
    (True, "PPR", "friendster"): "7.80",
    (True, "PPR", "twitter"): "8.59",
    (True, "PPR", "ukunion"): "5.01",
    (True, "Meta-path", "livejournal"): "20.32",
    (True, "Meta-path", "friendster"): "16.25",
    (True, "Meta-path", "twitter"): "1712*",
    (True, "Meta-path", "ukunion"): "9570*",
    (True, "node2vec", "livejournal"): "11.11",
    (True, "node2vec", "friendster"): "18.85",
    (True, "node2vec", "twitter"): "2049*",
    (True, "node2vec", "ukunion"): "10126*",
}


def _gemini_fraction(spec: AlgorithmSpec, dataset: str) -> float:
    """Walker fraction for the Gemini run (1.0 = no extrapolation).

    Dynamic algorithms on the skewed graphs are the paper's starred,
    extrapolated cases; we subsample them too, both for fidelity to the
    methodology and to keep bench wall time sane.
    """
    if not spec.needs_edge_types and spec.name != "node2vec":
        return 1.0  # static: run in full
    if dataset in ("twitter", "ukunion"):
        return 0.02
    return 0.1


def run(
    weighted: bool = False,
    scale: float = 0.4,
    seed: int = 0,
) -> ResultTable:
    """Regenerate Table 3 (unweighted) or Table 4 (weighted)."""
    number = 4 if weighted else 3
    kind = "weighted" if weighted else "unweighted"
    table = ResultTable(
        title=f"Table {number}: overall performance on {kind} graphs "
        "(simulated seconds, 8 nodes)",
        columns=[
            "algorithm",
            "graph",
            "Gemini (s)",
            "KnightKing (s)",
            "speedup",
            "paper speedup",
        ],
    )
    for spec in paper_algorithms(seed=seed):
        for dataset in BENCH_DATASETS:
            graph = prepare_graph(dataset, spec, scale, weighted, seed=seed)

            kk_config = paper_config(spec, graph, seed=seed)
            knightking = DistributedWalkEngine(
                graph, spec.make_program(graph), kk_config, num_nodes=NUM_NODES
            ).run()
            kk_seconds = knightking.cluster.simulated_seconds

            fraction = _gemini_fraction(spec, dataset)
            gemini_config = paper_config(
                spec, graph, walker_fraction=fraction, seed=seed
            )
            gemini = GeminiWalkEngine(
                graph,
                spec.make_program(graph),
                gemini_config,
                num_nodes=NUM_NODES,
            ).run()
            gemini_seconds = extrapolate_walkers(
                gemini.cluster.simulated_seconds, fraction
            )
            estimated = fraction < 1.0

            table.add_row(
                spec.name,
                dataset,
                format_seconds(gemini_seconds),
                format_seconds(kk_seconds),
                format_speedup(gemini_seconds / kk_seconds, estimated),
                PAPER_SPEEDUPS.get((weighted, spec.name, dataset), "-"),
            )
    table.add_note(
        f"stand-in graphs at scale={scale}; '*' marks extrapolated Gemini "
        "runs from a sampled walker subset, the paper's own methodology "
        "for its 6-to-500-hour cases"
    )
    return table
