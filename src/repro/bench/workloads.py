"""Standard workloads and methodology helpers for the benchmarks.

Centralises the paper's evaluation setup (section 7.1) so every bench
uses identical parameters:

* all four algorithms with their published configurations — |V|
  walkers, length 80 (DeepWalk/node2vec), Pt = 1/80 (PPR), 5 edge
  types / 10 cyclic schemes of length 5 (Meta-path), p = 2, q = 0.5
  (node2vec default);
* the four dataset stand-ins at a bench-friendly scale;
* the paper's extrapolation methodology for intractably slow baseline
  runs: execute with a small fraction of the walkers and scale the
  measured time linearly (section 7.1 validates linearity with
  R^2 >= 0.9998; we reproduce that validation in the tests).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.algorithms import (
    DEFAULT_TERMINATION,
    DeepWalk,
    MetaPathWalk,
    Node2Vec,
    PPR,
    random_schemes,
)
from repro.core.config import DEFAULT_WALK_LENGTH, WalkConfig
from repro.core.program import WalkerProgram
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.graph.hetero import assign_random_edge_types

__all__ = [
    "AlgorithmSpec",
    "paper_algorithms",
    "paper_config",
    "prepare_graph",
    "extrapolate_walkers",
    "BENCH_DATASETS",
    "NODE2VEC_P",
    "NODE2VEC_Q",
    "META_NUM_TYPES",
    "META_NUM_SCHEMES",
    "META_SCHEME_LENGTH",
]

# node2vec defaults used throughout the paper's overall-performance
# tables (the probability-sensitivity study varies them separately).
NODE2VEC_P = 2.0
NODE2VEC_Q = 0.5

# "For Meta-path, there are 5 edge types and 10 cyclic path schemes,
# with length = 5." — section 7.1.
META_NUM_TYPES = 5
META_NUM_SCHEMES = 10
META_SCHEME_LENGTH = 5

BENCH_DATASETS = ("livejournal", "friendster", "twitter", "ukunion")


@dataclass(frozen=True)
class AlgorithmSpec:
    """One evaluation workload: program factory + configuration."""

    name: str
    make_program: Callable[[CSRGraph], WalkerProgram]
    max_steps: int | None
    termination_probability: float
    needs_edge_types: bool = False


def paper_algorithms(seed: int = 0) -> list[AlgorithmSpec]:
    """The four evaluated algorithms with the paper's parameters."""
    schemes = random_schemes(
        META_NUM_SCHEMES, META_SCHEME_LENGTH, META_NUM_TYPES, seed=seed
    )
    return [
        AlgorithmSpec(
            name="DeepWalk",
            make_program=lambda graph: DeepWalk(),
            max_steps=DEFAULT_WALK_LENGTH,
            termination_probability=0.0,
        ),
        AlgorithmSpec(
            name="PPR",
            make_program=lambda graph: PPR(),
            max_steps=None,
            termination_probability=DEFAULT_TERMINATION,
        ),
        AlgorithmSpec(
            name="Meta-path",
            make_program=lambda graph: MetaPathWalk(schemes),
            max_steps=DEFAULT_WALK_LENGTH,
            termination_probability=0.0,
            needs_edge_types=True,
        ),
        AlgorithmSpec(
            name="node2vec",
            make_program=lambda graph: Node2Vec(p=NODE2VEC_P, q=NODE2VEC_Q),
            max_steps=DEFAULT_WALK_LENGTH,
            termination_probability=0.0,
        ),
    ]


def paper_config(
    spec: AlgorithmSpec,
    graph: CSRGraph,
    walker_fraction: float = 1.0,
    seed: int = 0,
) -> WalkConfig:
    """|V|-walker configuration (optionally a sampled fraction)."""
    walkers = max(1, int(graph.num_vertices * walker_fraction))
    return WalkConfig(
        num_walkers=walkers,
        max_steps=spec.max_steps,
        termination_probability=spec.termination_probability,
        seed=seed,
    )


def prepare_graph(
    dataset: str,
    spec: AlgorithmSpec,
    scale: float,
    weighted: bool,
    seed: int = 0,
) -> CSRGraph:
    """Dataset stand-in prepared for one algorithm (typed if needed)."""
    graph = load_dataset(dataset, scale=scale, weighted=weighted)
    if spec.needs_edge_types:
        graph = assign_random_edge_types(graph, META_NUM_TYPES, seed=seed + 91)
    return graph


def extrapolate_walkers(
    measured_seconds: float, walker_fraction: float
) -> float:
    """The paper's linear extrapolation from a sampled walker subset.

    Random walk time is linear in the number of walkers (every walker
    is independent), so running f·|V| walkers and dividing by f
    estimates the full run — the methodology the paper uses for the
    Gemini runs that would take six to hundreds of hours (marked ``*``
    in Tables 3/4).
    """
    if not 0 < walker_fraction <= 1:
        raise ValueError("walker_fraction must be in (0, 1]")
    return measured_seconds / walker_fraction
