"""Command-line interface.

Six subcommands cover the common workflows without writing Python:

* ``walk``     — run any built-in algorithm on a dataset stand-in or an
  edge-list file, print statistics, optionally dump the walk corpus;
* ``bench``    — regenerate one of the paper's tables/figures;
* ``info``     — print a graph's size and degree profile;
* ``serve``    — drive a synthetic request stream through the
  overload-robust walk service and print its accounting;
* ``lint``     — run the determinism & distributed-safety static
  analyzer (:mod:`repro.lint`); exits non-zero on findings;
* ``sanitize`` — run a workload twice under the runtime determinism
  sanitizer and report the first divergence, if any.

Examples::

    python -m repro.cli walk --algorithm node2vec --dataset twitter \\
        --scale 0.25 --length 40 --p 2 --q 0.5 --nodes 8
    python -m repro.cli bench table5b
    python -m repro.cli info --dataset friendster --scale 0.5
    python -m repro.cli serve --dataset livejournal --scale 0.1 \\
        --requests 200 --service-workers 4 --policy priority
    python -m repro.cli lint src/repro --strict
    python -m repro.cli sanitize --algorithm node2vec --dataset twitter \\
        --scale 0.05 --nodes 4
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

import numpy as np

from repro.algorithms import (
    DeepWalk,
    MetaPathWalk,
    Node2Vec,
    PPR,
    RandomWalkWithRestart,
    UniformWalk,
    random_schemes,
)
from repro.cluster import (
    DistributedWalkEngine,
    FaultPlan,
    FlakyLink,
    MessageFaults,
    NodeCrash,
    NodeSlowdown,
)
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.errors import ReproError
from repro.graph.datasets import DATASETS, load_dataset
from repro.graph.hetero import assign_random_edge_types
from repro.graph.io import load_edge_list
from repro.obs import (
    Tracer,
    registry_from_cluster_stats,
    registry_from_service_metrics,
    registry_from_walk_stats,
    to_prometheus_text,
    write_chrome_trace,
)

__all__ = ["main", "build_parser"]

ALGORITHMS = ("uniform", "deepwalk", "ppr", "metapath", "node2vec", "rwr")
EXPERIMENTS = (
    "table1",
    "table3",
    "table4",
    "table5a",
    "table5b",
    "fig5",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig7",
    "fig8",
    "fig9",
    "memory",
    "navrate",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="KnightKing reproduction: graph random walk engine",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    walk = subparsers.add_parser("walk", help="run a random walk")
    _add_graph_arguments(walk)
    walk.add_argument(
        "--algorithm", choices=ALGORITHMS, default="deepwalk"
    )
    walk.add_argument("--walkers", type=int, default=None, help="default |V|")
    walk.add_argument("--length", type=int, default=80)
    walk.add_argument(
        "--termination", type=float, default=0.0,
        help="per-step stop probability (PPR-style Pe)",
    )
    walk.add_argument("--p", type=float, default=2.0, help="node2vec return")
    walk.add_argument("--q", type=float, default=0.5, help="node2vec in-out")
    walk.add_argument(
        "--restart", type=float, default=0.15, help="rwr restart probability"
    )
    walk.add_argument(
        "--nodes", type=int, default=0,
        help="simulate a cluster of this many nodes (0 = local engine)",
    )
    walk.add_argument("--seed", type=int, default=0)
    walk.add_argument(
        "--output", type=str, default=None,
        help="stream the walk corpus to this file (constant memory)",
    )
    _add_update_arguments(walk)
    _add_fault_arguments(walk)
    _add_obs_arguments(walk)

    bench = subparsers.add_parser("bench", help="regenerate a paper experiment")
    bench.add_argument("experiment", choices=EXPERIMENTS)

    info = subparsers.add_parser("info", help="print graph statistics")
    _add_graph_arguments(info)

    serve = subparsers.add_parser(
        "serve",
        help="drive a synthetic request stream through the walk service",
    )
    _add_graph_arguments(serve)
    serve.add_argument(
        "--requests", type=int, default=200,
        help="number of synthetic requests to submit",
    )
    serve.add_argument(
        "--service-workers", type=int, default=4,
        help="executor threads in the service",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=16,
        help="admission queue bound",
    )
    serve.add_argument(
        "--policy", choices=("reject-newest", "reject-oldest", "priority"),
        default="reject-oldest", help="load-shedding policy",
    )
    serve.add_argument(
        "--burst", type=int, default=16,
        help="submit requests in bursts of this size",
    )
    serve.add_argument(
        "--tight-deadline-ms", type=float, default=1.0,
        help="deadline of the deadline-tight request class",
    )
    serve.add_argument(
        "--no-degradation", action="store_true",
        help="disable the graceful-degradation ladder",
    )
    serve.add_argument("--seed", type=int, default=0)
    _add_obs_arguments(serve)

    lint = subparsers.add_parser(
        "lint",
        help="determinism & distributed-safety static analysis",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)

    sanitize = subparsers.add_parser(
        "sanitize",
        help="run a workload twice under the determinism sanitizer and "
        "report the first divergence",
    )
    _add_graph_arguments(sanitize)
    sanitize.add_argument("--algorithm", choices=ALGORITHMS, default="deepwalk")
    sanitize.add_argument("--walkers", type=int, default=None, help="default |V|")
    sanitize.add_argument("--length", type=int, default=20)
    sanitize.add_argument(
        "--termination", type=float, default=0.0,
        help="per-step stop probability (PPR-style Pe)",
    )
    sanitize.add_argument("--p", type=float, default=2.0, help="node2vec return")
    sanitize.add_argument("--q", type=float, default=0.5, help="node2vec in-out")
    sanitize.add_argument(
        "--restart", type=float, default=0.15, help="rwr restart probability"
    )
    sanitize.add_argument(
        "--nodes", type=int, default=0,
        help="simulate a cluster of this many nodes (0 = local engine)",
    )
    sanitize.add_argument("--seed", type=int, default=0)
    sanitize.add_argument(
        "--runs", type=int, default=2,
        help="how many executions to trace and compare",
    )
    sanitize.add_argument(
        "--compare-engines", action="store_true",
        help="trace the step-centric and walker-centric engines once "
        "each (instead of re-running one engine) and require their "
        "event streams to fold to the same hash",
    )
    _add_update_arguments(sanitize)
    _add_fault_arguments(sanitize)
    return parser


def _add_update_arguments(parser: argparse.ArgumentParser) -> None:
    """Dynamic-graph update-stream flags (walk and sanitize)."""
    updates = parser.add_argument_group(
        "dynamic graph",
        "apply an edge-update stream in epochs before/around the walk",
    )
    updates.add_argument(
        "--updates", type=str, default=None,
        help="update-stream file: insert/delete/reweight lines split "
        "into epochs by 'commit' lines",
    )
    updates.add_argument(
        "--wal", type=str, default=None,
        help="persist committed batches to this write-ahead log",
    )
    updates.add_argument(
        "--verify-tables", choices=("off", "sample", "full"), default="off",
        help="self-verify incremental sampler maintenance per epoch "
        "(mismatches are counted and fall back to a full rebuild)",
    )


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    """Fault-injection flags shared by the cluster subcommands."""
    faults = parser.add_argument_group(
        "fault injection (require --nodes > 0)"
    )
    faults.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the fault RNG stream (separate from --seed)",
    )
    faults.add_argument(
        "--drop", type=float, default=0.0,
        help="per-transmission message drop probability",
    )
    faults.add_argument(
        "--duplicate", type=float, default=0.0,
        help="per-transmission message duplication probability",
    )
    faults.add_argument(
        "--delay-rate", type=float, default=0.0,
        help="probability a message arrives after the sender's timeout",
    )
    faults.add_argument(
        "--crash", action="append", default=[], metavar="SUPERSTEP:NODE[:dead]",
        help="crash NODE at SUPERSTEP; ':dead' keeps it down (repeatable)",
    )
    faults.add_argument(
        "--fault-slowdown", action="append", default=[],
        metavar="NODE:FACTOR[:START[:RAMP[:END]]]",
        help="make NODE a straggler: FACTOR times slower, ramping in over "
        "RAMP supersteps from START, recovering at END (repeatable)",
    )
    faults.add_argument(
        "--fault-flaky-link", action="append", default=[],
        metavar="A:B:DROP[:DELAY[:DUP[:RTT]]]",
        help="degrade the A<->B link: elevated drop/delay/duplicate rates "
        "and an RTT inflation factor (repeatable)",
    )
    faults.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="K",
        help="recovery-checkpoint cadence in supersteps (0 disables)",
    )
    faults.add_argument(
        "--degrade", action="store_true",
        help="re-partition a permanently dead node's vertices across "
        "survivors instead of aborting",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by ``walk`` and ``serve``."""
    obs = parser.add_argument_group(
        "observability",
        "span tracing and metrics export (repro.obs); tracing off "
        "unless a flag is given — the disabled path is certified <3% "
        "overhead by the perf harness",
    )
    obs.add_argument(
        "--emit-trace", type=str, default=None, metavar="FILE",
        help="write the run's spans as Chrome trace-event JSON "
        "(open in chrome://tracing or ui.perfetto.dev)",
    )
    obs.add_argument(
        "--emit-metrics", type=str, default=None, metavar="FILE",
        help="write run metrics in Prometheus text format",
    )
    obs.add_argument(
        "--trace-sample", type=int, default=1, metavar="N",
        help="keep per-walker hop spans only for every N-th walker id "
        "(structural spans are always kept)",
    )


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--dataset", choices=sorted(DATASETS), help="synthetic stand-in"
    )
    source.add_argument("--edge-list", type=str, help="edge-list file")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--weighted", action="store_true", help="assign U[1,5) weights"
    )


def _load_graph(args: argparse.Namespace):
    if args.dataset:
        return load_dataset(
            args.dataset, scale=args.scale, weighted=args.weighted
        )
    return load_edge_list(args.edge_list)


def _build_program(args: argparse.Namespace, graph):
    if args.algorithm == "uniform":
        return UniformWalk(), graph
    if args.algorithm == "deepwalk":
        return DeepWalk(), graph
    if args.algorithm == "ppr":
        return PPR(), graph
    if args.algorithm == "rwr":
        return RandomWalkWithRestart(args.restart), graph
    if args.algorithm == "node2vec":
        return Node2Vec(p=args.p, q=args.q), graph
    if args.algorithm == "metapath":
        if graph.edge_types is None:
            graph = assign_random_edge_types(graph, 5, seed=args.seed + 91)
        schemes = random_schemes(10, 5, 5, seed=args.seed)
        return MetaPathWalk(schemes), graph
    raise ReproError(f"unknown algorithm {args.algorithm!r}")


def _parse_crash(spec: str) -> NodeCrash:
    parts = spec.split(":")
    if len(parts) not in (2, 3) or (len(parts) == 3 and parts[2] != "dead"):
        raise ReproError(
            f"bad --crash {spec!r}: expected SUPERSTEP:NODE or "
            "SUPERSTEP:NODE:dead"
        )
    try:
        superstep, node = int(parts[0]), int(parts[1])
    except ValueError as exc:
        raise ReproError(f"bad --crash {spec!r}: {exc}") from exc
    return NodeCrash(superstep=superstep, node=node, restart=len(parts) == 2)


def _parse_slowdown(spec: str) -> NodeSlowdown:
    parts = spec.split(":")
    if not 2 <= len(parts) <= 5:
        raise ReproError(
            f"bad --fault-slowdown {spec!r}: expected "
            "NODE:FACTOR[:START[:RAMP[:END]]]"
        )
    try:
        node = int(parts[0])
        factor = float(parts[1])
        start = int(parts[2]) if len(parts) >= 3 else 0
        ramp = int(parts[3]) if len(parts) >= 4 else 0
        end = int(parts[4]) if len(parts) == 5 else None
    except ValueError as exc:
        raise ReproError(f"bad --fault-slowdown {spec!r}: {exc}") from exc
    try:
        return NodeSlowdown(
            node=node, factor=factor, start_superstep=start,
            ramp_supersteps=ramp, end_superstep=end,
        )
    except ReproError as exc:
        raise ReproError(f"bad --fault-slowdown {spec!r}: {exc}") from exc


def _parse_flaky_link(spec: str) -> FlakyLink:
    parts = spec.split(":")
    if not 3 <= len(parts) <= 6:
        raise ReproError(
            f"bad --fault-flaky-link {spec!r}: expected "
            "A:B:DROP[:DELAY[:DUP[:RTT]]]"
        )
    try:
        a, b = int(parts[0]), int(parts[1])
        drop = float(parts[2])
        delay = float(parts[3]) if len(parts) >= 4 else 0.0
        duplicate = float(parts[4]) if len(parts) >= 5 else 0.0
        rtt = float(parts[5]) if len(parts) == 6 else 4.0
    except ValueError as exc:
        raise ReproError(f"bad --fault-flaky-link {spec!r}: {exc}") from exc
    try:
        return FlakyLink(
            a=a, b=b,
            faults=MessageFaults(drop=drop, duplicate=duplicate, delay=delay),
            rtt_factor=rtt,
        )
    except ReproError as exc:
        raise ReproError(f"bad --fault-flaky-link {spec!r}: {exc}") from exc


def _build_fault_plan(args: argparse.Namespace) -> FaultPlan | None:
    rates = MessageFaults(
        drop=args.drop, duplicate=args.duplicate, delay=args.delay_rate
    )
    crashes = tuple(_parse_crash(spec) for spec in args.crash)
    slowdowns = tuple(_parse_slowdown(spec) for spec in args.fault_slowdown)
    flaky_links = tuple(
        _parse_flaky_link(spec) for spec in args.fault_flaky_link
    )
    if not rates.active and not crashes and not slowdowns and not flaky_links:
        return None
    if args.nodes <= 0:
        raise ReproError("fault injection requires --nodes > 0")
    return FaultPlan(
        seed=args.fault_seed,
        crashes=crashes,
        default_faults=rates,
        slowdowns=slowdowns,
        flaky_links=flaky_links,
    )


def _apply_update_stream(graph, args: argparse.Namespace):
    """Commit the ``--updates`` stream; returns the DynamicGraph."""
    from repro.graph.dynamic import DynamicGraph, parse_update_stream

    batches = parse_update_stream(args.updates)
    dynamic = DynamicGraph(
        graph,
        wal_path=args.wal,
        verify=args.verify_tables,
        seed=args.seed,
    )
    started = time.perf_counter()
    for batch in batches:
        dynamic.commit(batch)
    elapsed = time.perf_counter() - started
    total = sum(len(batch) for batch in batches)
    rate = total / elapsed if elapsed > 0 else float("inf")
    print(
        f"updates: {total} edges across {len(batches)} epochs "
        f"({rate:,.0f} edges/s), now at epoch {dynamic.epoch}"
    )
    return dynamic


def _run_walk(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    program, graph = _build_program(args, graph)
    if args.updates is not None:
        graph = _apply_update_stream(graph, args)
    termination = args.termination
    if args.algorithm == "ppr" and termination == 0.0:
        termination = 1.0 / 80.0
    config = WalkConfig(
        num_walkers=args.walkers,
        max_steps=None if termination > 0 and args.algorithm == "ppr" else args.length,
        termination_probability=termination,
        seed=args.seed,
        stream_paths_to=args.output,
    )

    fault_plan = _build_fault_plan(args)
    tracer = (
        Tracer(sample_every=max(args.trace_sample, 1))
        if args.emit_trace is not None
        else None
    )

    print(f"graph: {graph}")
    print(f"algorithm: {program!r}")
    if args.nodes > 0:
        engine = DistributedWalkEngine(
            graph,
            program,
            config,
            num_nodes=args.nodes,
            fault_plan=fault_plan,
            checkpoint_every=args.checkpoint_every,
            degrade_on_crash=args.degrade,
        )
        engine.observe(tracer)
        result = engine.run()
        print(f"stats: {result.stats.summary()}")
        print(result.cluster.report())
    else:
        engine = WalkEngine(graph, program, config)
        engine.observe(tracer)
        result = engine.run()
        print(f"stats: {result.stats.summary()}")
    print(f"termination: {result.stats.termination}")
    if args.emit_metrics is not None:
        registry = registry_from_walk_stats(result.stats)
        if args.nodes > 0:
            registry_from_cluster_stats(result.cluster, registry)
        with open(args.emit_metrics, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus_text(registry))
        print(f"metrics written to {args.emit_metrics}")
    if tracer is not None:
        write_chrome_trace(tracer, args.emit_trace)
        print(
            f"trace written to {args.emit_trace} "
            f"({len(tracer.spans)} spans; open in chrome://tracing)"
        )
    if result.stats.graph_epoch is not None:
        print(f"graph epoch: {result.stats.graph_epoch}")
        if result.stats.maintenance is not None:
            print(result.stats.maintenance.summary())

    if args.output is not None:
        print(f"corpus streamed to {args.output}")
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        fig5,
        fig6,
        fig7,
        fig8,
        fig9,
        memory,
        navrate,
        table1,
        table5,
        tables34,
    )

    runners = {
        "table1": table1.run,
        "table3": lambda: tables34.run(weighted=False),
        "table4": lambda: tables34.run(weighted=True),
        "table5a": table5.run_5a,
        "table5b": table5.run_5b,
        "fig5": fig5.run,
        "fig6a": fig6.run_6a,
        "fig6b": fig6.run_6b,
        "fig6c": fig6.run_6c,
        "fig7": fig7.run,
        "fig8": fig8.run,
        "fig9": fig9.run,
        "memory": memory.run,
        "navrate": navrate.run,
    }
    print(runners[args.experiment]().format())
    return 0


def _synthetic_request(index: int, args: argparse.Namespace):
    """One request of the synthetic mix, deterministic in ``index``.

    The stream cycles through four classes: light uniform walks (60%),
    heavy DeepWalk corpus jobs (20%), mid-priority node2vec (10%), and
    deadline-tight lookups (10%).
    """
    from repro.service import WalkRequest

    kind = index % 10
    seed = args.seed * 7919 + index
    if kind < 6:
        return WalkRequest(
            program=UniformWalk(),
            config=WalkConfig(num_walkers=32, max_steps=10, seed=seed),
            priority=0,
            tag="light",
        )
    if kind < 8:
        return WalkRequest(
            program=DeepWalk(),
            config=WalkConfig(num_walkers=256, max_steps=40, seed=seed),
            priority=1,
            tag="heavy",
        )
    if kind == 8:
        return WalkRequest(
            program=Node2Vec(p=2.0, q=0.5),
            config=WalkConfig(num_walkers=64, max_steps=20, seed=seed),
            priority=2,
            tag="node2vec",
        )
    return WalkRequest(
        program=UniformWalk(),
        config=WalkConfig(num_walkers=32, max_steps=10, seed=seed),
        priority=1,
        deadline=args.tight_deadline_ms / 1000.0,
        tag="tight",
    )


def _run_serve(args: argparse.Namespace) -> int:
    import time

    from repro.service import DegradationPolicy, WalkService

    graph = _load_graph(args)
    print(f"graph: {graph}")
    print(
        f"service: {args.service_workers} workers, queue capacity "
        f"{args.queue_capacity}, policy {args.policy}"
    )
    tracer = (
        Tracer(sample_every=max(args.trace_sample, 1))
        if args.emit_trace is not None
        else None
    )
    service = WalkService(
        graph,
        num_workers=args.service_workers,
        queue_capacity=args.queue_capacity,
        shed_policy=args.policy,
        degradation=None if args.no_degradation else DegradationPolicy(),
        tracer=tracer,
    )
    tickets = []
    for index in range(args.requests):
        tickets.append(service.submit(_synthetic_request(index, args)))
        if args.burst > 0 and (index + 1) % args.burst == 0:
            time.sleep(0.002)  # bursty arrival: pressure waves, not a drip
    service.close(wait=True)
    responses = [ticket.wait(timeout=300.0) for ticket in tickets]

    by_status: dict[str, int] = {}
    for response in responses:
        by_status[response.status] = by_status.get(response.status, 0) + 1
    print(
        "statuses: "
        + " ".join(f"{k}={v}" for k, v in sorted(by_status.items()))
    )
    print(service.metrics.report())
    metrics = service.metrics
    balanced = service.accounting_balanced() and metrics.resolved == len(
        responses
    )
    print(
        f"accounting: submitted={metrics.submitted} "
        f"served={metrics.served} shed={metrics.shed} "
        f"failed={metrics.failed} exact={balanced}"
    )
    if args.emit_metrics is not None:
        registry = registry_from_service_metrics(metrics)
        with open(args.emit_metrics, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus_text(registry))
        print(f"metrics written to {args.emit_metrics}")
    if tracer is not None:
        write_chrome_trace(tracer, args.emit_trace)
        print(
            f"trace written to {args.emit_trace} "
            f"({len(tracer.spans)} spans; open in chrome://tracing)"
        )
    return 0 if balanced else 1


def _run_sanitize(args: argparse.Namespace) -> int:
    from repro.lint.sanitizer import run_sanitized

    graph = _load_graph(args)
    program, graph = _build_program(args, graph)

    def make_config(engine_mode: str) -> WalkConfig:
        return WalkConfig(
            num_walkers=args.walkers,
            max_steps=args.length,
            termination_probability=args.termination,
            seed=args.seed,
            engine_mode=engine_mode,
        )

    fault_plan = _build_fault_plan(args)

    print(f"graph: {graph}")
    print(f"algorithm: {program!r}")
    if fault_plan is not None:
        print(
            "fault plan: certifying bit-identical replay under the "
            "injected fault schedule"
        )

    def make_factory(config: WalkConfig, epoch: int | None = None):
        def factory():
            target = graph
            if epoch is not None:
                # Rebuild the dynamic graph from scratch and replay the
                # update stream to this epoch — every traced run is a
                # full replay, so agreement certifies that replay is
                # bit-identical, not merely that one engine is.
                from repro.graph.dynamic import DynamicGraph

                target = DynamicGraph(graph, seed=args.seed)
                for batch in update_batches[:epoch]:
                    target.commit(batch)
            if args.nodes > 0:
                return DistributedWalkEngine(
                    target,
                    program,
                    config,
                    num_nodes=args.nodes,
                    fault_plan=fault_plan,
                    checkpoint_every=args.checkpoint_every,
                    degrade_on_crash=args.degrade,
                )
            return WalkEngine(target, program, config)

        return factory

    if args.updates is not None:
        from repro.graph.dynamic import parse_update_stream

        update_batches = parse_update_stream(args.updates)
        print(
            f"update stream: {len(update_batches)} epochs; certifying "
            f"bit-identical replay of the walk at every epoch"
        )
        certified = True
        for epoch in range(1, len(update_batches) + 1):
            report = run_sanitized(
                make_factory(make_config("step"), epoch=epoch),
                runs=args.runs,
            )
            verdict = "certified" if report.deterministic else "DIVERGED"
            print(f"epoch {epoch}: {verdict} ({report.events[0]} events)")
            certified = certified and report.deterministic
        return 0 if certified else 1

    if args.compare_engines:
        # One traced run per engine mode: the staged Gather/Move/Update
        # executor must be event-for-event identical to the
        # walker-at-a-time loop, not merely end in the same state.
        print("comparing engines: run 0 = step-centric, run 1 = walker-centric")
        report = run_sanitized(
            [make_factory(make_config("step")), make_factory(make_config("walker"))]
        )
    else:
        report = run_sanitized(
            make_factory(make_config("step")), runs=args.runs
        )
    print(report.summary())
    return 0 if report.deterministic else 1


def _run_info(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    stats = graph.degree_stats()
    degrees = graph.out_degrees()
    print(f"graph: {graph}")
    print(f"degrees: {stats}")
    if degrees.size:
        percentiles = np.percentile(degrees, [50, 90, 99])
        print(
            f"degree percentiles: p50={percentiles[0]:.0f} "
            f"p90={percentiles[1]:.0f} p99={percentiles[2]:.0f}"
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "walk":
            return _run_walk(args)
        if args.command == "bench":
            return _run_bench(args)
        if args.command == "info":
            return _run_info(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "lint":
            from repro.lint.cli import run_lint

            return run_lint(args)
        if args.command == "sanitize":
            return _run_sanitize(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 2  # unreachable with required=True subparsers


if __name__ == "__main__":
    sys.exit(main())
