"""Distributed-execution simulator (paper sections 5.1 and 6).

Models an N-node cluster: 1-D vertex partitioning, per-superstep BSP
execution, walker-to-vertex query messaging, walker migration, and
straggler-aware thread scheduling.  Work (trials, Pd evaluations,
messages) is counted exactly; simulated time comes from a calibrated
cost model.  See DESIGN.md for the substitution rationale.
"""

from repro.cluster.cost_model import CostModel, NodeWork
from repro.cluster.engine import (
    ClusterStats,
    DistributedWalkEngine,
    DistributedWalkResult,
)
from repro.cluster.network import MessageKind, Network
from repro.cluster.scheduler import (
    LIGHT_MODE_THREADS,
    LIGHT_MODE_THRESHOLD,
    ThreadPolicy,
)

__all__ = [
    "DistributedWalkEngine",
    "DistributedWalkResult",
    "ClusterStats",
    "CostModel",
    "NodeWork",
    "Network",
    "MessageKind",
    "ThreadPolicy",
    "LIGHT_MODE_THRESHOLD",
    "LIGHT_MODE_THREADS",
]
