"""Distributed-execution simulator (paper sections 5.1 and 6).

Models an N-node cluster: 1-D vertex partitioning, per-superstep BSP
execution, walker-to-vertex query messaging, walker migration, and
straggler-aware thread scheduling.  Work (trials, Pd evaluations,
messages) is counted exactly; simulated time comes from a calibrated
cost model.  See DESIGN.md for the substitution rationale.

Robustness layers: seeded fault injection with exactly-once delivery
(:mod:`repro.cluster.faults`), checkpoint-based crash recovery
(:mod:`repro.cluster.recovery`), and degraded-node tolerance — a
phi-accrual failure detector (:mod:`repro.cluster.health`), adaptive
per-link retransmission timers, speculative re-execution, and live
walker rebalancing.
"""

from repro.cluster.cost_model import CostModel, NodeWork
from repro.cluster.engine import (
    DEFAULT_CHECKPOINT_INTERVAL,
    ClusterStats,
    DistributedWalkEngine,
    DistributedWalkResult,
)
from repro.cluster.faults import (
    DELAY_LATENCY_MULTIPLIER,
    DeliveryCounters,
    DeliveryStats,
    FaultPlan,
    FaultPlane,
    FlakyLink,
    MessageFaults,
    NodeCrash,
    NodeSlowdown,
    random_degraded_plan,
    random_fault_plan,
)
from repro.cluster.health import HealthMonitor, HealthPolicy, HealthStats
from repro.cluster.network import LinkTimers, MessageKind, Network
from repro.cluster.recovery import RecoveryStats
from repro.cluster.scheduler import (
    LIGHT_MODE_THREADS,
    LIGHT_MODE_THRESHOLD,
    RetryPolicy,
    StragglerPolicy,
    ThreadPolicy,
    WalkerRebalancer,
)

__all__ = [
    "DistributedWalkEngine",
    "DistributedWalkResult",
    "ClusterStats",
    "CostModel",
    "NodeWork",
    "Network",
    "MessageKind",
    "LinkTimers",
    "ThreadPolicy",
    "RetryPolicy",
    "StragglerPolicy",
    "WalkerRebalancer",
    "LIGHT_MODE_THRESHOLD",
    "LIGHT_MODE_THREADS",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "FaultPlan",
    "FaultPlane",
    "MessageFaults",
    "NodeCrash",
    "NodeSlowdown",
    "FlakyLink",
    "DeliveryCounters",
    "DeliveryStats",
    "RecoveryStats",
    "HealthMonitor",
    "HealthPolicy",
    "HealthStats",
    "random_fault_plan",
    "random_degraded_plan",
    "DELAY_LATENCY_MULTIPLIER",
]
