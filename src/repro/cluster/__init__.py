"""Distributed-execution simulator (paper sections 5.1 and 6).

Models an N-node cluster: 1-D vertex partitioning, per-superstep BSP
execution, walker-to-vertex query messaging, walker migration, and
straggler-aware thread scheduling.  Work (trials, Pd evaluations,
messages) is counted exactly; simulated time comes from a calibrated
cost model.  See DESIGN.md for the substitution rationale.
"""

from repro.cluster.cost_model import CostModel, NodeWork
from repro.cluster.engine import (
    DEFAULT_CHECKPOINT_INTERVAL,
    ClusterStats,
    DistributedWalkEngine,
    DistributedWalkResult,
)
from repro.cluster.faults import (
    DeliveryCounters,
    DeliveryStats,
    FaultPlan,
    FaultPlane,
    MessageFaults,
    NodeCrash,
    random_fault_plan,
)
from repro.cluster.network import MessageKind, Network
from repro.cluster.recovery import RecoveryStats
from repro.cluster.scheduler import (
    LIGHT_MODE_THREADS,
    LIGHT_MODE_THRESHOLD,
    RetryPolicy,
    ThreadPolicy,
)

__all__ = [
    "DistributedWalkEngine",
    "DistributedWalkResult",
    "ClusterStats",
    "CostModel",
    "NodeWork",
    "Network",
    "MessageKind",
    "ThreadPolicy",
    "RetryPolicy",
    "LIGHT_MODE_THRESHOLD",
    "LIGHT_MODE_THREADS",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "FaultPlan",
    "FaultPlane",
    "MessageFaults",
    "NodeCrash",
    "DeliveryCounters",
    "DeliveryStats",
    "RecoveryStats",
    "random_fault_plan",
]
