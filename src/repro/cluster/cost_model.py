"""Calibrated cost model for the cluster simulator.

The paper's cluster is unavailable, so simulated run times are derived
from the work the simulator *actually counts*: rejection trials, Pd
evaluations, and messages, per node per superstep.  The model is
deliberately simple (DESIGN.md section 6):

``T_node = threads * c_thread + compute_work / compute_threads
           + message_work / comm_threads``

where ``compute_threads = threads - 2`` (KnightKing dedicates two
threads to message passing, section 6.2; in light mode one compute
thread remains) and the superstep time is the slowest node's time —
the BSP barrier.

The per-thread constant models scheduling/synchronisation overhead of
keeping a thread pool spinning for one superstep; it is what the
straggler-aware light mode (Figure 9) trades against parallel speedup.
Constants are rough C++-scale costs (tens of nanoseconds per
probability computation, microseconds per small message) — their
absolute values only set the time unit; every reproduced *shape*
depends on their ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "NodeWork"]


@dataclass(frozen=True)
class NodeWork:
    """Work one node performed in one superstep."""

    trials: int = 0
    pd_evaluations: int = 0
    messages: int = 0
    active_walkers: int = 0

    def merged(self, other: "NodeWork") -> "NodeWork":
        return NodeWork(
            trials=self.trials + other.trials,
            pd_evaluations=self.pd_evaluations + other.pd_evaluations,
            messages=self.messages + other.messages,
            active_walkers=max(self.active_walkers, other.active_walkers),
        )


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs, in seconds.

    Attributes
    ----------
    trial_cost:
        one rejection-sampling trial (candidate draw + dart).
    pd_cost:
        one dynamic-component evaluation (includes the adjacency
        binary search for node2vec-style checks).
    message_cost:
        handling one small message end-to-end (serialise + transfer
        share + deserialise).
    thread_overhead:
        keeping one pool thread for one superstep (wakeup, chunk
        scheduling at the paper's chunk size 128, barrier).
    barrier_cost:
        fixed per-superstep BSP synchronisation cost per node.
    comm_threads:
        threads dedicated to message passing (2 in the paper).
    backoff_unit_cost:
        one retransmission-timeout unit of waiting — the latency a
        retry chain adds to its superstep's communication phase
        (reliable delivery under injected faults).
    checkpoint_cost_per_walker:
        serialising one walker's dynamic state into a recovery
        checkpoint (charged to the superstep that takes it).
    restore_cost_per_walker:
        reloading one walker's state while recovering from a crash.
    """

    trial_cost: float = 8e-8
    pd_cost: float = 1.5e-7
    message_cost: float = 5e-7
    thread_overhead: float = 4e-6
    barrier_cost: float = 2e-6
    comm_threads: int = 2
    backoff_unit_cost: float = 2e-6
    checkpoint_cost_per_walker: float = 5e-8
    restore_cost_per_walker: float = 1e-7

    def node_time(self, work: NodeWork, threads: int) -> float:
        """Simulated time one node spends on one superstep."""
        compute_threads = max(threads - self.comm_threads, 1)
        compute = work.trials * self.trial_cost + (
            work.pd_evaluations * self.pd_cost
        )
        communicate = work.messages * self.message_cost
        return (
            threads * self.thread_overhead
            + self.barrier_cost
            + compute / compute_threads
            + communicate / max(self.comm_threads, 1)
        )

    def stage_times(
        self, work: NodeWork, threads: int
    ) -> tuple[float, float, float]:
        """Deterministic Gather/Move/Update decomposition of
        :meth:`node_time` for the superstep timeline (repro.obs).

        * **gather** — per-superstep thread-pool spin-up and chunk
          scheduling (state fetch), the ``threads * c_thread`` term;
        * **move** — the sampling + message-handling work that actually
          moves walkers (compute and communicate phases);
        * **update** — barrier entry and bookkeeping.

        The three stages sum exactly to :meth:`node_time`, so a trace
        viewer's stage slices tile each node's compute span; being a
        pure function of the work counts, the decomposition replays
        bit-identically (no clock is involved).
        """
        compute_threads = max(threads - self.comm_threads, 1)
        compute = work.trials * self.trial_cost + (
            work.pd_evaluations * self.pd_cost
        )
        gather = threads * self.thread_overhead
        move = compute / compute_threads + (
            work.messages * self.message_cost / max(self.comm_threads, 1)
        )
        update = self.barrier_cost
        return (gather, move, update)

    def compute_time(self, work: NodeWork, threads: int) -> float:
        """Compute-phase share of :meth:`node_time` — the part a
        speculative buddy re-executes for a suspected node (messages
        were already sent; only the sampling work is redone)."""
        compute_threads = max(threads - self.comm_threads, 1)
        compute = work.trials * self.trial_cost + (
            work.pd_evaluations * self.pd_cost
        )
        return compute / compute_threads

    def superstep_time(
        self, per_node_work: list[NodeWork], per_node_threads: list[int]
    ) -> float:
        """BSP: the superstep lasts as long as its slowest node."""
        return max(
            self.node_time(work, threads)
            for work, threads in zip(per_node_work, per_node_threads)
        )

    def retry_latency(self, backoff_units: float) -> float:
        """Time the superstep's deepest retransmission chain adds."""
        return backoff_units * self.backoff_unit_cost

    def checkpoint_time(self, num_walkers: int) -> float:
        """Cost of taking one recovery checkpoint."""
        return num_walkers * self.checkpoint_cost_per_walker

    def restore_time(self, num_walkers: int) -> float:
        """Cost of restoring engine state after a node crash."""
        return num_walkers * self.restore_cost_per_walker
