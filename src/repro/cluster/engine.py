"""The distributed walk engine over the cluster simulator.

:class:`DistributedWalkEngine` executes the same walker programs as the
single-process :class:`~repro.core.engine.WalkEngine`, but over a
partitioned graph on ``num_nodes`` simulated nodes, implementing the
five-step iteration of paper section 5.1 with explicit message
accounting:

1. each node generates candidate edges for its local walkers and
   pre-screens them (pre-acceptance, locally-resolvable Pd cases,
   outlier appendices — node2vec's return edge is always local);
2. walkers post walker-to-vertex state queries for the remaining
   candidates, batched by the owning node of the queried vertex;
3. owning nodes execute the queries and send responses;
4. walkers retrieve results and finish their Pd evaluations;
5. walkers accept/reject; accepted walkers move, migrating to the new
   vertex's owner when it lives on another node.

The simulator is *work-exact*: trials, Pd evaluations, and messages are
counted precisely per node and per superstep; simulated run time comes
from the calibrated :class:`~repro.cluster.cost_model.CostModel`
(slowest node per superstep, BSP).  The walk itself is executed for
real — results are bit-identical in distribution to the local engine's.

Straggler-aware scheduling (section 6.2) is modelled through
:class:`~repro.cluster.scheduler.ThreadPolicy`: a node whose active
walker count falls under the threshold drops to three threads,
shrinking its per-superstep thread overhead.

Fault tolerance (see :mod:`repro.cluster.faults` and
:mod:`repro.cluster.recovery`): given a :class:`FaultPlan`, every
remote message batch runs through seeded faulty delivery with
retransmission and dedup, the engine checkpoints its dynamic state
every K supersteps, and injected node crashes are recovered by
restoring the lost shard from the last checkpoint and replaying —
or, in degraded mode, by re-partitioning a permanently dead node's
vertices across the survivors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cost_model import CostModel, NodeWork
from repro.cluster.faults import DeliveryStats, FaultPlan, FaultPlane, NodeCrash
from repro.cluster.health import HealthMonitor, HealthPolicy, HealthStats
from repro.cluster.network import MessageKind, Network
from repro.cluster.recovery import (
    ClusterCheckpoint,
    RecoveryStats,
    capture_cluster_state,
    reassign_dead_vertices,
    restore_cluster_state,
)
from repro.cluster.scheduler import (
    RetryPolicy,
    StragglerPolicy,
    ThreadPolicy,
    WalkerRebalancer,
)
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine, WalkResult
from repro.core.kernels import adaptive_trial_count, batch_multi_trial_round
from repro.core.program import WalkerProgram
from repro.errors import FaultError, NodeCrashError
from repro.graph.csr import CSRGraph
from repro.graph.partition import ContiguousPartition, partition_graph

__all__ = [
    "DistributedWalkEngine",
    "ClusterStats",
    "DistributedWalkResult",
    "DEFAULT_CHECKPOINT_INTERVAL",
]

# Checkpoint cadence (supersteps) when fault tolerance is on and the
# caller did not choose one.  Small K replays little on a crash but
# pays checkpoint cost often; the INTERNALS.md section discusses the
# trade-off.
DEFAULT_CHECKPOINT_INTERVAL = 8


@dataclass
class ClusterStats:
    """System-level statistics of one distributed execution."""

    num_nodes: int
    simulated_seconds: float = 0.0
    superstep_times: list[float] = field(default_factory=list)
    light_mode_node_supersteps: int = 0
    network: Network | None = None
    # Per-node lifetime load (paper section 6.1: the 1-D partition
    # balances memory, not necessarily walk processing).
    trials_per_node: np.ndarray | None = None
    pd_evaluations_per_node: np.ndarray | None = None
    walker_supersteps_per_node: np.ndarray | None = None
    # Fault-tolerance accounting (always present; all-zero on healthy
    # runs) and physical-layer delivery counters (None without a plan).
    recovery: RecoveryStats = field(default_factory=RecoveryStats)
    delivery: DeliveryStats | None = None
    # Straggler-tolerance accounting (None unless the health monitor
    # is active — degraded fault plan or explicit StragglerPolicy).
    health: HealthStats | None = None

    @property
    def num_supersteps(self) -> int:
        return len(self.superstep_times)

    def report(self) -> str:
        """Multi-line run report including the robustness bill."""
        lines = [
            f"cluster: {self.num_nodes} nodes, {self.num_supersteps} "
            f"supersteps, {self.simulated_seconds:.4f}s simulated"
        ]
        if self.network is not None:
            lines.append(
                f"network: {self.network.total_messages()} remote messages, "
                f"{self.network.total_bytes()} bytes, "
                f"{self.network.local_deliveries()} local deliveries"
            )
        if self.delivery is not None:
            lines.append(
                f"delivery: {self.delivery.retransmissions} retransmissions, "
                f"{self.delivery.dedups} dedups "
                f"(injected: {self.delivery.drops} drops, "
                f"{self.delivery.duplicates} duplicates, "
                f"{self.delivery.delays} delays)"
            )
        if self.health is not None:
            lines.extend(self.health.report_lines())
        recovery = self.recovery
        lines.append(
            f"recovery: {recovery.crashes} crashes, "
            f"{recovery.checkpoints_taken} checkpoints taken, "
            f"{recovery.replayed_supersteps} supersteps replayed, "
            f"{recovery.recovery_seconds:.4f}s recovering"
            + (
                f", degraded nodes {recovery.degraded_nodes}"
                if recovery.degraded_nodes
                else ""
            )
        )
        return "\n".join(lines)

    def compute_balance(self) -> float:
        """max/mean of per-node processing load (trials + Pd
        evaluations); 1.0 is perfectly balanced."""
        if self.trials_per_node is None or self.pd_evaluations_per_node is None:
            return 1.0
        loads = (
            self.trials_per_node + self.pd_evaluations_per_node
        ).astype(np.float64)
        mean = loads.mean()
        return float(loads.max() / mean) if mean > 0 else 1.0


@dataclass
class DistributedWalkResult(WalkResult):
    """Walk result plus cluster-simulation statistics."""

    cluster: ClusterStats = None  # type: ignore[assignment]


class DistributedWalkEngine(WalkEngine):
    """KnightKing's distributed execution on the cluster simulator.

    Parameters
    ----------
    num_nodes:
        simulated cluster size (the paper uses 8).
    thread_policy:
        per-node thread scheduling, including the light-mode straggler
        optimization.  Default: 16 compute + 2 message threads, light
        mode on (the paper's configuration).
    cost_model:
        converts counted work into simulated seconds.
    fault_plan:
        seeded fault injection (crashes + message faults); ``None``
        simulates a healthy cluster with zero overhead.
    retry_policy:
        timeout/backoff configuration of the reliable-delivery layer
        (only meaningful with a fault plan).
    checkpoint_every:
        recovery-checkpoint cadence K in supersteps.  ``None`` picks
        :data:`DEFAULT_CHECKPOINT_INTERVAL` when a fault plan is given
        (falling back to ``config.checkpoint_every`` if set); ``0``
        disables checkpointing — a node crash then aborts the run with
        :class:`~repro.errors.NodeCrashError`.
    degrade_on_crash:
        how to treat a crash with ``restart=False``: re-partition the
        dead node's vertices across survivors and continue (True), or
        abort (False, the default).
    straggler_policy:
        degraded-node tolerance (speculative re-execution and walker
        rebalancing).  ``None`` enables the default policy when the
        fault plan degrades nodes or links, and disables the machinery
        otherwise — healthy runs and pure crash/message-fault runs are
        numerically unchanged.
    health_policy:
        failure-detector thresholds (see
        :class:`~repro.cluster.health.HealthPolicy`); only meaningful
        when the health monitor is active.
    """

    _accounts_lane_work = True

    def __init__(
        self,
        graph: CSRGraph,
        program: WalkerProgram,
        config: WalkConfig | None = None,
        num_nodes: int = 8,
        thread_policy: ThreadPolicy | None = None,
        cost_model: CostModel | None = None,
        use_lower_bound: bool = True,
        validate_bounds: bool = False,
        fuse_trials: bool = True,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        checkpoint_every: int | None = None,
        degrade_on_crash: bool = False,
        straggler_policy: StragglerPolicy | None = None,
        health_policy: HealthPolicy | None = None,
    ) -> None:
        super().__init__(
            graph,
            program,
            config,
            use_lower_bound=use_lower_bound,
            validate_bounds=validate_bounds,
            fuse_trials=fuse_trials,
        )
        # self.graph, not the raw argument: the base class may have
        # unwrapped a DynamicGraph/EpochSnapshot into its epoch's CSR.
        self.partition: ContiguousPartition = partition_graph(
            self.graph, num_nodes
        )
        self.num_nodes = num_nodes
        self.thread_policy = (
            thread_policy if thread_policy is not None else ThreadPolicy()
        )
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.fault_plan = fault_plan
        self.fault_plane = (
            FaultPlane(fault_plan, num_nodes, retry_policy)
            if fault_plan is not None
            else None
        )
        self.network = Network(num_nodes, fault_plane=self.fault_plane)
        if checkpoint_every is None:
            checkpoint_every = self.config.checkpoint_every
        if checkpoint_every is None and fault_plan is not None:
            checkpoint_every = DEFAULT_CHECKPOINT_INTERVAL
        # 0 (or None) means no checkpoints are ever taken.
        self.checkpoint_every = checkpoint_every if checkpoint_every else None
        self.degrade_on_crash = degrade_on_crash
        if (
            fault_plan is not None
            and fault_plan.has_crashes
            and self._streaming
        ):
            raise FaultError(
                "crash recovery cannot rewind streamed paths; use "
                "record_paths or disable path output under a crash plan"
            )
        # Straggler tolerance engages when asked for explicitly, or
        # automatically when the plan degrades nodes/links.  Healthy
        # runs and pure crash/message-fault runs stay numerically
        # identical to before this layer existed.
        monitor_on = straggler_policy is not None or (
            fault_plan is not None and fault_plan.has_degradations
        )
        self.straggler_policy = (
            straggler_policy if straggler_policy is not None else StragglerPolicy()
        )
        self.health = (
            HealthMonitor(num_nodes, health_policy) if monitor_on else None
        )
        self.rebalancer = (
            WalkerRebalancer(num_nodes, self.cost_model, self.straggler_policy)
            if monitor_on and self.straggler_policy.rebalance
            else None
        )
        self.cluster = ClusterStats(
            num_nodes=num_nodes,
            network=self.network,
            trials_per_node=np.zeros(num_nodes, dtype=np.int64),
            pd_evaluations_per_node=np.zeros(num_nodes, dtype=np.int64),
            walker_supersteps_per_node=np.zeros(num_nodes, dtype=np.int64),
            delivery=self.fault_plane.stats if self.fault_plane else None,
            health=self.health.stats if self.health else None,
        )
        # Per-superstep, per-node work accumulators.
        self._node_trials = np.zeros(num_nodes, dtype=np.int64)
        self._node_pd = np.zeros(num_nodes, dtype=np.int64)
        self._node_msgs = np.zeros(num_nodes, dtype=np.int64)
        # Fault-tolerance runtime state.
        self._alive_nodes = np.ones(num_nodes, dtype=bool)
        self._owner_lookup: np.ndarray | None = None
        self._checkpoint: ClusterCheckpoint | None = None
        self._executed_supersteps = 0
        # Engines that replace the distributed round wholesale (the
        # Gemini baseline) keep the legacy per-round loop; the staged
        # executor would route around their override.
        if (
            type(self)._distributed_round
            is not DistributedWalkEngine._distributed_round
        ):
            self.engine_mode = "walker"
            self._stepper = None

    # ------------------------------------------------------------------
    # The cluster's timeline is simulated: stage spans are *declared*
    # from the cost model via Tracer.record_span (never measured), so
    # tracing performs no clock reads inside repro.cluster (RK201/
    # RK206/RK210) and a degraded run's trace replays bit-identically.
    _obs_stages = False
    _obs_track = "cluster"

    def observe(self, tracer) -> None:
        super().observe(tracer)
        # Per-walker span context: walker id -> last hop span id.  The
        # context rides each WALKER_MIGRATE so a walker's cross-node
        # hops chain into one causal trace (trace id "walker-<id>").
        self._obs_walker_spans: dict[int, int] = {}
        self._obs_sim_start = 0.0
        self._obs_net_snapshot = self.network.totals_snapshot()

    def attach_tracer(self, tracer) -> None:
        """Distributed seam: additionally trace message deliveries.

        Every :meth:`Network.record_batch` — state queries, query
        responses, walker migrations — lands in the trace in protocol
        order, so two runs whose walks agree but whose delivery order
        differs diverge at the first reordered batch.
        """
        super().attach_tracer(tracer)
        network = self.network
        original_record = network.record_batch

        def traced_record(kind, sources, destinations):
            tracer.record_delivery(kind.name, sources, destinations)
            return original_record(kind, sources, destinations)

        network.record_batch = traced_record

    # ------------------------------------------------------------------
    def run(
        self,
        max_iterations: int | None = None,
        deadline=None,
        cancel=None,
    ) -> DistributedWalkResult:
        """Execute the distributed walk; same ``deadline`` / ``cancel``
        semantics as :meth:`WalkEngine.run` — both are checked at the
        BSP barrier between supersteps, so a partial result is always a
        consistent superstep boundary (no in-flight messages)."""
        loop_start = time.perf_counter()
        if self.checkpoint_every is not None and self._checkpoint is None:
            # Recovery point zero: a crash before the first periodic
            # checkpoint replays from the initial state.
            self._take_checkpoint()
        executed = 0
        status = "complete"
        while self.walkers.num_active:
            stop = self._should_stop(executed, max_iterations, deadline, cancel)
            if stop is not None:
                status = stop
                break
            self._superstep()
            executed += 1
        self.stats.wall_time_seconds += time.perf_counter() - loop_start
        self.cluster.simulated_seconds = float(
            np.sum(self.cluster.superstep_times)
        ) + self.cluster.recovery.recovery_seconds
        if self._obs is not None:
            self._obs.record_span(
                "cluster.run",
                ts=0.0,
                dur=self.cluster.simulated_seconds,
                track=self._obs_track,
                args={
                    "nodes": self.num_nodes,
                    "supersteps": self.cluster.num_supersteps,
                    "status": status,
                },
            )
        paths = None
        if self._recorder is not None:
            if self._streaming:
                if not self.walkers.num_active:
                    self._recorder.close()
            else:
                paths = self._recorder.paths()
        return DistributedWalkResult(
            stats=self.stats,
            walkers=self.walkers,
            paths=paths,
            status=status,
            cluster=self.cluster,
        )

    # ------------------------------------------------------------------
    def _owners(self, vertices: np.ndarray) -> np.ndarray:
        """Owning node per vertex, honouring any degraded-mode overlay
        that re-homed a dead node's range onto the survivors."""
        if self._owner_lookup is not None:
            return self._owner_lookup[vertices]
        return self.partition.owners(vertices)

    # ------------------------------------------------------------------
    def _superstep(self) -> None:
        if self.fault_plane is not None:
            self.fault_plane.begin_superstep(self._executed_supersteps)
            for crash in self.fault_plane.crashes_at(self._executed_supersteps):
                self._handle_crash(crash)
        self._node_trials[:] = 0
        self._node_pd[:] = 0
        self._node_msgs[:] = 0
        if self._obs is not None:
            # Where this superstep starts on the simulated timeline.
            # Recomputed from the authoritative lists so checkpoint
            # rollbacks (which rewind superstep_times) and recovery
            # charges stay consistent automatically.
            self._obs_sim_start = float(
                np.sum(self.cluster.superstep_times)
            ) + self.cluster.recovery.recovery_seconds
        if self.rebalancer is not None:
            # Act on last barrier's suspicion before this superstep's
            # work is assigned: migrated walkers compute on their new
            # homes immediately.
            self._rebalance_walkers()
        active = self.walkers.active_ids()
        self.stats.active_per_iteration.append(active.size)
        self.stats.iterations += 1
        active_per_node = np.bincount(
            self._owners(self.walkers.current[active]),
            minlength=self.num_nodes,
        )

        survivors = self._apply_extension_component(active)
        if survivors.size:
            survivors = self._apply_teleports(survivors)
        if survivors.size:
            if self.sync_mode == "trial":
                # Second-order pacing is a protocol semantic: each
                # trial is a two-round query exchange, so trial-paced
                # programs always run the five-step round (the step
                # executor would collapse the exchange).
                self._distributed_round(survivors)
            elif self._stepper is not None:
                self._stepper.run_iteration(survivors)
            elif self._fuse:
                pending = survivors
                while pending.size:
                    moved = self._distributed_multi_round(pending)
                    pending = pending[~moved]
            else:
                pending = survivors
                while pending.size:
                    moved = self._distributed_round(pending)
                    pending = pending[~moved]

        self._flush_streaming(active)
        self._close_superstep(active_per_node)

    # ------------------------------------------------------------------
    # Hook overrides: per-node message and work accounting
    # ------------------------------------------------------------------
    def _commit_moves(self, movers: np.ndarray, targets: np.ndarray) -> None:
        """Moves migrate walkers to the new vertex's owner."""
        old_owners = self._owners(self.walkers.current[movers])
        new_owners = self._owners(targets)
        migrated = self.network.record_batch(
            MessageKind.WALKER_MIGRATE, old_owners, new_owners
        )
        np.add.at(self._node_msgs, old_owners, 1)
        np.add.at(self._node_msgs, new_owners, 1)
        self.stats.messages_sent += migrated
        obs = self._obs
        if obs is not None:
            self._emit_hop_spans(movers, targets, old_owners, new_owners)
        super()._commit_moves(movers, targets)

    def _emit_hop_spans(
        self,
        movers: np.ndarray,
        targets: np.ndarray,
        old_owners: np.ndarray,
        new_owners: np.ndarray,
    ) -> None:
        """Span-context propagation across cluster messages: each
        sampled walker's cross-node migration becomes a span on the
        destination node's track, parented to the walker's previous
        hop and sharing its ``walker-<id>`` trace id.  Observation
        only — no RNG, no clock, no effect on the walk."""
        obs = self._obs
        cost = self.cost_model.message_cost
        for idx in np.nonzero(old_owners != new_owners)[0]:
            walker_id = int(movers[idx])
            if not obs.sampled(walker_id):
                continue
            span_id = obs.record_span(
                "walker.hop",
                ts=self._obs_sim_start,
                dur=cost,
                track=f"node{int(new_owners[idx])}",
                category="walker",
                parent_id=self._obs_walker_spans.get(walker_id),
                trace_id=f"walker-{walker_id}",
                args={
                    "walker": walker_id,
                    "src_node": int(old_owners[idx]),
                    "dst_node": int(new_owners[idx]),
                    "vertex": int(targets[idx]),
                },
            )
            self._obs_walker_spans[walker_id] = span_id

    def _run_guard(self, ids: np.ndarray) -> None:
        """The zero-mass guard charges its full-scan Pd evaluations to
        each walker's node.  Owners are read before the guard moves the
        walkers."""
        nodes = self._owners(self.walkers.current[ids])
        evaluations = self._guard_batch(ids)
        np.add.at(self._node_pd, nodes, evaluations)

    def _account_lane_work(
        self,
        vertices: np.ndarray,
        trials: np.ndarray | int | None = None,
        pd: np.ndarray | None = None,
    ) -> None:
        """Charge sampling work to the nodes owning ``vertices``."""
        nodes = self._owners(vertices)
        if trials is not None:
            np.add.at(self._node_trials, nodes, trials)
        if pd is not None:
            np.add.at(self._node_pd, nodes, pd)

    def _close_superstep(self, active_per_node: np.ndarray) -> None:
        """Charge the superstep to the cost model.

        With the straggler layer active this also stretches degraded
        nodes' times by their slowdown factors, speculatively
        re-executes suspected nodes on healthy buddies (the barrier
        waits for whichever copy finishes first), and feeds the raw
        per-node times — the BSP heartbeat — to the health monitor.
        """
        self.cluster.trials_per_node += self._node_trials
        self.cluster.pd_evaluations_per_node += self._node_pd
        self.cluster.walker_supersteps_per_node += active_per_node
        retry_latency = 0.0
        factors = None
        if self.fault_plane is not None:
            # Physical-layer overhead: retransmission sends and dedup
            # discards are real message handling for their nodes, and
            # the worst retry/absorbed-delay chain stretches the
            # barrier.
            overhead, latency_units = self.fault_plane.drain_superstep()
            self._node_msgs += overhead
            retry_latency = self.cost_model.retry_latency(latency_units)
            if self.fault_plan.has_slowdowns:
                factors = self.fault_plane.node_factors()
        node_ids = []
        works = []
        threads = []
        times = []
        for node in range(self.num_nodes):
            if not self._alive_nodes[node]:
                continue  # a degraded-away node pays nothing further
            work = NodeWork(
                trials=int(self._node_trials[node]),
                pd_evaluations=int(self._node_pd[node]),
                messages=int(self._node_msgs[node]),
                active_walkers=int(active_per_node[node]),
            )
            node_threads = self.thread_policy.threads_for(
                int(active_per_node[node])
            )
            if node_threads < self.thread_policy.full_threads:
                self.cluster.light_mode_node_supersteps += 1
            node_time = self.cost_model.node_time(work, node_threads)
            if factors is not None:
                node_time *= float(factors[node])
            node_ids.append(node)
            works.append(work)
            threads.append(node_threads)
            times.append(node_time)
        times = np.asarray(times, dtype=np.float64)
        if self.health is not None:
            # Heartbeats are the *raw* stretched times: suspicion must
            # keep tracking a node's intrinsic slowness even while
            # speculation masks it at the barrier.
            heartbeat = np.zeros(self.num_nodes, dtype=np.float64)
            heartbeat[node_ids] = times
            effective = self._speculate(
                node_ids, works, threads, times, active_per_node, factors
            )
            self.health.observe(heartbeat, self._alive_nodes)
        else:
            effective = times
        barrier = float(effective.max()) if effective.size else 0.0
        self.cluster.superstep_times.append(barrier + retry_latency)
        self._executed_supersteps += 1
        checkpoint_time = 0.0
        if (
            self.checkpoint_every is not None
            and self.stats.iterations % self.checkpoint_every == 0
        ):
            self._take_checkpoint()
            # The checkpoint is taken inside the barrier it follows.
            checkpoint_time = self.cost_model.checkpoint_time(
                self.walkers.num_walkers
            )
            self.cluster.superstep_times[-1] += checkpoint_time
        if self._obs is not None:
            self._emit_superstep_spans(
                node_ids, works, threads, times,
                barrier, retry_latency, checkpoint_time,
            )

    def _emit_superstep_spans(
        self,
        node_ids: list[int],
        works: list[NodeWork],
        threads: list[int],
        times: np.ndarray,
        barrier: float,
        retry_latency: float,
        checkpoint_time: float,
    ) -> None:
        """Declare this superstep on the simulated timeline.

        One superstep span on the ``cluster`` track; per alive node a
        compute span on its ``node<i>`` track whose Gather/Move/Update
        stage children tile it exactly (cost-model decomposition, see
        :meth:`CostModel.stage_times`); a message-flush span covering
        the barrier's communication tail; and a checkpoint span when
        one was taken.  Everything is a pure function of simulator
        state — zero clock reads, so traces replay bit-identically.
        """
        obs = self._obs
        start = self._obs_sim_start
        total = self.cluster.superstep_times[-1]
        superstep_id = obs.record_span(
            "superstep",
            ts=start,
            dur=total,
            track=self._obs_track,
            args={
                "iteration": self.stats.iterations,
                "active": int(self.stats.active_per_iteration[-1]),
                "barrier": barrier,
            },
        )
        for node, work, node_threads, node_time in zip(
            node_ids, works, threads, times
        ):
            track = f"node{node}"
            compute_id = obs.record_span(
                "node.compute",
                ts=start,
                dur=float(node_time),
                track=track,
                parent_id=superstep_id,
                args={
                    "node": node,
                    "threads": node_threads,
                    "trials": work.trials,
                    "pd_evaluations": work.pd_evaluations,
                    "messages": work.messages,
                    "active_walkers": work.active_walkers,
                },
            )
            stages = self.cost_model.stage_times(work, node_threads)
            stage_sum = sum(stages)
            # Slowdown factors stretched node_time uniformly; scale the
            # stages so they still tile the compute span.
            scale = float(node_time) / stage_sum if stage_sum > 0 else 0.0
            cursor = start
            for stage_name, stage_time in zip(
                ("stage.gather", "stage.move", "stage.update"), stages
            ):
                dur = stage_time * scale
                obs.record_span(
                    stage_name,
                    ts=cursor,
                    dur=dur,
                    track=track,
                    parent_id=compute_id,
                )
                cursor += dur
        messages, message_bytes, local = self.network.totals_snapshot()
        last = self._obs_net_snapshot
        self._obs_net_snapshot = (messages, message_bytes, local)
        obs.record_span(
            "message.flush",
            ts=start + barrier,
            dur=retry_latency,
            track=self._obs_track,
            category="network",
            parent_id=superstep_id,
            args={
                "messages": messages - last[0],
                "bytes": message_bytes - last[1],
                "local_deliveries": local - last[2],
            },
        )
        if checkpoint_time > 0.0:
            obs.record_span(
                "checkpoint",
                ts=start + barrier + retry_latency,
                dur=checkpoint_time,
                track=self._obs_track,
                category="recovery",
                parent_id=superstep_id,
                args={"walkers": self.walkers.num_walkers},
            )

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------
    def _take_checkpoint(self) -> None:
        self._checkpoint = capture_cluster_state(self)
        self.cluster.recovery.checkpoints_taken += 1

    def _handle_crash(self, crash: NodeCrash) -> None:
        """Recover from one injected node failure.

        The crashed node's walker shard is gone; recovery restores the
        last checkpoint and replays the supersteps since (the replay is
        bit-identical — the walk RNG is part of the checkpoint).  A
        non-restarting crash additionally removes the node: in degraded
        mode its vertices are re-partitioned across survivors,
        otherwise the run aborts.
        """
        node = crash.node
        if node >= self.num_nodes or not self._alive_nodes[node]:
            return  # nothing left to kill
        recovery = self.cluster.recovery
        recovery.crashes += 1
        if self._checkpoint is None:
            raise NodeCrashError(
                f"node {node} crashed at superstep "
                f"{self._executed_supersteps} with checkpointing disabled"
            )
        if crash.restart:
            recovery.restarts += 1
        elif self.degrade_on_crash:
            self._alive_nodes[node] = False
            if not self._alive_nodes.any():
                raise NodeCrashError(
                    "last surviving node crashed; nothing to degrade onto"
                )
            self._owner_lookup = reassign_dead_vertices(
                self.partition,
                self._owner_lookup,
                node,
                self._alive_nodes,
                self.graph.num_vertices,
            )
            recovery.degraded_nodes.append(node)
        else:
            raise NodeCrashError(
                f"node {node} crashed permanently at superstep "
                f"{self._executed_supersteps} (degrade_on_crash is off)"
            )
        recovery.replayed_supersteps += (
            self.stats.iterations - self._checkpoint.iterations
        )
        restore_cluster_state(self, self._checkpoint)
        recovery.recovery_seconds += self.cost_model.restore_time(
            self.walkers.num_walkers
        )

    # ------------------------------------------------------------------
    # Straggler tolerance
    # ------------------------------------------------------------------
    def _speculate(
        self,
        node_ids: list[int],
        works: list[NodeWork],
        threads: list[int],
        times: np.ndarray,
        active_per_node: np.ndarray,
        factors: np.ndarray | None,
    ) -> np.ndarray:
        """Speculative re-execution of suspected nodes' supersteps.

        For each suspected node, the least-loaded healthy node also
        runs a copy of its compute phase; the barrier waits for
        whichever copy finishes first.  The losing copy's walker
        migrations are re-sends of messages the winner also sent, so
        they reconcile through the exactly-once dedup layer
        (:meth:`FaultPlane.record_speculative_copies`) — conservation
        accounting stays balanced.  Returns the effective per-node
        times (aligned with ``node_ids``).
        """
        if not self.straggler_policy.speculate or not self.health.any_suspected:
            return times
        suspected = self.health.suspected
        effective = times.copy()
        order = np.argsort(times, kind="stable")
        stats = self.health.stats
        for position, node in enumerate(node_ids):
            if not suspected[node] or active_per_node[node] == 0:
                continue
            buddy_position = next(
                (
                    int(p)
                    for p in order
                    if node_ids[int(p)] != node
                    and not suspected[node_ids[int(p)]]
                ),
                None,
            )
            if buddy_position is None:
                continue  # everyone is suspected; nobody to run the copy
            stats.speculations += 1
            copy_time = self.cost_model.compute_time(
                works[position], threads[buddy_position]
            )
            if factors is not None:
                copy_time *= float(factors[node_ids[buddy_position]])
            buddy_total = times[buddy_position] + copy_time
            if buddy_total < effective[position]:
                stats.speculation_wins += 1
                effective[position] = buddy_total
                copies = int(active_per_node[node])
                if self.fault_plane is not None and copies:
                    self.fault_plane.record_speculative_copies(
                        MessageKind.WALKER_MIGRATE, copies
                    )
                    stats.speculative_copies += copies
        return effective

    def _rebalance_walkers(self) -> None:
        """Migrate queued walkers off suspected nodes, and restore the
        homes of nodes whose suspicion cleared at the last barrier.

        Re-homing goes through the same owner-lookup overlay
        degraded-mode crash recovery uses, so `_owners` — and with it
        work accounting and message endpoints — follows the migration
        while the walk RNG stream is untouched: the walk itself stays
        bit-identical to the healthy run.
        """
        monitor = self.health
        for node in monitor.newly_cleared():
            self._restore_rebalanced(node)
        if not monitor.any_suspected:
            return
        active = self.walkers.active_ids()
        if active.size == 0:
            return
        vertices = self.walkers.current[active]
        owners = self._owners(vertices)
        stats = monitor.stats
        for node in np.flatnonzero(monitor.suspected & self._alive_nodes):
            plan = self.rebalancer.plan(
                int(node),
                vertices,
                owners,
                monitor.ewma,
                monitor.suspected,
                self._alive_nodes,
            )
            if plan is None:
                continue
            moved_vertices, targets, moved_walkers = plan
            sorter = np.argsort(moved_vertices, kind="stable")
            moved_vertices = moved_vertices[sorter]
            targets = targets[sorter]
            self._ensure_owner_lookup()
            self._owner_lookup[moved_vertices] = targets
            self.rebalancer.record(int(node), moved_vertices)
            # Each re-homed walker is one real migration message.
            lane = np.searchsorted(moved_vertices, vertices)
            on_moved = (lane < moved_vertices.size) & (
                np.take(moved_vertices, lane, mode="clip") == vertices
            )
            walker_targets = targets[lane[on_moved]]
            walker_sources = np.full(
                walker_targets.size, int(node), dtype=np.int64
            )
            migrated = self.network.record_batch(
                MessageKind.WALKER_MIGRATE, walker_sources, walker_targets
            )
            np.add.at(self._node_msgs, walker_sources, 1)
            np.add.at(self._node_msgs, walker_targets, 1)
            self.stats.messages_sent += migrated
            stats.rebalances += 1
            stats.migrated_walkers += moved_walkers
            # Keep this superstep's view consistent for later suspects.
            owners[on_moved] = walker_targets

    def _restore_rebalanced(self, node: int) -> None:
        """Move a recovered node's re-homed vertices back to it."""
        moved_vertices = self.rebalancer.take_restorable(node)
        if moved_vertices.size == 0 or not self._alive_nodes[node]:
            return
        current_owner = self._owner_lookup[moved_vertices]
        active = self.walkers.active_ids()
        if active.size:
            vertices = self.walkers.current[active]
            lane = np.searchsorted(moved_vertices, vertices)
            on_moved = (lane < moved_vertices.size) & (
                np.take(moved_vertices, lane, mode="clip") == vertices
            )
            walker_sources = current_owner[lane[on_moved]]
            walker_targets = np.full(
                walker_sources.size, int(node), dtype=np.int64
            )
            migrated = self.network.record_batch(
                MessageKind.WALKER_MIGRATE, walker_sources, walker_targets
            )
            np.add.at(self._node_msgs, walker_sources, 1)
            np.add.at(self._node_msgs, walker_targets, 1)
            self.stats.messages_sent += migrated
            self.health.stats.restored_walkers += int(walker_sources.size)
        self._owner_lookup[moved_vertices] = node

    def _ensure_owner_lookup(self) -> None:
        """Materialise the owner overlay from the static partition."""
        if self._owner_lookup is None:
            self._owner_lookup = self.partition.owners(
                np.arange(self.graph.num_vertices, dtype=np.int64)
            ).astype(np.int64)

    # ------------------------------------------------------------------
    def _distributed_round(self, walker_ids: np.ndarray) -> np.ndarray:
        """One trial per walker with explicit query-phase messaging.

        Returns the moved mask aligned with ``walker_ids``.
        """
        graph, program, walkers = self.graph, self.program, self.walkers
        counters = self.stats.counters
        count = walker_ids.size
        vertices = walkers.current[walker_ids]
        walker_nodes = self._owners(vertices)
        upper = self.upper[vertices]
        lower = self.lower[vertices]
        main_area = self.tables.totals[vertices] * upper

        # --- Step 1: candidates and preliminary screening -------------
        counters.trials += count
        np.add.at(self._node_trials, walker_nodes, 1)

        appendix_area = None
        outlier_edges = outlier_masses = None
        declared = program.batch_outliers(graph, walkers, walker_ids)
        if declared is not None:
            outlier_edges, outlier_bounds, outlier_widths, outlier_masses = declared
            appendix_area = np.where(
                outlier_edges >= 0,
                outlier_widths * np.maximum(outlier_bounds - upper, 0.0),
                0.0,
            )

        accepted = np.zeros(count, dtype=bool)
        edges = np.full(count, -1, dtype=np.int64)

        if appendix_area is None:
            main_lanes = np.arange(count)
            appendix_lanes = np.zeros(0, dtype=np.int64)
        else:
            region = self._rng.random(count) * (main_area + appendix_area)
            in_main = region < main_area
            main_lanes = np.flatnonzero(in_main)
            appendix_lanes = np.flatnonzero(~in_main)

        # Appendix darts: the outlier (return) edge is stored with the
        # walker's current vertex, so its Pd is resolved locally.
        if appendix_lanes.size:
            counters.appendix_trials += appendix_lanes.size
            target_edges = outlier_edges[appendix_lanes]
            dynamic = program.batch_dynamic_comp(
                graph, walkers, walker_ids[appendix_lanes], target_edges
            )
            counters.pd_evaluations += appendix_lanes.size
            np.add.at(self._node_pd, walker_nodes[appendix_lanes], 1)
            chopped = outlier_masses[appendix_lanes] * np.maximum(
                dynamic - upper[appendix_lanes], 0.0
            )
            passed = (
                self._rng.random(appendix_lanes.size)
                * appendix_area[appendix_lanes]
                < chopped
            )
            accepted[appendix_lanes[passed]] = True
            edges[appendix_lanes[passed]] = target_edges[passed]

        # Main darts: candidate + pre-acceptance screening.
        pd_lanes = np.zeros(0, dtype=np.int64)
        if main_lanes.size:
            candidates = self.tables.sample_batch(vertices[main_lanes], self._rng)
            darts = self._rng.random(main_lanes.size) * upper[main_lanes]
            pre = darts <= lower[main_lanes]
            counters.pre_accepts += int(pre.sum())
            accepted[main_lanes[pre]] = True
            edges[main_lanes[pre]] = candidates[pre]
            need = np.flatnonzero(~pre)
            pd_lanes = main_lanes[need]
            pd_candidates = candidates[need]
            pd_darts = darts[need]

        if pd_lanes.size:
            # --- Steps 2-4: the two-round state query exchange --------
            answers = np.zeros(pd_lanes.size, dtype=np.float64)
            answered = np.zeros(pd_lanes.size, dtype=bool)
            if program.order == 2:
                targets, payloads = program.batch_state_queries(
                    graph, walkers, walker_ids[pd_lanes], pd_candidates
                )
                query_lanes = np.flatnonzero(targets >= 0)
                if query_lanes.size:
                    owners = self._owners(targets[query_lanes])
                    senders = walker_nodes[pd_lanes[query_lanes]]
                    self.network.record_batch(
                        MessageKind.STATE_QUERY, senders, owners
                    )
                    self.network.record_batch(
                        MessageKind.QUERY_RESPONSE, owners, senders
                    )
                    # Each query costs its sender and its answerer one
                    # message each way; intra-node deliveries pass
                    # through the same queues (the engines use one
                    # messaging stack), so they are charged equally —
                    # which also keeps single-node runs comparable for
                    # the Figure 7 normalization.
                    np.add.at(self._node_msgs, senders, 2)
                    np.add.at(self._node_msgs, owners, 2)
                    self.stats.messages_sent += 2 * int((senders != owners).sum())
                    answers[query_lanes] = program.batch_answer_queries(
                        graph, targets[query_lanes], payloads[query_lanes]
                    )
                    answered[query_lanes] = True

            # --- Step 5: decide sampling outcome -----------------------
            dynamic = program.batch_dynamic_with_answers(
                graph,
                walkers,
                walker_ids[pd_lanes],
                pd_candidates,
                answers,
                answered,
            )
            counters.pd_evaluations += pd_lanes.size
            if self.validate_bounds:
                from repro.core.kernels import _validate_envelope

                _validate_envelope(
                    graph,
                    dynamic,
                    upper[pd_lanes],
                    pd_candidates,
                    outlier_edges[pd_lanes] if outlier_edges is not None else None,
                )
            np.add.at(self._node_pd, walker_nodes[pd_lanes], 1)
            passed = pd_darts <= dynamic
            accepted[pd_lanes[passed]] = True
            edges[pd_lanes[passed]] = pd_candidates[passed]

        counters.accepts += int(accepted.sum())
        # The shared Move/Update tail: migration-recording moves via
        # the hook overrides, streak advance, zero-mass guard.
        return self._commit_round(walker_ids, accepted, edges)

    def _distributed_multi_round(self, walker_ids: np.ndarray) -> np.ndarray:
        """Fused multi-trial round for step-mode programs.

        First-order dynamic programs resolve Pd locally — there is no
        query exchange to pace — so the per-node compute runs the same
        fused kernel as the local engine and only walker migrations hit
        the network.  Per-node trial and Pd accounting uses the
        kernel's per-walker consumption, so the cost model charges
        exactly the work a sequential execution would have done.
        """
        outcome = batch_multi_trial_round(
            self.graph,
            self.tables,
            self.program,
            self.walkers,
            walker_ids,
            self.upper,
            self.lower,
            self._rng,
            self.stats.counters,
            num_trials=adaptive_trial_count(self.stats.counters),
            validate_bounds=self.validate_bounds,
            scratch=self._scratch,
        )
        self._account_lane_work(
            self.walkers.current[walker_ids],
            trials=outcome.trials_used,
            pd=outcome.pd_evaluations,
        )
        return self._commit_round(
            walker_ids, outcome.accepted, outcome.edges, outcome.trials_used
        )
