"""Deterministic fault injection and reliable delivery for the cluster
simulator.

The healthy-cluster simulator counts exactly the messages the
distributed protocol sends; this module makes those messages *fallible*
and layers the protocol that real deployments need on top:

* :class:`FaultPlan` — a seeded, declarative description of what goes
  wrong: node crashes pinned to supersteps, and per-message-kind rates
  at which the interconnect drops, duplicates, or delays packets.
* :class:`FaultPlane` — the runtime that applies a plan inside
  :class:`~repro.cluster.network.Network`.  Every remote message batch
  is pushed through a sequence-numbered, acknowledged delivery
  simulation with superstep-bounded timeouts and capped
  exponential-backoff retransmission
  (:class:`~repro.cluster.scheduler.RetryPolicy`); the receiver
  discards duplicate sequence numbers, so walker migration stays
  exactly-once no matter what the network does.

Fault randomness comes from its own stream (derived from the plan
seed), never from the engine's walk RNG — so a faulty run samples the
*same walk* as a fault-free run and differs only in physical-layer
counters and simulated time.  The delivery simulation is conservative
by construction; per message kind:

* ``accepts == logical``                 (exactly-once delivery)
* ``transmissions == logical + retransmissions``
* ``arrivals == transmissions - drops + duplicates``
* ``dedups == arrivals - accepts``

which is how retransmissions and dedup discards reconcile exactly with
the injected drop/duplicate/delay counts (tests/test_faults.py asserts
all four).

Model simplifications, documented once: acknowledgements are reliable
and instant (only data packets fault); a *delay* lands the packet after
the sender's timeout, so it costs one spurious retransmission plus one
receiver-side dedup; intra-node deliveries bypass the interconnect and
cannot fault.
"""

from __future__ import annotations

import pickle
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.network import MessageKind
from repro.cluster.scheduler import RetryPolicy
from repro.errors import ClusterError, MessageTimeoutError
from repro.sampling.rng import derive_rng

__all__ = [
    "MessageFaults",
    "NodeCrash",
    "FaultPlan",
    "DeliveryCounters",
    "DeliveryStats",
    "FaultPlane",
    "random_fault_plan",
]


@dataclass(frozen=True)
class MessageFaults:
    """Per-transmission fault probabilities for one message kind.

    The three fates are mutually exclusive per transmission: with
    probability ``drop`` the packet vanishes, with ``delay`` it arrives
    after the sender's timeout (forcing a spurious retransmission),
    with ``duplicate`` the interconnect delivers two copies, and
    otherwise it arrives cleanly.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ClusterError(f"{name} rate must be in [0, 1]")
        if self.drop + self.duplicate + self.delay > 1.0:
            raise ClusterError("fault rates must sum to at most 1")

    @property
    def active(self) -> bool:
        return self.drop > 0 or self.duplicate > 0 or self.delay > 0


@dataclass(frozen=True)
class NodeCrash:
    """One injected node failure.

    ``superstep`` indexes the global execution timeline (replayed
    supersteps included — a fault is an external event and does not
    rewind with the engine's state).  With ``restart=True`` the node
    comes back immediately and its shard is restored from the last
    checkpoint; with ``restart=False`` the node stays dead and the
    engine either degrades (re-partitioning its vertices across
    survivors) or aborts, depending on its recovery mode.
    """

    superstep: int
    node: int
    restart: bool = True

    def __post_init__(self) -> None:
        if self.superstep < 0:
            raise ClusterError("crash superstep must be non-negative")
        if self.node < 0:
            raise ClusterError("crash node must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible description of everything that fails.

    ``default_faults`` applies to every message kind unless overridden
    in ``per_kind``.  The same plan and seed always injects the same
    faults — chaos tests pin plans the way walk tests pin walk seeds.
    """

    seed: int = 0
    crashes: tuple[NodeCrash, ...] = ()
    default_faults: MessageFaults = field(default_factory=MessageFaults)
    per_kind: Mapping[MessageKind, MessageFaults] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "per_kind", dict(self.per_kind))

    def faults_for(self, kind: MessageKind) -> MessageFaults:
        return self.per_kind.get(kind, self.default_faults)

    @property
    def has_crashes(self) -> bool:
        return bool(self.crashes)

    @property
    def has_message_faults(self) -> bool:
        return any(self.faults_for(kind).active for kind in MessageKind)


_COUNTER_FIELDS = (
    "logical",
    "transmissions",
    "retransmissions",
    "drops",
    "duplicates",
    "delays",
    "arrivals",
    "accepts",
    "dedups",
)


@dataclass
class DeliveryCounters:
    """Physical-layer accounting for one message kind."""

    logical: int = 0
    transmissions: int = 0
    retransmissions: int = 0
    drops: int = 0
    duplicates: int = 0
    delays: int = 0
    arrivals: int = 0
    accepts: int = 0
    dedups: int = 0

    def check_conservation(self) -> None:
        """Raise if the delivery invariants are violated (test hook)."""
        if self.accepts != self.logical:
            raise ClusterError("delivery is not exactly-once")
        if self.transmissions != self.logical + self.retransmissions:
            raise ClusterError("transmission accounting broken")
        if self.arrivals != self.transmissions - self.drops + self.duplicates:
            raise ClusterError("arrival accounting broken")
        if self.dedups != self.arrivals - self.accepts:
            raise ClusterError("dedup accounting broken")


class DeliveryStats:
    """Per-kind delivery counters plus cluster-wide totals."""

    def __init__(self) -> None:
        self.per_kind: dict[MessageKind, DeliveryCounters] = {
            kind: DeliveryCounters() for kind in MessageKind
        }

    def of(self, kind: MessageKind) -> DeliveryCounters:
        return self.per_kind[kind]

    def _total(self, name: str) -> int:
        return sum(getattr(c, name) for c in self.per_kind.values())

    @property
    def retransmissions(self) -> int:
        return self._total("retransmissions")

    @property
    def dedups(self) -> int:
        return self._total("dedups")

    @property
    def drops(self) -> int:
        return self._total("drops")

    @property
    def duplicates(self) -> int:
        return self._total("duplicates")

    @property
    def delays(self) -> int:
        return self._total("delays")

    @property
    def accepts(self) -> int:
        return self._total("accepts")

    @property
    def logical(self) -> int:
        return self._total("logical")

    def check_conservation(self) -> None:
        for counters in self.per_kind.values():
            counters.check_conservation()

    # -- serialisation (checkpointing) ---------------------------------
    def to_array(self) -> np.ndarray:
        return np.asarray(
            [
                [getattr(self.per_kind[kind], name) for name in _COUNTER_FIELDS]
                for kind in MessageKind
            ],
            dtype=np.int64,
        )

    def load_array(self, array: np.ndarray) -> None:
        for row, kind in zip(array, MessageKind):
            for value, name in zip(row, _COUNTER_FIELDS):
                setattr(self.per_kind[kind], name, int(value))


class FaultPlane:
    """Runtime that injects a :class:`FaultPlan` into a network.

    Attach via ``Network(num_nodes, fault_plane=plane)``; the network
    routes every remote batch through :meth:`transmit`.  The plane
    accumulates lifetime :class:`DeliveryStats` plus per-superstep
    overheads (extra per-node message handling and retry-chain latency)
    that the engine drains into its cost model at each BSP barrier —
    robustness has a measurable price.
    """

    def __init__(
        self,
        plan: FaultPlan,
        num_nodes: int,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if num_nodes <= 0:
            raise ClusterError("a cluster needs at least one node")
        self.plan = plan
        self.num_nodes = num_nodes
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.stats = DeliveryStats()
        self._rng = derive_rng(plan.seed, 0xFA117)
        self._triggered: set[int] = set()
        self._superstep_overhead = np.zeros(num_nodes, dtype=np.int64)
        self._superstep_retry_depth = 0

    # -- crash schedule ------------------------------------------------
    def crashes_at(self, superstep: int) -> list[NodeCrash]:
        """Untriggered crashes scheduled for this global superstep.

        Each crash fires exactly once: recovery replays *state*, not
        external events.
        """
        due = []
        for index, crash in enumerate(self.plan.crashes):
            if index not in self._triggered and crash.superstep == superstep:
                self._triggered.add(index)
                due.append(crash)
        return due

    # -- message faults ------------------------------------------------
    def transmit(
        self, kind: MessageKind, sources: np.ndarray, destinations: np.ndarray
    ) -> None:
        """Push one batch of remote messages through faulty delivery.

        Simulates acknowledged, sequence-numbered delivery in retry
        rounds until every message is accepted exactly once.  Raises
        :class:`~repro.errors.MessageTimeoutError` when a message would
        exceed the retry policy's attempt budget.
        """
        counters = self.stats.of(kind)
        counters.logical += sources.size
        faults = self.plan.faults_for(kind)
        if sources.size == 0 or not faults.active:
            # Clean network: one transmission, one arrival, one accept.
            counters.transmissions += sources.size
            counters.arrivals += sources.size
            counters.accepts += sources.size
            return

        src = sources
        dst = destinations
        delivered = np.zeros(src.size, dtype=bool)
        bound = faults.drop + faults.delay
        dup_bound = bound + faults.duplicate
        attempt = 1
        while src.size:
            count = src.size
            counters.transmissions += count
            if attempt > 1:
                counters.retransmissions += count
                # Extra sender-side handling for every retransmission.
                np.add.at(self._superstep_overhead, src, 1)
            draws = self._rng.random(count)
            drop = draws < faults.drop
            delay = (~drop) & (draws < bound)
            dup = (~drop) & (~delay) & (draws < dup_bound)
            arrive = ~drop

            counters.drops += int(np.count_nonzero(drop))
            counters.delays += int(np.count_nonzero(delay))
            counters.duplicates += int(np.count_nonzero(dup))
            accepted = arrive & ~delivered
            accepted_count = int(np.count_nonzero(accepted))
            arrivals = int(np.count_nonzero(arrive)) + int(np.count_nonzero(dup))
            counters.arrivals += arrivals
            counters.accepts += accepted_count
            counters.dedups += arrivals - accepted_count
            # Extra receiver-side handling for every discarded arrival
            # (duplicate copies, and late/spurious deliveries of
            # already-accepted sequence numbers).
            discard_per_lane = dup.astype(np.int64) + (arrive & delivered)
            np.add.at(self._superstep_overhead, dst, discard_per_lane)

            # Timed-out senders retransmit: dropped packets of
            # undelivered messages, and delayed packets (the arrival
            # lands after the timeout, so the retransmission is already
            # in flight).  A sender holding an acknowledgement stops.
            retrans = (drop | delay) & ~delivered
            if not retrans.any():
                break
            if attempt >= self.retry_policy.max_attempts:
                raise MessageTimeoutError(
                    f"{kind.name} message undelivered after "
                    f"{attempt} attempts (capped retransmission budget)"
                )
            delivered = (delivered | arrive)[retrans]
            src = src[retrans]
            dst = dst[retrans]
            attempt += 1
            self._superstep_retry_depth = max(
                self._superstep_retry_depth, attempt - 1
            )

    # -- per-superstep accounting --------------------------------------
    def drain_superstep(self) -> tuple[np.ndarray, float]:
        """(per-node extra messages, retry-latency units) accumulated
        since the last barrier; resets the accumulators.

        Retry chains of one superstep run concurrently, so the latency
        charge is the backoff sum of the *deepest* chain.
        """
        overhead = self._superstep_overhead.copy()
        self._superstep_overhead[:] = 0
        units = sum(
            self.retry_policy.backoff_units(retry)
            for retry in range(1, self._superstep_retry_depth + 1)
        )
        self._superstep_retry_depth = 0
        return overhead, float(units)

    # -- serialisation (disk checkpoints) ------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Physical-layer state for on-disk checkpoints.

        Retry queues are empty at every BSP barrier (delivery resolves
        within the superstep's communication phase), so the in-flight
        state reduces to the fault RNG stream, the already-triggered
        crash set, and the lifetime counters.
        """
        return {
            "fault_rng_state": np.frombuffer(
                pickle.dumps(self._rng.bit_generator.state), dtype=np.uint8
            ),
            "fault_triggered": np.asarray(sorted(self._triggered), dtype=np.int64),
            "fault_counters": self.stats.to_array(),
        }

    def load_state(self, state: Mapping[str, np.ndarray]) -> None:
        self._rng.bit_generator.state = pickle.loads(
            np.asarray(state["fault_rng_state"], dtype=np.uint8).tobytes()
        )
        self._triggered = set(int(i) for i in state["fault_triggered"])
        self.stats.load_array(np.asarray(state["fault_counters"]))


def random_fault_plan(
    seed: int,
    num_nodes: int,
    max_crash_superstep: int = 12,
    max_crashes: int = 2,
    max_drop: float = 0.15,
    max_duplicate: float = 0.08,
    max_delay: float = 0.08,
) -> FaultPlan:
    """Draw a reproducible random plan — the chaos-test generator.

    Rates are sampled independently per message kind; up to
    ``max_crashes`` restart-style crashes land on random nodes at
    random supersteps in ``[1, max_crash_superstep]``.
    """
    rng = derive_rng(seed, 0xC4A05)
    per_kind = {
        kind: MessageFaults(
            drop=float(rng.uniform(0.0, max_drop)),
            duplicate=float(rng.uniform(0.0, max_duplicate)),
            delay=float(rng.uniform(0.0, max_delay)),
        )
        for kind in MessageKind
    }
    crashes = tuple(
        NodeCrash(
            superstep=int(rng.integers(1, max_crash_superstep + 1)),
            node=int(rng.integers(0, num_nodes)),
        )
        for _ in range(int(rng.integers(0, max_crashes + 1)))
    )
    return FaultPlan(seed=seed, crashes=crashes, per_kind=per_kind)
