"""Deterministic fault injection and reliable delivery for the cluster
simulator.

The healthy-cluster simulator counts exactly the messages the
distributed protocol sends; this module makes those messages *fallible*
and layers the protocol that real deployments need on top:

* :class:`FaultPlan` — a seeded, declarative description of what goes
  wrong: node crashes pinned to supersteps, and per-message-kind rates
  at which the interconnect drops, duplicates, or delays packets.
* :class:`FaultPlane` — the runtime that applies a plan inside
  :class:`~repro.cluster.network.Network`.  Every remote message batch
  is pushed through a sequence-numbered, acknowledged delivery
  simulation with superstep-bounded timeouts and capped
  exponential-backoff retransmission
  (:class:`~repro.cluster.scheduler.RetryPolicy`); the receiver
  discards duplicate sequence numbers, so walker migration stays
  exactly-once no matter what the network does.

Fault randomness comes from its own stream (derived from the plan
seed), never from the engine's walk RNG — so a faulty run samples the
*same walk* as a fault-free run and differs only in physical-layer
counters and simulated time.  The delivery simulation is conservative
by construction; per message kind:

* ``accepts == logical``                 (exactly-once delivery)
* ``transmissions == logical + retransmissions``
* ``arrivals == transmissions - drops + duplicates``
* ``dedups == arrivals - accepts``

which is how retransmissions and dedup discards reconcile exactly with
the injected drop/duplicate/delay counts (tests/test_faults.py asserts
all four).

Beyond fail-stop crashes and message faults, the plan also describes
*degraded* hardware — the failure mode BSP execution is most exposed
to, because every superstep waits for the slowest node:

* :class:`NodeSlowdown` — a per-node multiplicative slowdown over a
  superstep window, optionally ramping up gradually (the insidious
  straggler that no threshold catches early);
* :class:`FlakyLink` — one node pair whose interconnect runs elevated
  drop/delay rates and a stretched round-trip time.

Delivery runs on **adaptive per-link retransmission timeouts**
(:class:`~repro.cluster.network.LinkTimers`): each directed link keeps
a Jacobson/Karels (srtt, rttvar) estimate of its delivery latency, and
a *delay* fault provokes a spurious retransmission only while the
link's RTO is still below the late packet's landing time — once the
timer adapts, late packets cost pure latency instead of duplicate
traffic.  Retry waits grow exponentially per attempt with
deterministic per-(link, attempt, superstep) jitter.

Model simplifications, documented once: acknowledgements are reliable
and instant (only data packets fault); a *delay* lands the packet at
``DELAY_LATENCY_MULTIPLIER`` times the link's current latency;
intra-node deliveries bypass the interconnect and cannot fault.
"""

from __future__ import annotations

import pickle
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.network import LinkTimers, MessageKind
from repro.cluster.scheduler import RetryPolicy
from repro.errors import ClusterError, MessageTimeoutError
from repro.sampling.rng import derive_rng

__all__ = [
    "MessageFaults",
    "NodeCrash",
    "NodeSlowdown",
    "FlakyLink",
    "FaultPlan",
    "DeliveryCounters",
    "DeliveryStats",
    "FaultPlane",
    "random_fault_plan",
    "random_degraded_plan",
    "DELAY_LATENCY_MULTIPLIER",
]

# A delayed packet lands this many link-latencies after it was sent;
# the sender retransmits spuriously iff its adaptive RTO is shorter.
DELAY_LATENCY_MULTIPLIER = 4.0


@dataclass(frozen=True)
class MessageFaults:
    """Per-transmission fault probabilities for one message kind.

    The three fates are mutually exclusive per transmission: with
    probability ``drop`` the packet vanishes, with ``delay`` it arrives
    after the sender's timeout (forcing a spurious retransmission),
    with ``duplicate`` the interconnect delivers two copies, and
    otherwise it arrives cleanly.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ClusterError(f"{name} rate must be in [0, 1]")
        if self.drop + self.duplicate + self.delay > 1.0:
            raise ClusterError("fault rates must sum to at most 1")

    @property
    def active(self) -> bool:
        return self.drop > 0 or self.duplicate > 0 or self.delay > 0


@dataclass(frozen=True)
class NodeCrash:
    """One injected node failure.

    ``superstep`` indexes the global execution timeline (replayed
    supersteps included — a fault is an external event and does not
    rewind with the engine's state).  With ``restart=True`` the node
    comes back immediately and its shard is restored from the last
    checkpoint; with ``restart=False`` the node stays dead and the
    engine either degrades (re-partitioning its vertices across
    survivors) or aborts, depending on its recovery mode.
    """

    superstep: int
    node: int
    restart: bool = True

    def __post_init__(self) -> None:
        if self.superstep < 0:
            raise ClusterError("crash superstep must be non-negative")
        if self.node < 0:
            raise ClusterError("crash node must be non-negative")


@dataclass(frozen=True)
class NodeSlowdown:
    """One degraded (but alive) node.

    Compute and the node's link latencies run ``factor`` times slower
    over a superstep window.  ``ramp_supersteps > 0`` models the
    insidious straggler: the factor climbs linearly from 1.0 at
    ``start_superstep`` to the full ``factor`` over that many
    supersteps, so no fixed threshold catches it early.
    ``end_superstep`` (exclusive, ``None`` = forever) lets the node
    recover mid-run.
    """

    node: int
    factor: float = 4.0
    start_superstep: int = 0
    ramp_supersteps: int = 0
    end_superstep: int | None = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ClusterError("slowdown node must be non-negative")
        if self.factor < 1.0:
            raise ClusterError("slowdown factor must be >= 1")
        if self.start_superstep < 0 or self.ramp_supersteps < 0:
            raise ClusterError("slowdown schedule must be non-negative")
        if (
            self.end_superstep is not None
            and self.end_superstep <= self.start_superstep
        ):
            raise ClusterError("slowdown must end after it starts")

    def factor_at(self, superstep: int) -> float:
        """Effective slowdown multiplier at one global superstep."""
        if superstep < self.start_superstep:
            return 1.0
        if self.end_superstep is not None and superstep >= self.end_superstep:
            return 1.0
        if self.ramp_supersteps <= 0:
            return self.factor
        progress = min(
            1.0, (superstep - self.start_superstep) / self.ramp_supersteps
        )
        return 1.0 + (self.factor - 1.0) * progress


@dataclass(frozen=True)
class FlakyLink:
    """One degraded node pair: elevated per-message fault rates and a
    stretched round-trip time on the interconnect between ``a`` and
    ``b`` (both directions when ``symmetric``).

    Link rates combine with the plan's per-kind rates by taking the
    per-fate maximum on the affected lanes (rescaled proportionally if
    the combined fates would exceed probability 1).
    """

    a: int
    b: int
    faults: MessageFaults = field(
        default_factory=lambda: MessageFaults(drop=0.2, delay=0.2)
    )
    rtt_factor: float = 4.0
    symmetric: bool = True

    def __post_init__(self) -> None:
        if self.a < 0 or self.b < 0:
            raise ClusterError("flaky-link endpoints must be non-negative")
        if self.a == self.b:
            raise ClusterError("a flaky link needs two distinct nodes")
        if self.rtt_factor < 1.0:
            raise ClusterError("rtt_factor must be >= 1")

    def lanes(self) -> tuple[tuple[int, int], ...]:
        """Directed (source, destination) lanes this link degrades."""
        if self.symmetric:
            return ((self.a, self.b), (self.b, self.a))
        return ((self.a, self.b),)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible description of everything that fails.

    ``default_faults`` applies to every message kind unless overridden
    in ``per_kind``; ``slowdowns`` and ``flaky_links`` describe degraded
    hardware.  The same plan and seed always injects the same faults —
    chaos tests pin plans the way walk tests pin walk seeds.
    """

    seed: int = 0
    crashes: tuple[NodeCrash, ...] = ()
    default_faults: MessageFaults = field(default_factory=MessageFaults)
    per_kind: Mapping[MessageKind, MessageFaults] = field(default_factory=dict)
    slowdowns: tuple[NodeSlowdown, ...] = ()
    flaky_links: tuple[FlakyLink, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "per_kind", dict(self.per_kind))
        object.__setattr__(self, "slowdowns", tuple(self.slowdowns))
        object.__setattr__(self, "flaky_links", tuple(self.flaky_links))

    def faults_for(self, kind: MessageKind) -> MessageFaults:
        return self.per_kind.get(kind, self.default_faults)

    @property
    def has_crashes(self) -> bool:
        return bool(self.crashes)

    @property
    def has_message_faults(self) -> bool:
        return any(self.faults_for(kind).active for kind in MessageKind)

    @property
    def has_slowdowns(self) -> bool:
        return bool(self.slowdowns)

    @property
    def has_flaky_links(self) -> bool:
        return bool(self.flaky_links)

    @property
    def has_degradations(self) -> bool:
        """True when the plan degrades nodes or links (the straggler
        plane: health monitoring, speculation, and rebalancing key off
        this)."""
        return bool(self.slowdowns) or bool(self.flaky_links)

    def slowdown_factors(self, superstep: int, num_nodes: int) -> np.ndarray:
        """Per-node slowdown multipliers (>= 1.0) at one superstep."""
        factors = np.ones(num_nodes, dtype=np.float64)
        for slowdown in self.slowdowns:
            if slowdown.node < num_nodes:
                factors[slowdown.node] = max(
                    factors[slowdown.node], slowdown.factor_at(superstep)
                )
        return factors


_COUNTER_FIELDS = (
    "logical",
    "transmissions",
    "retransmissions",
    "drops",
    "duplicates",
    "delays",
    "arrivals",
    "accepts",
    "dedups",
)


@dataclass
class DeliveryCounters:
    """Physical-layer accounting for one message kind."""

    logical: int = 0
    transmissions: int = 0
    retransmissions: int = 0
    drops: int = 0
    duplicates: int = 0
    delays: int = 0
    arrivals: int = 0
    accepts: int = 0
    dedups: int = 0

    def check_conservation(self) -> None:
        """Raise if the delivery invariants are violated (test hook)."""
        if self.accepts != self.logical:
            raise ClusterError("delivery is not exactly-once")
        if self.transmissions != self.logical + self.retransmissions:
            raise ClusterError("transmission accounting broken")
        if self.arrivals != self.transmissions - self.drops + self.duplicates:
            raise ClusterError("arrival accounting broken")
        if self.dedups != self.arrivals - self.accepts:
            raise ClusterError("dedup accounting broken")


class DeliveryStats:
    """Per-kind delivery counters plus cluster-wide totals."""

    def __init__(self) -> None:
        self.per_kind: dict[MessageKind, DeliveryCounters] = {
            kind: DeliveryCounters() for kind in MessageKind
        }

    def of(self, kind: MessageKind) -> DeliveryCounters:
        return self.per_kind[kind]

    def _total(self, name: str) -> int:
        return sum(getattr(c, name) for c in self.per_kind.values())

    @property
    def retransmissions(self) -> int:
        return self._total("retransmissions")

    @property
    def dedups(self) -> int:
        return self._total("dedups")

    @property
    def drops(self) -> int:
        return self._total("drops")

    @property
    def duplicates(self) -> int:
        return self._total("duplicates")

    @property
    def delays(self) -> int:
        return self._total("delays")

    @property
    def accepts(self) -> int:
        return self._total("accepts")

    @property
    def logical(self) -> int:
        return self._total("logical")

    def check_conservation(self) -> None:
        for counters in self.per_kind.values():
            counters.check_conservation()

    # -- serialisation (checkpointing) ---------------------------------
    def to_array(self) -> np.ndarray:
        return np.asarray(
            [
                [getattr(self.per_kind[kind], name) for name in _COUNTER_FIELDS]
                for kind in MessageKind
            ],
            dtype=np.int64,
        )

    def load_array(self, array: np.ndarray) -> None:
        for row, kind in zip(array, MessageKind):
            for value, name in zip(row, _COUNTER_FIELDS):
                setattr(self.per_kind[kind], name, int(value))


class FaultPlane:
    """Runtime that injects a :class:`FaultPlan` into a network.

    Attach via ``Network(num_nodes, fault_plane=plane)``; the network
    routes every remote batch through :meth:`transmit`.  The plane
    accumulates lifetime :class:`DeliveryStats` plus per-superstep
    overheads (extra per-node message handling and retry-chain latency)
    that the engine drains into its cost model at each BSP barrier —
    robustness has a measurable price.
    """

    def __init__(
        self,
        plan: FaultPlan,
        num_nodes: int,
        retry_policy: RetryPolicy | None = None,
        timers: LinkTimers | None = None,
    ) -> None:
        if num_nodes <= 0:
            raise ClusterError("a cluster needs at least one node")
        for slowdown in plan.slowdowns:
            if slowdown.node >= num_nodes:
                raise ClusterError(
                    f"slowdown node {slowdown.node} outside cluster of "
                    f"{num_nodes} nodes"
                )
        for link in plan.flaky_links:
            if max(link.a, link.b) >= num_nodes:
                raise ClusterError(
                    f"flaky link ({link.a}, {link.b}) outside cluster of "
                    f"{num_nodes} nodes"
                )
        self.plan = plan
        self.num_nodes = num_nodes
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.timers = timers if timers is not None else LinkTimers(num_nodes)
        self.stats = DeliveryStats()
        self._rng = derive_rng(plan.seed, 0xFA117)
        self._triggered: set[int] = set()
        self._superstep_overhead = np.zeros(num_nodes, dtype=np.int64)
        self._superstep_latency_units = 0.0
        self._superstep = 0
        self._factors = plan.slowdown_factors(0, num_nodes)
        self._rate_cache: dict[MessageKind, tuple] = {}
        self._rtt_factor = np.ones((num_nodes, num_nodes), dtype=np.float64)
        for link in plan.flaky_links:
            for a, b in link.lanes():
                self._rtt_factor[a, b] = max(
                    self._rtt_factor[a, b], link.rtt_factor
                )

    # -- simulated-time context ----------------------------------------
    def begin_superstep(self, superstep: int) -> None:
        """Advance the plane's simulated-time context.

        Pins the global superstep (the retransmission-jitter salt) and
        refreshes the per-node slowdown factors that stretch link
        latencies this superstep.
        """
        self._superstep = superstep
        self._factors = self.plan.slowdown_factors(superstep, self.num_nodes)

    def node_factors(self) -> np.ndarray:
        """Per-node slowdown multipliers for the current superstep."""
        return self._factors

    def _rates(self, kind: MessageKind) -> tuple:
        """(drop, delay, duplicate) N x N rate matrices for one kind,
        with flaky-link elevations folded in lane-wise."""
        cached = self._rate_cache.get(kind)
        if cached is not None:
            return cached
        base = self.plan.faults_for(kind)
        n = self.num_nodes
        drop = np.full((n, n), base.drop, dtype=np.float64)
        delay = np.full((n, n), base.delay, dtype=np.float64)
        dup = np.full((n, n), base.duplicate, dtype=np.float64)
        for link in self.plan.flaky_links:
            for a, b in link.lanes():
                drop[a, b] = max(drop[a, b], link.faults.drop)
                delay[a, b] = max(delay[a, b], link.faults.delay)
                dup[a, b] = max(dup[a, b], link.faults.duplicate)
        total = drop + delay + dup
        over = total > 1.0
        if over.any():
            scale = np.ones_like(total)
            np.divide(1.0, total, out=scale, where=over)
            drop *= scale
            delay *= scale
            dup *= scale
        cached = (drop, delay, dup, bool(total.max() > 0.0))
        self._rate_cache[kind] = cached
        return cached

    # -- crash schedule ------------------------------------------------
    def crashes_at(self, superstep: int) -> list[NodeCrash]:
        """Untriggered crashes scheduled for this global superstep.

        Each crash fires exactly once: recovery replays *state*, not
        external events.
        """
        due = []
        for index, crash in enumerate(self.plan.crashes):
            if index not in self._triggered and crash.superstep == superstep:
                self._triggered.add(index)
                due.append(crash)
        return due

    # -- message faults ------------------------------------------------
    def transmit(
        self, kind: MessageKind, sources: np.ndarray, destinations: np.ndarray
    ) -> None:
        """Push one batch of remote messages through faulty delivery.

        Simulates acknowledged, sequence-numbered delivery in retry
        rounds until every message is accepted exactly once.  Raises
        :class:`~repro.errors.MessageTimeoutError` when a message would
        exceed the retry policy's attempt budget.
        """
        counters = self.stats.of(kind)
        counters.logical += sources.size
        drop_m, delay_m, dup_m, any_faults = self._rates(kind)
        if sources.size == 0 or not any_faults:
            # Clean network: one transmission, one arrival, one accept.
            counters.transmissions += sources.size
            counters.arrivals += sources.size
            counters.accepts += sources.size
            return

        src = sources
        dst = destinations
        drop_p = drop_m[src, dst]
        delay_p = delay_m[src, dst]
        dup_p = dup_m[src, dst]
        # Current link latency (timeout units): the base RTT stretched
        # by the endpoint slowdown factors and the flaky-link RTT
        # multiplier.  A delayed packet lands at DELAY_LATENCY_MULTIPLIER
        # times that.
        lat = (
            self.timers.base_rtt
            * 0.5
            * (self._factors[src] + self._factors[dst])
            * self._rtt_factor[src, dst]
        )
        delay_at = DELAY_LATENCY_MULTIPLIER * lat
        delivered = np.zeros(src.size, dtype=bool)
        excess = np.zeros(src.size, dtype=np.float64)
        attempt = 1
        while src.size:
            count = src.size
            counters.transmissions += count
            if attempt > 1:
                counters.retransmissions += count
                # Extra sender-side handling for every retransmission.
                np.add.at(self._superstep_overhead, src, 1)
            bound = drop_p + delay_p
            draws = self._rng.random(count)
            drop = draws < drop_p
            delay = (~drop) & (draws < bound)
            dup = (~drop) & (~delay) & (draws < bound + dup_p)
            arrive = ~drop

            counters.drops += int(np.count_nonzero(drop))
            counters.delays += int(np.count_nonzero(delay))
            counters.duplicates += int(np.count_nonzero(dup))
            accepted = arrive & ~delivered
            accepted_count = int(np.count_nonzero(accepted))
            arrivals = int(np.count_nonzero(arrive)) + int(np.count_nonzero(dup))
            counters.arrivals += arrivals
            counters.accepts += accepted_count
            counters.dedups += arrivals - accepted_count
            # Extra receiver-side handling for every discarded arrival
            # (duplicate copies, and late/spurious deliveries of
            # already-accepted sequence numbers).
            discard_per_lane = dup.astype(np.int64) + (arrive & delivered)
            np.add.at(self._superstep_overhead, dst, discard_per_lane)

            # The sender armed its timeout at send time from the link's
            # adaptive RTO.  A delayed packet provokes a retransmission
            # only while it lands *after* that timeout fires; once the
            # timer has learned the link's latency, the delay is
            # absorbed as pure latency.  Dropped packets always time
            # out.  A sender holding an acknowledgement stops.
            rto = self.timers.rto(src, dst)
            spurious = delay & (delay_at > rto)
            if accepted_count:
                samples = np.where(delay, delay_at, lat)[accepted]
                self.timers.observe(src[accepted], dst[accepted], samples)
            absorbed = delay & ~spurious & ~delivered
            if absorbed.any():
                excess[absorbed] += delay_at[absorbed] - lat[absorbed]
            self._superstep_latency_units = max(
                self._superstep_latency_units, float(excess.max())
            )

            retrans = (drop | spurious) & ~delivered
            if not retrans.any():
                break
            if attempt >= self.retry_policy.max_attempts:
                raise MessageTimeoutError(
                    f"{kind.name} message undelivered after "
                    f"{attempt} attempts (capped retransmission budget)"
                )
            wait = self.timers.backoff_wait(
                src[retrans], dst[retrans], attempt, salt=self._superstep
            )
            excess = excess[retrans] + wait
            delivered = (delivered | arrive)[retrans]
            src = src[retrans]
            dst = dst[retrans]
            drop_p = drop_p[retrans]
            delay_p = delay_p[retrans]
            dup_p = dup_p[retrans]
            lat = lat[retrans]
            delay_at = delay_at[retrans]
            attempt += 1

    def record_speculative_copies(self, kind: MessageKind, count: int) -> None:
        """Reconcile speculative re-execution through the dedup layer.

        A speculative copy re-sends messages whose originals were (or
        will be) accepted; the receiver's sequence numbers discard the
        losing copy.  Each copy is one extra physical transmission that
        arrives and is deduped, so every conservation law gains
        ``count`` on both sides and stays balanced.
        """
        if count < 0:
            raise ClusterError("speculative copy count must be non-negative")
        counters = self.stats.of(kind)
        counters.transmissions += count
        counters.retransmissions += count
        counters.arrivals += count
        counters.dedups += count

    # -- per-superstep accounting --------------------------------------
    def drain_superstep(self) -> tuple[np.ndarray, float]:
        """(per-node extra messages, retry-latency units) accumulated
        since the last barrier; resets the accumulators.

        Retry chains of one superstep run concurrently, so the latency
        charge is the *worst single lane's* accumulated excess —
        adaptive backoff waits plus absorbed delay latency.
        """
        overhead = self._superstep_overhead.copy()
        self._superstep_overhead[:] = 0
        units = self._superstep_latency_units
        self._superstep_latency_units = 0.0
        return overhead, float(units)

    # -- serialisation (disk checkpoints) ------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Physical-layer state for on-disk checkpoints.

        Retry queues are empty at every BSP barrier (delivery resolves
        within the superstep's communication phase), so the in-flight
        state reduces to the fault RNG stream, the already-triggered
        crash set, the lifetime counters, and the adaptive link-timer
        estimates.
        """
        state = {
            "fault_rng_state": np.frombuffer(
                pickle.dumps(self._rng.bit_generator.state), dtype=np.uint8
            ),
            "fault_triggered": np.asarray(sorted(self._triggered), dtype=np.int64),
            "fault_counters": self.stats.to_array(),
        }
        state.update(self.timers.state_arrays())
        return state

    def load_state(self, state: Mapping[str, np.ndarray]) -> None:
        self._rng.bit_generator.state = pickle.loads(
            np.asarray(state["fault_rng_state"], dtype=np.uint8).tobytes()
        )
        self._triggered = set(int(i) for i in state["fault_triggered"])
        self.stats.load_array(np.asarray(state["fault_counters"]))
        if "fault_link_srtt" in state:
            # Snapshots written before adaptive timers existed restore
            # with freshly-initialised estimators instead of failing.
            self.timers.load_arrays(state)


def random_fault_plan(
    seed: int,
    num_nodes: int,
    max_crash_superstep: int = 12,
    max_crashes: int = 2,
    max_drop: float = 0.15,
    max_duplicate: float = 0.08,
    max_delay: float = 0.08,
) -> FaultPlan:
    """Draw a reproducible random plan — the chaos-test generator.

    Rates are sampled independently per message kind; up to
    ``max_crashes`` restart-style crashes land on random nodes at
    random supersteps in ``[1, max_crash_superstep]``.
    """
    rng = derive_rng(seed, 0xC4A05)
    per_kind = {
        kind: MessageFaults(
            drop=float(rng.uniform(0.0, max_drop)),
            duplicate=float(rng.uniform(0.0, max_duplicate)),
            delay=float(rng.uniform(0.0, max_delay)),
        )
        for kind in MessageKind
    }
    crashes = tuple(
        NodeCrash(
            superstep=int(rng.integers(1, max_crash_superstep + 1)),
            node=int(rng.integers(0, num_nodes)),
        )
        for _ in range(int(rng.integers(0, max_crashes + 1)))
    )
    return FaultPlan(seed=seed, crashes=crashes, per_kind=per_kind)


def random_degraded_plan(
    seed: int,
    num_nodes: int,
    max_slowdowns: int = 2,
    max_factor: float = 6.0,
    max_start: int = 4,
    max_ramp: int = 6,
    max_flaky_links: int = 1,
    max_link_drop: float = 0.3,
    max_link_delay: float = 0.3,
    max_rtt_factor: float = 6.0,
    base: FaultPlan | None = None,
) -> FaultPlan:
    """Draw a reproducible degraded-hardware plan — the straggler-chaos
    generator.

    At least one node slows down (possibly ramping), and up to
    ``max_flaky_links`` node pairs get elevated drop/delay rates with a
    stretched RTT.  Passing ``base`` (e.g. a :func:`random_fault_plan`)
    layers the degradations on top of its crashes and message faults,
    giving combined crash+drop+duplicate+delay+slowdown schedules.
    """
    if num_nodes < 2:
        raise ClusterError("degraded plans need at least two nodes")
    rng = derive_rng(seed, 0xD3C4A)
    count = int(rng.integers(1, max_slowdowns + 1))
    nodes = rng.choice(num_nodes, size=min(count, num_nodes - 1), replace=False)
    slowdowns = tuple(
        NodeSlowdown(
            node=int(node),
            factor=float(rng.uniform(2.0, max_factor)),
            start_superstep=int(rng.integers(0, max_start + 1)),
            ramp_supersteps=int(rng.integers(0, max_ramp + 1)),
        )
        for node in nodes
    )
    flaky_links = []
    for _ in range(int(rng.integers(0, max_flaky_links + 1))):
        a, b = (int(n) for n in rng.choice(num_nodes, size=2, replace=False))
        flaky_links.append(
            FlakyLink(
                a=a,
                b=b,
                faults=MessageFaults(
                    drop=float(rng.uniform(0.05, max_link_drop)),
                    delay=float(rng.uniform(0.05, max_link_delay)),
                ),
                rtt_factor=float(rng.uniform(2.0, max_rtt_factor)),
            )
        )
    template = base if base is not None else FaultPlan(seed=seed)
    return FaultPlan(
        seed=template.seed,
        crashes=template.crashes,
        default_faults=template.default_faults,
        per_kind=template.per_kind,
        slowdowns=tuple(template.slowdowns) + slowdowns,
        flaky_links=tuple(template.flaky_links) + tuple(flaky_links),
    )
