"""Heartbeat-based node-health monitoring for the cluster simulator.

In a BSP engine the heartbeat is free: every barrier, each alive node
reports its superstep completion time.  A straggler does not *miss*
beats — its beats arrive stretched — so the monitor scores beat
*timing* rather than beat absence, phi-accrual style (Hayashibara et
al.), adapted to simulated time:

* keep a per-node EWMA of superstep times;
* center them with the cluster's robust statistics — median and MAD
  over alive nodes (robust, so one straggler cannot drag the reference
  up and hide itself);
* the suspicion level of a node is
  ``phi = -log10( P(T >= t_node) )`` under ``N(median, sigma^2)`` with
  ``sigma = max(1.4826 * MAD, 0.1 * median)`` — phi = 2 means a
  healthy node would run this slow with probability 1e-2.

Suspicion enters when phi crosses ``phi_suspect`` and clears only
after ``clear_streak`` consecutive supersteps below ``phi_clear``
(hysteresis, so a node sitting on the boundary does not flap).  The
first ``warmup_supersteps`` observations never suspect: the EWMA needs
a baseline before deviations mean anything.

Everything here is a pure function of simulated times — no wall clock,
no RNG — so health decisions replay bit-identically per seed.  With
fewer than three alive nodes the median *is* (pulled toward) the
straggler and contrast vanishes; detection needs >= 3 nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ClusterError

__all__ = ["HealthPolicy", "HealthStats", "HealthMonitor"]

_SQRT2 = math.sqrt(2.0)
# P(T >= t) underflows erfc around z ~ 38; clamp so phi stays finite.
_MIN_TAIL = 1e-300


def _phi_from_z(z: float) -> float:
    """Suspicion level for one z-score: -log10 of the normal tail."""
    tail = 0.5 * math.erfc(z / _SQRT2)
    return -math.log10(max(tail, _MIN_TAIL))


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds and smoothing of the failure detector.

    Parameters
    ----------
    warmup_supersteps:
        observations before any node can become suspected.
    ewma_gain:
        smoothing of per-node superstep times (higher reacts faster,
        flaps easier).
    phi_suspect:
        suspicion level that marks a node suspected (2.0 = a healthy
        node would run this slow once in 100 supersteps).
    phi_clear:
        level the node must fall below to start clearing.
    clear_streak:
        consecutive below-``phi_clear`` supersteps required to clear.
    """

    warmup_supersteps: int = 3
    ewma_gain: float = 0.3
    phi_suspect: float = 2.0
    phi_clear: float = 0.5
    clear_streak: int = 2

    def __post_init__(self) -> None:
        if self.warmup_supersteps < 1:
            raise ClusterError("warmup must be at least one superstep")
        if not 0.0 < self.ewma_gain <= 1.0:
            raise ClusterError("ewma_gain must be in (0, 1]")
        if self.phi_clear >= self.phi_suspect:
            raise ClusterError("phi_clear must be below phi_suspect")
        if self.phi_clear < 0.0:
            raise ClusterError("phi_clear must be non-negative")
        if self.clear_streak < 1:
            raise ClusterError("clear_streak must be at least 1")


@dataclass
class HealthStats:
    """Lifetime counters of the straggler-tolerance machinery."""

    suspect_events: int = 0
    clear_events: int = 0
    suspected_supersteps: int = 0
    phi_max: float = 0.0
    speculations: int = 0
    speculation_wins: int = 0
    speculative_copies: int = 0
    rebalances: int = 0
    migrated_walkers: int = 0
    restored_walkers: int = 0

    def report_lines(self) -> list[str]:
        lines = [
            f"health: {self.suspect_events} suspicions "
            f"({self.suspected_supersteps} node-supersteps suspected, "
            f"{self.clear_events} cleared, peak phi {self.phi_max:.2f})"
        ]
        if self.speculations:
            lines.append(
                f"speculation: {self.speculation_wins}/{self.speculations} "
                f"wins, {self.speculative_copies} copies deduped"
            )
        if self.rebalances:
            lines.append(
                f"rebalance: {self.migrated_walkers} walkers moved in "
                f"{self.rebalances} migrations, "
                f"{self.restored_walkers} moved back"
            )
        return lines

    # -- serialisation (disk checkpoints) ------------------------------
    _FIELDS = (
        "suspect_events",
        "clear_events",
        "suspected_supersteps",
        "speculations",
        "speculation_wins",
        "speculative_copies",
        "rebalances",
        "migrated_walkers",
        "restored_walkers",
    )

    def to_array(self) -> np.ndarray:
        counts = [getattr(self, name) for name in self._FIELDS]
        return np.asarray(counts + [self.phi_max], dtype=np.float64)

    def load_array(self, array: np.ndarray) -> None:
        for value, name in zip(array, self._FIELDS):
            setattr(self, name, int(value))
        self.phi_max = float(array[len(self._FIELDS)])


class HealthMonitor:
    """Phi-accrual-style failure detector over BSP superstep times."""

    def __init__(self, num_nodes: int, policy: HealthPolicy | None = None) -> None:
        if num_nodes <= 0:
            raise ClusterError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self.policy = policy if policy is not None else HealthPolicy()
        self.ewma = np.zeros(num_nodes, dtype=np.float64)
        self.phi = np.zeros(num_nodes, dtype=np.float64)
        self.suspected = np.zeros(num_nodes, dtype=bool)
        self.stats = HealthStats()
        self._clear_streak = np.zeros(num_nodes, dtype=np.int64)
        self._observed = 0
        self._newly_cleared: list[int] = []

    @property
    def any_suspected(self) -> bool:
        return bool(self.suspected.any())

    def newly_cleared(self) -> list[int]:
        """Nodes whose suspicion cleared at the last observation."""
        return list(self._newly_cleared)

    def median_time(self, alive: np.ndarray) -> float:
        """Robust cluster-center superstep time over alive nodes."""
        reference = self.ewma[np.asarray(alive, dtype=bool)]
        return float(np.median(reference)) if reference.size else 0.0

    def observe(self, node_times: np.ndarray, alive: np.ndarray) -> None:
        """Fold one superstep's per-node completion times (the BSP
        heartbeat) into the detector and update suspicion states."""
        self._newly_cleared = []
        alive = np.asarray(alive, dtype=bool)
        times = np.asarray(node_times, dtype=np.float64)
        index = np.flatnonzero(alive)
        if index.size == 0:
            return
        if self._observed == 0:
            self.ewma[index] = times[index]
        else:
            self.ewma[index] += self.policy.ewma_gain * (
                times[index] - self.ewma[index]
            )
        self._observed += 1

        reference = self.ewma[index]
        median = float(np.median(reference))
        mad = float(np.median(np.abs(reference - median)))
        sigma = max(1.4826 * mad, 0.1 * median, 1e-12)
        self.phi[:] = 0.0
        for node in index:
            z = (self.ewma[node] - median) / sigma
            self.phi[node] = _phi_from_z(z)
        self.stats.phi_max = max(self.stats.phi_max, float(self.phi.max()))
        if self._observed <= self.policy.warmup_supersteps:
            return

        for node in index:
            if not self.suspected[node]:
                if self.phi[node] >= self.policy.phi_suspect:
                    self.suspected[node] = True
                    self._clear_streak[node] = 0
                    self.stats.suspect_events += 1
            elif self.phi[node] <= self.policy.phi_clear:
                self._clear_streak[node] += 1
                if self._clear_streak[node] >= self.policy.clear_streak:
                    self.suspected[node] = False
                    self._newly_cleared.append(int(node))
                    self.stats.clear_events += 1
            else:
                self._clear_streak[node] = 0
        self.stats.suspected_supersteps += int(np.count_nonzero(self.suspected))

    # -- serialisation (disk checkpoints) ------------------------------
    def state_arrays(self) -> dict[str, np.ndarray]:
        return {
            "health_ewma": self.ewma.copy(),
            "health_phi": self.phi.copy(),
            "health_suspected": self.suspected.copy(),
            "health_clear_streak": self._clear_streak.copy(),
            "health_observed": np.asarray([self._observed], dtype=np.int64),
            "health_stats": self.stats.to_array(),
        }

    def load_arrays(self, state) -> None:
        self.ewma[:] = np.asarray(state["health_ewma"], dtype=np.float64)
        self.phi[:] = np.asarray(state["health_phi"], dtype=np.float64)
        self.suspected[:] = np.asarray(state["health_suspected"], dtype=bool)
        self._clear_streak[:] = np.asarray(
            state["health_clear_streak"], dtype=np.int64
        )
        self._observed = int(np.asarray(state["health_observed"])[0])
        self.stats.load_array(np.asarray(state["health_stats"]))
        self._newly_cleared = []
