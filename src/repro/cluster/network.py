"""Simulated interconnect: message and byte accounting.

The simulator does not move real bytes; it counts, per (source node,
destination node) pair and per message kind, exactly the messages the
distributed protocol would send.  These counts feed the cost model
(time) and the benchmarks (communication-volume comparisons against
the Gemini baseline's mirror broadcasts).

Intra-node "messages" (source == destination) are counted separately
and cost nothing: co-located walkers read vertex state directly.

A :class:`~repro.cluster.faults.FaultPlane` can be attached; every
remote batch is then additionally pushed through the faulty
reliable-delivery simulation, so injected drops/duplicates/delays are
counted in the same place the logical messages are.  The matrices here
always stay *logical* (one count per protocol message, faults or not)
— physical-layer retransmissions and dedups live on the plane's
delivery stats, keeping communication-volume benchmarks comparable
across healthy and chaotic runs.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.errors import ClusterError

__all__ = ["MessageKind", "Network"]


class MessageKind(Enum):
    """Protocol message types with their simulated payload sizes."""

    # walker id + candidate edge + query target + payload vertex
    STATE_QUERY = 28
    # walker id + boolean/float answer
    QUERY_RESPONSE = 12
    # walker id + current + previous + step counter (+ custom state)
    WALKER_MIGRATE = 32

    @property
    def bytes_per_message(self) -> int:
        return self.value


class Network:
    """Per-node-pair message counters for one simulated cluster."""

    def __init__(self, num_nodes: int, fault_plane=None) -> None:
        if num_nodes <= 0:
            raise ClusterError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self.fault_plane = fault_plane
        self._messages = {
            kind: np.zeros((num_nodes, num_nodes), dtype=np.int64)
            for kind in MessageKind
        }
        self._local = {kind: 0 for kind in MessageKind}
        self._scattered = {
            kind: np.zeros(num_nodes, dtype=np.int64) for kind in MessageKind
        }

    def record_batch(
        self, kind: MessageKind, sources: np.ndarray, destinations: np.ndarray
    ) -> int:
        """Record messages for aligned source/destination node arrays;
        returns how many actually crossed the network."""
        sources = np.asarray(sources, dtype=np.int64)
        destinations = np.asarray(destinations, dtype=np.int64)
        if sources.shape != destinations.shape:
            raise ClusterError("sources and destinations must align")
        if sources.size and (
            min(sources.min(), destinations.min()) < 0
            or max(sources.max(), destinations.max()) >= self.num_nodes
        ):
            raise ClusterError(
                f"message endpoints must be node ids in [0, {self.num_nodes})"
            )
        remote = sources != destinations
        if remote.any():
            flat = sources[remote] * self.num_nodes + destinations[remote]
            counts = np.bincount(flat, minlength=self.num_nodes * self.num_nodes)
            self._messages[kind] += counts.reshape(
                self.num_nodes, self.num_nodes
            )
            if self.fault_plane is not None:
                self.fault_plane.transmit(
                    kind, sources[remote], destinations[remote]
                )
        self._local[kind] += int(np.count_nonzero(~remote))
        return int(np.count_nonzero(remote))

    def record_scatter(
        self, kind: MessageKind, sources: np.ndarray, counts: np.ndarray
    ) -> int:
        """Record ``counts[i]`` broadcast/scatter messages sent by node
        ``sources[i]`` to unspecified peers (e.g. Gemini's mirror
        broadcasts).  Tracked per sender only — :meth:`matrix` excludes
        them, but totals and :meth:`sent_by_node` include them."""
        sources = np.asarray(sources, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if counts.size and counts.min() < 0:
            raise ClusterError("scatter counts must be non-negative")
        np.add.at(self._scattered[kind], sources, counts)
        return int(counts.sum())

    def matrix(self, kind: MessageKind | None = None) -> np.ndarray:
        """(num_nodes x num_nodes) remote-message counts."""
        if kind is not None:
            return self._messages[kind].copy()
        total = np.zeros((self.num_nodes, self.num_nodes), dtype=np.int64)
        for counts in self._messages.values():
            total += counts
        return total

    def total_messages(self, kind: MessageKind | None = None) -> int:
        scattered = (
            int(self._scattered[kind].sum())
            if kind is not None
            else sum(int(array.sum()) for array in self._scattered.values())
        )
        return int(self.matrix(kind).sum()) + scattered

    def local_deliveries(self, kind: MessageKind | None = None) -> int:
        """Same-node deliveries (free in the cost model)."""
        if kind is not None:
            return self._local[kind]
        return sum(self._local.values())

    def total_bytes(self) -> int:
        return sum(
            (int(counts.sum()) + int(self._scattered[kind].sum()))
            * kind.bytes_per_message
            for kind, counts in self._messages.items()
        )

    def sent_by_node(self) -> np.ndarray:
        """Remote messages sent per node (row sums + scatters)."""
        total = self.matrix().sum(axis=1)
        for array in self._scattered.values():
            total = total + array
        return total

    def received_by_node(self) -> np.ndarray:
        """Remote messages received per node (column sums)."""
        return self.matrix().sum(axis=0)

    # ------------------------------------------------------------------
    # Logical-state capture for checkpoint rollback.  The fault plane's
    # physical-layer counters are deliberately NOT part of this state:
    # replayed supersteps resend messages for real, while injected
    # faults are external events that never rewind.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Copy of the logical message counters."""
        return {
            "messages": {k: v.copy() for k, v in self._messages.items()},
            "local": dict(self._local),
            "scattered": {k: v.copy() for k, v in self._scattered.items()},
        }

    def restore_state(self, state: dict) -> None:
        """Reset the logical counters to a :meth:`snapshot_state`."""
        for kind in MessageKind:
            self._messages[kind][:] = state["messages"][kind]
            self._local[kind] = state["local"][kind]
            self._scattered[kind][:] = state["scattered"][kind]
