"""Simulated interconnect: message and byte accounting.

The simulator does not move real bytes; it counts, per (source node,
destination node) pair and per message kind, exactly the messages the
distributed protocol would send.  These counts feed the cost model
(time) and the benchmarks (communication-volume comparisons against
the Gemini baseline's mirror broadcasts).

Intra-node "messages" (source == destination) are counted separately
and cost nothing: co-located walkers read vertex state directly.

A :class:`~repro.cluster.faults.FaultPlane` can be attached; every
remote batch is then additionally pushed through the faulty
reliable-delivery simulation, so injected drops/duplicates/delays are
counted in the same place the logical messages are.  The matrices here
always stay *logical* (one count per protocol message, faults or not)
— physical-layer retransmissions and dedups live on the plane's
delivery stats, keeping communication-volume benchmarks comparable
across healthy and chaotic runs.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.errors import ClusterError

__all__ = ["MessageKind", "Network", "LinkTimers"]


class MessageKind(Enum):
    """Protocol message types with their simulated payload sizes."""

    # walker id + candidate edge + query target + payload vertex
    STATE_QUERY = 28
    # walker id + boolean/float answer
    QUERY_RESPONSE = 12
    # walker id + current + previous + step counter (+ custom state)
    WALKER_MIGRATE = 32

    @property
    def bytes_per_message(self) -> int:
        return self.value


def _hash_unit(values: np.ndarray) -> np.ndarray:
    """Deterministic uniform-ish values in [0, 1) from integer keys.

    A splitmix64-style avalanche keeps retransmission jitter fully
    reproducible (no RNG state is consumed or shared) while still
    decorrelating retry timers across links, attempts, and supersteps —
    the property that breaks retransmission synchronisation storms.
    """
    x = np.asarray(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
    return (x >> np.uint64(11)).astype(np.float64) / float(1 << 53)


class LinkTimers:
    """Adaptive per-link retransmission timers (Jacobson/Karels style).

    One (srtt, rttvar) estimator per *directed* link, fed by observed
    delivery latencies in simulated timeout units.  The retransmission
    timeout is the classic ``RTO = srtt + 4 * rttvar`` clamped to
    ``[min_rto, max_rto]``; retry attempt ``k`` waits
    ``min(RTO * 2**(k-1), backoff_cap)`` scaled by a deterministic
    jitter in ``[1, 1 + jitter]`` derived from (link, attempt,
    superstep) — exponential backoff with decorrelated timers, no
    shared RNG state.

    This replaces the fixed per-attempt backoff schedule the reliable
    delivery layer used previously: a link behind a straggler or a
    flaky interconnect *learns* its elevated latency, so late packets
    stop provoking spurious retransmissions once the estimator catches
    up, while clean links keep tight timeouts.
    """

    def __init__(
        self,
        num_nodes: int,
        base_rtt: float = 1.0,
        min_rto: float = 1.0,
        max_rto: float = 16.0,
        backoff_cap: float = 64.0,
        jitter: float = 0.25,
        gain: float = 0.125,
        var_gain: float = 0.25,
    ) -> None:
        if num_nodes <= 0:
            raise ClusterError("a cluster needs at least one node")
        if base_rtt <= 0 or min_rto <= 0:
            raise ClusterError("base_rtt and min_rto must be positive")
        if max_rto < min_rto:
            raise ClusterError("max_rto must be >= min_rto")
        if backoff_cap < max_rto:
            raise ClusterError("backoff_cap must be >= max_rto")
        if not 0.0 <= jitter <= 1.0:
            raise ClusterError("jitter must be in [0, 1]")
        self.num_nodes = num_nodes
        self.base_rtt = base_rtt
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.gain = gain
        self.var_gain = var_gain
        self.srtt = np.full((num_nodes, num_nodes), base_rtt, dtype=np.float64)
        self.rttvar = np.full(
            (num_nodes, num_nodes), base_rtt / 2.0, dtype=np.float64
        )
        self.samples = np.zeros((num_nodes, num_nodes), dtype=np.int64)

    # ------------------------------------------------------------------
    def observe(
        self,
        sources: np.ndarray,
        destinations: np.ndarray,
        latencies: np.ndarray,
    ) -> None:
        """Fold one batch of delivery-latency samples into the timers.

        Samples sharing a link within one batch are concurrent, not
        sequential round trips, so they collapse to one estimator step
        per link using the *slowest* sample — a retransmission timeout
        must cover the tail, and the reduction stays independent of
        lane order.
        """
        if sources.size == 0:
            return
        flat = sources * self.num_nodes + destinations
        links, inverse = np.unique(flat, return_inverse=True)
        counts = np.bincount(inverse)
        worst = np.full(links.size, -np.inf)
        np.maximum.at(worst, inverse, latencies)
        rows = links // self.num_nodes
        cols = links % self.num_nodes
        err = worst - self.srtt[rows, cols]
        self.srtt[rows, cols] += self.gain * err
        self.rttvar[rows, cols] += self.var_gain * (
            np.abs(err) - self.rttvar[rows, cols]
        )
        self.samples[rows, cols] += counts

    def rto(self, sources: np.ndarray, destinations: np.ndarray) -> np.ndarray:
        """Current retransmission timeout per (source, destination) lane."""
        raw = self.srtt[sources, destinations] + 4.0 * self.rttvar[
            sources, destinations
        ]
        return np.clip(raw, self.min_rto, self.max_rto)

    def backoff_wait(
        self,
        sources: np.ndarray,
        destinations: np.ndarray,
        attempt: int,
        salt: int,
    ) -> np.ndarray:
        """Wait (timeout units) before retransmission ``attempt``
        (1-based) on each lane: capped exponential growth of the lane's
        RTO, plus deterministic per-(link, attempt, salt) jitter."""
        if attempt < 1:
            raise ClusterError("attempt numbers are 1-based")
        base = np.minimum(
            self.rto(sources, destinations) * (2.0 ** (attempt - 1)),
            self.backoff_cap,
        )
        with np.errstate(over="ignore"):
            keys = (
                (sources * self.num_nodes + destinations).astype(np.uint64)
                * np.uint64(0x9E3779B97F4A7C15)
                + np.uint64(attempt * 0xD1B54A32D192ED03 % (1 << 64))
                + np.uint64(salt * 0x8CB92BA72F3D8DD7 % (1 << 64))
            )
        return base * (1.0 + self.jitter * _hash_unit(keys))

    # ------------------------------------------------------------------
    def state_arrays(self) -> dict[str, np.ndarray]:
        """Timer state for on-disk checkpoints."""
        return {
            "fault_link_srtt": self.srtt.copy(),
            "fault_link_rttvar": self.rttvar.copy(),
            "fault_link_samples": self.samples.copy(),
        }

    def load_arrays(self, state) -> None:
        self.srtt[:] = np.asarray(state["fault_link_srtt"], dtype=np.float64)
        self.rttvar[:] = np.asarray(state["fault_link_rttvar"], dtype=np.float64)
        self.samples[:] = np.asarray(state["fault_link_samples"], dtype=np.int64)


class Network:
    """Per-node-pair message counters for one simulated cluster."""

    def __init__(self, num_nodes: int, fault_plane=None) -> None:
        if num_nodes <= 0:
            raise ClusterError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self.fault_plane = fault_plane
        self._messages = {
            kind: np.zeros((num_nodes, num_nodes), dtype=np.int64)
            for kind in MessageKind
        }
        self._local = {kind: 0 for kind in MessageKind}
        self._scattered = {
            kind: np.zeros(num_nodes, dtype=np.int64) for kind in MessageKind
        }

    def record_batch(
        self, kind: MessageKind, sources: np.ndarray, destinations: np.ndarray
    ) -> int:
        """Record messages for aligned source/destination node arrays;
        returns how many actually crossed the network."""
        sources = np.asarray(sources, dtype=np.int64)
        destinations = np.asarray(destinations, dtype=np.int64)
        if sources.shape != destinations.shape:
            raise ClusterError("sources and destinations must align")
        if sources.size and (
            min(sources.min(), destinations.min()) < 0
            or max(sources.max(), destinations.max()) >= self.num_nodes
        ):
            raise ClusterError(
                f"message endpoints must be node ids in [0, {self.num_nodes})"
            )
        remote = sources != destinations
        if remote.any():
            flat = sources[remote] * self.num_nodes + destinations[remote]
            counts = np.bincount(flat, minlength=self.num_nodes * self.num_nodes)
            self._messages[kind] += counts.reshape(
                self.num_nodes, self.num_nodes
            )
            if self.fault_plane is not None:
                self.fault_plane.transmit(
                    kind, sources[remote], destinations[remote]
                )
        self._local[kind] += int(np.count_nonzero(~remote))
        return int(np.count_nonzero(remote))

    def record_scatter(
        self, kind: MessageKind, sources: np.ndarray, counts: np.ndarray
    ) -> int:
        """Record ``counts[i]`` broadcast/scatter messages sent by node
        ``sources[i]`` to unspecified peers (e.g. Gemini's mirror
        broadcasts).  Tracked per sender only — :meth:`matrix` excludes
        them, but totals and :meth:`sent_by_node` include them."""
        sources = np.asarray(sources, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if counts.size and counts.min() < 0:
            raise ClusterError("scatter counts must be non-negative")
        np.add.at(self._scattered[kind], sources, counts)
        return int(counts.sum())

    def matrix(self, kind: MessageKind | None = None) -> np.ndarray:
        """(num_nodes x num_nodes) remote-message counts."""
        if kind is not None:
            return self._messages[kind].copy()
        total = np.zeros((self.num_nodes, self.num_nodes), dtype=np.int64)
        for counts in self._messages.values():
            total += counts
        return total

    def total_messages(self, kind: MessageKind | None = None) -> int:
        scattered = (
            int(self._scattered[kind].sum())
            if kind is not None
            else sum(int(array.sum()) for array in self._scattered.values())
        )
        return int(self.matrix(kind).sum()) + scattered

    def local_deliveries(self, kind: MessageKind | None = None) -> int:
        """Same-node deliveries (free in the cost model)."""
        if kind is not None:
            return self._local[kind]
        return sum(self._local.values())

    def total_bytes(self) -> int:
        return sum(
            (int(counts.sum()) + int(self._scattered[kind].sum()))
            * kind.bytes_per_message
            for kind, counts in self._messages.items()
        )

    def totals_snapshot(self) -> tuple[int, int, int]:
        """``(remote_messages, bytes, local_deliveries)`` as one tuple —
        the observability layer diffs two snapshots to attribute
        message traffic to the superstep between them."""
        return (
            self.total_messages(),
            self.total_bytes(),
            self.local_deliveries(),
        )

    def per_kind_totals(self) -> dict[str, int]:
        """Remote-message count per :class:`MessageKind` name (for
        metric labels; deterministic key order)."""
        return {
            kind.name: self.total_messages(kind) for kind in MessageKind
        }

    def sent_by_node(self) -> np.ndarray:
        """Remote messages sent per node (row sums + scatters)."""
        total = self.matrix().sum(axis=1)
        for array in self._scattered.values():
            total = total + array
        return total

    def received_by_node(self) -> np.ndarray:
        """Remote messages received per node (column sums)."""
        return self.matrix().sum(axis=0)

    # ------------------------------------------------------------------
    # Logical-state capture for checkpoint rollback.  The fault plane's
    # physical-layer counters are deliberately NOT part of this state:
    # replayed supersteps resend messages for real, while injected
    # faults are external events that never rewind.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Copy of the logical message counters."""
        return {
            "messages": {k: v.copy() for k, v in self._messages.items()},
            "local": dict(self._local),
            "scattered": {k: v.copy() for k, v in self._scattered.items()},
        }

    def restore_state(self, state: dict) -> None:
        """Reset the logical counters to a :meth:`snapshot_state`."""
        for kind in MessageKind:
            self._messages[kind][:] = state["messages"][kind]
            self._local[kind] = state["local"][kind]
            self._scattered[kind][:] = state["scattered"][kind]
