"""Checkpoint-based crash recovery for the distributed engine.

KnightKing-style walkers are independent and cheaply restartable, which
makes coordinated checkpointing at BSP barriers the natural recovery
scheme: every K supersteps the engine captures its complete dynamic
state (walker shards, RNG stream, statistics, logical network
counters); when a simulated node crashes, the lost shard is restored
from the last checkpoint and the supersteps since then are replayed.

Because the walk RNG is part of the checkpoint and fault randomness
lives on a separate stream, a replay re-executes the *same* walk —
recovery is not just distribution-preserving but bit-identical, which
the chaos tests assert path-for-path.

Rollback restores logical state only.  Physical truths — wasted
superstep times, injected-fault counters, retransmission/dedup totals —
accumulate forward across rollbacks: a recovered run reports the same
walk as a healthy one, at a measurably higher simulated cost.

The optional graceful-degradation mode handles permanent node loss:
instead of aborting, the dead node's contiguous vertex range is
re-partitioned across the survivors (an owner-lookup overlay on the
original 1-D partition) and the walk continues on the smaller cluster.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.errors import NodeCrashError

__all__ = [
    "RecoveryStats",
    "ClusterCheckpoint",
    "capture_cluster_state",
    "restore_cluster_state",
    "reassign_dead_vertices",
]


@dataclass
class RecoveryStats:
    """Fault-tolerance accounting for one distributed execution."""

    crashes: int = 0
    restarts: int = 0
    checkpoints_taken: int = 0
    replayed_supersteps: int = 0
    degraded_nodes: list[int] = field(default_factory=list)
    recovery_seconds: float = 0.0


@dataclass
class ClusterCheckpoint:
    """One in-memory recovery point.

    ``iterations`` is the logical superstep count at capture time;
    ``state`` holds deep copies of every mutable structure the engine
    advances (the checkpoint must survive being restored twice —
    nothing in it may alias live engine state).
    """

    iterations: int
    state: dict


def capture_cluster_state(engine) -> ClusterCheckpoint:
    """Snapshot a :class:`DistributedWalkEngine`'s dynamic state."""
    walkers = engine.walkers
    state = {
        "current": walkers.current.copy(),
        "previous": walkers.previous.copy(),
        "steps": walkers.steps.copy(),
        "alive": walkers.alive.copy(),
        "history": None if walkers.history is None else walkers.history.copy(),
        "custom": {name: walkers.state(name).copy() for name in walkers._custom},
        "rejection_streak": engine._rejection_streak.copy(),
        "rng_state": copy.deepcopy(engine._rng.bit_generator.state),
        "stats": copy.deepcopy(engine.stats),
        "trials_per_node": engine.cluster.trials_per_node.copy(),
        "pd_evaluations_per_node": engine.cluster.pd_evaluations_per_node.copy(),
        "walker_supersteps_per_node": (
            engine.cluster.walker_supersteps_per_node.copy()
        ),
        "light_mode_node_supersteps": engine.cluster.light_mode_node_supersteps,
        "network": engine.network.snapshot_state(),
    }
    if engine._recorder is not None:
        recorder = engine._recorder
        state["recorder_walkers"] = list(recorder._move_walkers)
        state["recorder_vertices"] = list(recorder._move_vertices)
    return ClusterCheckpoint(iterations=engine.stats.iterations, state=state)


def restore_cluster_state(engine, checkpoint: ClusterCheckpoint) -> None:
    """Rewind the engine's logical state to ``checkpoint``, in place.

    Deliberately untouched: superstep times already paid (wasted work
    stays on the bill), the fault plane (external events never rewind),
    node liveness, and any degraded-mode owner overlay.
    """
    state = checkpoint.state
    walkers = engine.walkers
    walkers.current[:] = state["current"]
    walkers.previous[:] = state["previous"]
    walkers.steps[:] = state["steps"]
    walkers.alive[:] = state["alive"]
    if walkers.history is not None:
        walkers.history[:] = state["history"]
    for name, values in state["custom"].items():
        walkers.state(name)[:] = values
    engine._rejection_streak[:] = state["rejection_streak"]
    engine._rng.bit_generator.state = copy.deepcopy(state["rng_state"])
    engine.stats = copy.deepcopy(state["stats"])
    engine.cluster.trials_per_node[:] = state["trials_per_node"]
    engine.cluster.pd_evaluations_per_node[:] = state["pd_evaluations_per_node"]
    engine.cluster.walker_supersteps_per_node[:] = state[
        "walker_supersteps_per_node"
    ]
    engine.cluster.light_mode_node_supersteps = state["light_mode_node_supersteps"]
    engine.network.restore_state(state["network"])
    if engine._recorder is not None:
        recorder = engine._recorder
        recorder._move_walkers[:] = list(state["recorder_walkers"])
        recorder._move_vertices[:] = list(state["recorder_vertices"])


def reassign_dead_vertices(
    partition,
    owner_lookup: np.ndarray | None,
    dead_node: int,
    alive_nodes: np.ndarray,
    num_vertices: int,
) -> np.ndarray:
    """Graceful degradation: spread a dead node's vertices over the
    survivors.

    Returns a full ``|V|`` owner-lookup array overriding the base
    partition: the dead node's vertices are split into contiguous
    chunks dealt round-robin to the surviving nodes (preserving the
    1-D locality the cost model assumes).  Composes across repeated
    crashes — an existing overlay is the starting point.
    """
    survivors = np.flatnonzero(alive_nodes)
    if survivors.size == 0:
        raise NodeCrashError("no surviving node to take over the dead shard")
    if owner_lookup is None:
        owner_lookup = partition.owners(
            np.arange(num_vertices, dtype=np.int64)
        ).astype(np.int64)
    else:
        owner_lookup = owner_lookup.copy()
    orphaned = np.flatnonzero(owner_lookup == dead_node)
    if orphaned.size:
        chunks = np.array_split(orphaned, survivors.size)
        for survivor, chunk in zip(survivors, chunks):
            owner_lookup[chunk] = survivor
    return owner_lookup
