"""Per-node thread scheduling policy, including straggler light mode.

Paper section 6.2: each node runs as many computation threads as cores
(16 in the evaluation) plus two message-passing threads.  During the
long tail of a walk — very few active walkers, caused by PPR's
geometric termination or by second-order rejection stragglers — the
overhead of maintaining the full pool outweighs parallelism, so a node
switches to *light mode*: three threads total (one compute, two
communication) whenever its active walker count drops below 4000.

This module also holds :class:`RetryPolicy`, the timing half of the
reliable-delivery protocol (:mod:`repro.cluster.faults`): how long a
sender waits for an acknowledgement before retransmitting, how the
wait grows, and when it gives up.  Timeouts are *superstep-bounded*:
the unit of waiting is a fraction of the BSP communication phase, so a
retry chain lengthens the superstep it happens in rather than leaking
into the next one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ClusterError

__all__ = [
    "ThreadPolicy",
    "RetryPolicy",
    "LIGHT_MODE_THRESHOLD",
    "LIGHT_MODE_THREADS",
]

# "a KnightKing node switches to its light mode by retaining only three
# threads ... when its number of active walkers fall below a threshold,
# set at 4000 in our experiments" — paper section 6.2.
LIGHT_MODE_THRESHOLD = 4000
LIGHT_MODE_THREADS = 3


@dataclass(frozen=True)
class ThreadPolicy:
    """Chooses a node's thread count from its active walker count.

    Parameters
    ----------
    full_threads:
        pool size in normal operation: compute threads (cores) plus the
        two message threads — 18 for the paper's 16-core nodes.
    light_mode:
        whether the straggler optimization is enabled (the Figure 9
        ablation turns it off).
    threshold:
        active-walker count below which light mode engages.
    """

    full_threads: int = 18
    light_mode: bool = True
    threshold: int = LIGHT_MODE_THRESHOLD

    def __post_init__(self) -> None:
        if self.full_threads < LIGHT_MODE_THREADS:
            raise ClusterError(
                f"full_threads must be >= {LIGHT_MODE_THREADS}"
            )
        if self.threshold < 0:
            raise ClusterError("threshold must be non-negative")

    def threads_for(self, active_walkers: int) -> int:
        """Thread count a node uses this superstep."""
        if self.light_mode and active_walkers < self.threshold:
            return LIGHT_MODE_THREADS
        return self.full_threads


@dataclass(frozen=True)
class RetryPolicy:
    """Retransmission timing for the reliable-delivery layer.

    Parameters
    ----------
    max_attempts:
        total transmissions allowed per message (first send included).
        Exhausting the budget raises
        :class:`~repro.errors.MessageTimeoutError` — under any drop
        rate below 1 the default budget is effectively unreachable.
    backoff_base:
        wait before the first retransmission, in timeout units (one
        unit is priced by the cost model's ``backoff_unit_cost``).
    backoff_cap:
        ceiling on the exponentially growing wait, in timeout units.
    """

    max_attempts: int = 16
    backoff_base: float = 1.0
    backoff_cap: float = 8.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ClusterError("max_attempts must be at least 1")
        if self.backoff_base <= 0:
            raise ClusterError("backoff_base must be positive")
        if self.backoff_cap < self.backoff_base:
            raise ClusterError("backoff_cap must be >= backoff_base")

    def backoff_units(self, attempt: int) -> float:
        """Wait (in timeout units) before retransmission ``attempt``
        (1-based): capped exponential ``base * 2**(attempt-1)``."""
        if attempt < 1:
            raise ClusterError("attempt numbers are 1-based")
        return min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_cap)
