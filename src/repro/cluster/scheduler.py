"""Per-node thread scheduling policy, including straggler light mode.

Paper section 6.2: each node runs as many computation threads as cores
(16 in the evaluation) plus two message-passing threads.  During the
long tail of a walk — very few active walkers, caused by PPR's
geometric termination or by second-order rejection stragglers — the
overhead of maintaining the full pool outweighs parallelism, so a node
switches to *light mode*: three threads total (one compute, two
communication) whenever its active walker count drops below 4000.

This module also holds :class:`RetryPolicy`, the timing half of the
reliable-delivery protocol (:mod:`repro.cluster.faults`): how long a
sender waits for an acknowledgement before retransmitting, how the
wait grows, and when it gives up.  Timeouts are *superstep-bounded*:
the unit of waiting is a fraction of the BSP communication phase, so a
retry chain lengthens the superstep it happens in rather than leaking
into the next one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClusterError

__all__ = [
    "ThreadPolicy",
    "RetryPolicy",
    "StragglerPolicy",
    "WalkerRebalancer",
    "LIGHT_MODE_THRESHOLD",
    "LIGHT_MODE_THREADS",
]

# "a KnightKing node switches to its light mode by retaining only three
# threads ... when its number of active walkers fall below a threshold,
# set at 4000 in our experiments" — paper section 6.2.
LIGHT_MODE_THRESHOLD = 4000
LIGHT_MODE_THREADS = 3


@dataclass(frozen=True)
class ThreadPolicy:
    """Chooses a node's thread count from its active walker count.

    Parameters
    ----------
    full_threads:
        pool size in normal operation: compute threads (cores) plus the
        two message threads — 18 for the paper's 16-core nodes.
    light_mode:
        whether the straggler optimization is enabled (the Figure 9
        ablation turns it off).
    threshold:
        active-walker count below which light mode engages.
    """

    full_threads: int = 18
    light_mode: bool = True
    threshold: int = LIGHT_MODE_THRESHOLD

    def __post_init__(self) -> None:
        if self.full_threads < LIGHT_MODE_THREADS:
            raise ClusterError(
                f"full_threads must be >= {LIGHT_MODE_THREADS}"
            )
        if self.threshold < 0:
            raise ClusterError("threshold must be non-negative")

    def threads_for(self, active_walkers: int) -> int:
        """Thread count a node uses this superstep."""
        if self.light_mode and active_walkers < self.threshold:
            return LIGHT_MODE_THREADS
        return self.full_threads


@dataclass(frozen=True)
class RetryPolicy:
    """Retransmission timing for the reliable-delivery layer.

    Parameters
    ----------
    max_attempts:
        total transmissions allowed per message (first send included).
        Exhausting the budget raises
        :class:`~repro.errors.MessageTimeoutError` — under any drop
        rate below 1 the default budget is effectively unreachable.
    backoff_base:
        wait before the first retransmission, in timeout units (one
        unit is priced by the cost model's ``backoff_unit_cost``).
    backoff_cap:
        ceiling on the exponentially growing wait, in timeout units.
    """

    max_attempts: int = 16
    backoff_base: float = 1.0
    backoff_cap: float = 8.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ClusterError("max_attempts must be at least 1")
        if self.backoff_base <= 0:
            raise ClusterError("backoff_base must be positive")
        if self.backoff_cap < self.backoff_base:
            raise ClusterError("backoff_cap must be >= backoff_base")

    def backoff_units(self, attempt: int) -> float:
        """Wait (in timeout units) before retransmission ``attempt``
        (1-based): capped exponential ``base * 2**(attempt-1)``."""
        if attempt < 1:
            raise ClusterError("attempt numbers are 1-based")
        return min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_cap)


@dataclass(frozen=True)
class StragglerPolicy:
    """Knobs of the degraded-node tolerance layer.

    Parameters
    ----------
    speculate:
        re-execute a suspected node's superstep speculatively on the
        least-loaded healthy node; the barrier waits only for whichever
        copy finishes first, and the loser's walker migrations are
        discarded by the receiver's dedup layer.
    rebalance:
        migrate queued walkers off suspected nodes through the engine's
        owner-lookup overlay (and back once suspicion clears).
    rebalance_fraction:
        share of a suspect's queued walkers the rebalancer tries to
        move per migration.
    payback_horizon:
        supersteps over which the estimated per-superstep saving must
        exceed the one-off migration message cost — the cost-model gate
        that stops churn near the end of a walk.
    min_walkers:
        suspects hosting fewer queued walkers than this are left alone
        (too little load for migration to matter).
    """

    speculate: bool = True
    rebalance: bool = True
    rebalance_fraction: float = 0.5
    payback_horizon: int = 4
    min_walkers: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.rebalance_fraction <= 1.0:
            raise ClusterError("rebalance_fraction must be in (0, 1]")
        if self.payback_horizon < 1:
            raise ClusterError("payback_horizon must be at least 1")
        if self.min_walkers < 1:
            raise ClusterError("min_walkers must be at least 1")


class WalkerRebalancer:
    """Plans walker migrations off suspected nodes.

    The engine supplies where walkers currently live; the rebalancer
    decides *whether* moving pays (cost-model gate: saved straggler
    time over the payback horizon versus migration message cost) and
    *where* to (healthy nodes, least-loaded first).  Migration operates
    on whole vertices — the same owner-lookup overlay degraded-mode
    crash recovery uses — choosing the suspect's most walker-crowded
    vertices first so few re-homed vertices move many walkers.  All
    ordering is by deterministic keys (walker counts, EWMA times, node
    ids), never RNG.
    """

    def __init__(self, num_nodes: int, cost_model, policy: StragglerPolicy) -> None:
        if num_nodes <= 0:
            raise ClusterError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self.cost_model = cost_model
        self.policy = policy
        # vertices moved off each suspect, for restoration on clear
        self._moved: dict[int, list[np.ndarray]] = {}

    def plan(
        self,
        node: int,
        vertices: np.ndarray,
        owners: np.ndarray,
        ewma: np.ndarray,
        suspected: np.ndarray,
        alive: np.ndarray,
    ):
        """Migration plan for one suspect, or ``None`` when moving
        does not pay.

        Returns ``(moved_vertices, target_per_vertex, moved_walkers)``:
        the suspect's most-crowded vertices (covering about
        ``rebalance_fraction`` of its queued walkers) and the healthy
        node each should be re-homed to.
        """
        healthy = np.flatnonzero(alive & ~suspected)
        healthy = healthy[healthy != node]
        if healthy.size == 0:
            return None
        mask = owners == node
        total = int(np.count_nonzero(mask))
        if total < self.policy.min_walkers:
            return None
        target_moved = int(total * self.policy.rebalance_fraction)
        if target_moved == 0:
            return None

        verts, counts = np.unique(vertices[mask], return_counts=True)
        order = np.argsort(-counts, kind="stable")
        cumulative = np.cumsum(counts[order])
        cutoff = int(np.searchsorted(cumulative, target_moved)) + 1
        chosen = verts[order[:cutoff]]
        moved = int(cumulative[cutoff - 1])

        # Cost-model gate: the suspect's excess over the healthy median
        # scales with the share of its walkers we take away; that
        # saving, over the payback horizon, must beat the migration
        # messages it costs.
        healthy_median = float(np.median(ewma[healthy]))
        excess = max(float(ewma[node]) - healthy_median, 0.0)
        saving = excess * (moved / total)
        cost = moved * self.cost_model.message_cost
        if self.policy.payback_horizon * saving <= cost:
            return None

        # Round-robin the re-homed vertices across healthy nodes,
        # least-loaded (by EWMA time, then node id) first.
        ranked = healthy[np.lexsort((healthy, ewma[healthy]))]
        targets = ranked[np.arange(chosen.size) % ranked.size]
        return chosen, targets, moved

    def record(self, node: int, moved_vertices: np.ndarray) -> None:
        """Remember vertices moved off ``node`` for later restoration."""
        self._moved.setdefault(node, []).append(moved_vertices.copy())

    def take_restorable(self, node: int) -> np.ndarray:
        """Vertices to re-home back onto a no-longer-suspected node;
        clears the record."""
        chunks = self._moved.pop(node, [])
        if not chunks:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(chunks))

    # -- serialisation (disk checkpoints) ------------------------------
    def state_arrays(self) -> dict[str, np.ndarray]:
        nodes = sorted(self._moved)
        flat = [
            np.unique(np.concatenate(self._moved[node])) for node in nodes
        ]
        lengths = np.asarray([chunk.size for chunk in flat], dtype=np.int64)
        return {
            "rebalance_nodes": np.asarray(nodes, dtype=np.int64),
            "rebalance_lengths": lengths,
            "rebalance_vertices": (
                np.concatenate(flat).astype(np.int64)
                if flat
                else np.zeros(0, dtype=np.int64)
            ),
        }

    def load_arrays(self, state) -> None:
        self._moved = {}
        nodes = np.asarray(state["rebalance_nodes"], dtype=np.int64)
        lengths = np.asarray(state["rebalance_lengths"], dtype=np.int64)
        flat = np.asarray(state["rebalance_vertices"], dtype=np.int64)
        start = 0
        for node, length in zip(nodes, lengths):
            self._moved[int(node)] = [flat[start : start + int(length)]]
            start += int(length)
