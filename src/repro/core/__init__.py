"""Core walker-centric engine — the paper's primary contribution.

Exports the programming model (:class:`WalkerProgram`), configuration
(:class:`WalkConfig`), and the single-process engine
(:class:`WalkEngine`); the distributed engine lives in
:mod:`repro.cluster`.
"""

from repro.core.config import DEFAULT_WALK_LENGTH, WalkConfig
from repro.core.engine import WalkEngine, WalkResult
from repro.core.program import StateQuery, WalkerProgram
from repro.core.snapshot import restore_checkpoint, save_checkpoint
from repro.core.stats import TerminationBreakdown, WalkStats
from repro.core.trace import PathRecorder
from repro.core.walker import NO_VERTEX, WalkerSet, WalkerView

__all__ = [
    "WalkConfig",
    "DEFAULT_WALK_LENGTH",
    "WalkEngine",
    "WalkResult",
    "WalkerProgram",
    "StateQuery",
    "WalkStats",
    "TerminationBreakdown",
    "PathRecorder",
    "WalkerSet",
    "WalkerView",
    "NO_VERTEX",
    "save_checkpoint",
    "restore_checkpoint",
]
