"""Walk configuration: walker count, starts, termination, seeding.

This captures the paper's "initialization and termination" APIs
(section 5.2): users specify the number of walkers, optionally start
locations or a start distribution, and the extension component Pe via a
fixed walk length and/or a per-step termination probability.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph

__all__ = ["WalkConfig", "DEFAULT_WALK_LENGTH"]

# "a fixed walk length (80 used in our evaluation, a common setup
# recommended in prior work)" — paper section 2.2.
DEFAULT_WALK_LENGTH = 80


@dataclass(frozen=True)
class WalkConfig:
    """Configuration for one random walk execution.

    Attributes
    ----------
    num_walkers:
        how many walkers to launch; ``None`` means ``|V|`` (the paper's
        evaluation deploys ``|V|`` walkers on every test).
    walks_per_vertex:
        launch this many walkers *per vertex* instead (DeepWalk's gamma
        rounds; the paper: "the process may be repeated for multiple
        rounds").  Mutually exclusive with ``num_walkers``.
    max_steps:
        fixed walk length (Pe becomes 0 after this many steps);
        ``None`` disables the cap (then ``termination_probability``
        must be positive, or walks would never end).
    termination_probability:
        per-step probability of stopping, the PPR-style geometric
        termination.  0 disables it.
    start_vertices:
        explicit start vertex per walker.  ``None`` selects the paper's
        default placement: walker ``i`` starts at vertex ``i mod |V|``.
    start_distribution:
        per-vertex probability weights from which start vertices are
        sampled (the paper's "distribution of starting locations" API,
        section 5.2).  Mutually exclusive with ``start_vertices``.
    seed:
        master seed; all randomness (starts, sampling, termination
        coins) derives from it deterministically.
    record_paths:
        whether the engine keeps full walk sequences (needed by
        DeepWalk/node2vec corpus generation; off for pure benchmarks).
    stream_paths_to:
        write each walk sequence to this corpus file as soon as its
        walker terminates, instead of keeping sequences in memory —
        constant-memory output for huge runs.  Mutually exclusive with
        ``record_paths`` (the result's ``paths`` stays ``None``).
    static_sampler:
        ``"alias"`` (O(1) candidate draws, KnightKing's choice) or
        ``"its"`` (O(log d), kept for comparison experiments).
    engine_mode:
        ``"step"`` (default) runs the step-centric Gather/Move/Update
        staged hot loop; ``"walker"`` keeps the original
        walker-at-a-time batches as the semantic reference.  Under the
        default ``"fixed"`` sampler policy the two modes consume the
        RNG stream identically, so their walks are bit-identical
        (``repro sanitize --compare-engines`` checks exactly this).
        Programs without batch hooks (and ``force_scalar`` runs) fall
        back to walker mode regardless.
    sampler_policy:
        ``"fixed"`` (default) keeps the per-algorithm sampling
        strategy; ``"auto"`` lets the step engine pick rejection vs
        full-scan vs direct sampling (and the candidate generator) per
        vertex degree class at runtime from observed acceptance rates
        — same walk law, different (still deterministic) RNG stream.
        Requires ``engine_mode="step"``.
    checkpoint_every:
        recovery-checkpoint cadence K (supersteps) for the distributed
        engine's fault tolerance; ``None`` leaves the cadence to the
        engine (which defaults it only when a fault plan is active).
        The local engine ignores it — its checkpointing is the explicit
        :mod:`repro.core.snapshot` API.
    """

    num_walkers: int | None = None
    walks_per_vertex: int | None = None
    max_steps: int | None = DEFAULT_WALK_LENGTH
    termination_probability: float = 0.0
    start_vertices: np.ndarray | None = None
    start_distribution: np.ndarray | None = None
    seed: int = 0
    record_paths: bool = False
    stream_paths_to: str | None = None
    static_sampler: str = "alias"
    checkpoint_every: int | None = None
    engine_mode: str = "step"
    sampler_policy: str = "fixed"

    def __post_init__(self) -> None:
        if self.start_vertices is not None and self.start_distribution is not None:
            raise ConfigError(
                "start_vertices and start_distribution are mutually exclusive"
            )
        if self.record_paths and self.stream_paths_to is not None:
            raise ConfigError(
                "record_paths and stream_paths_to are mutually exclusive"
            )
        if self.num_walkers is not None and self.walks_per_vertex is not None:
            raise ConfigError(
                "num_walkers and walks_per_vertex are mutually exclusive"
            )
        if self.num_walkers is not None and self.num_walkers <= 0:
            raise ConfigError("num_walkers must be positive")
        if self.walks_per_vertex is not None and self.walks_per_vertex <= 0:
            raise ConfigError("walks_per_vertex must be positive")
        if self.max_steps is not None and self.max_steps < 0:
            raise ConfigError("max_steps must be non-negative")
        if not 0.0 <= self.termination_probability <= 1.0:
            raise ConfigError("termination_probability must be in [0, 1]")
        if self.max_steps is None and self.termination_probability == 0.0:
            raise ConfigError(
                "either max_steps or termination_probability must bound walks"
            )
        if self.static_sampler not in ("alias", "its"):
            raise ConfigError("static_sampler must be 'alias' or 'its'")
        if self.checkpoint_every is not None and self.checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be non-negative")
        if self.engine_mode not in ("step", "walker"):
            raise ConfigError("engine_mode must be 'step' or 'walker'")
        if self.sampler_policy not in ("fixed", "auto"):
            raise ConfigError("sampler_policy must be 'fixed' or 'auto'")
        if self.sampler_policy == "auto" and self.engine_mode != "step":
            raise ConfigError(
                "sampler_policy='auto' requires engine_mode='step'"
            )

    def evolve(self, **changes: Any) -> WalkConfig:
        """A copy with the given fields replaced, re-validated.

        The config is frozen, so derived configurations (per-shard
        splits in :mod:`repro.parallel`, the degradation ladder in
        :mod:`repro.service.degrade`) go through here — mutual-
        exclusion and range checks re-run on the result.
        """
        return dataclasses.replace(self, **changes)

    def resolve_num_walkers(self, graph: CSRGraph) -> int:
        """Walker count after applying the |V| default."""
        if self.num_walkers is not None:
            return self.num_walkers
        if self.walks_per_vertex is not None:
            return self.walks_per_vertex * graph.num_vertices
        return graph.num_vertices

    def resolve_starts(self, graph: CSRGraph) -> np.ndarray:
        """Start vertex per walker.

        Explicit ``start_vertices`` win; a ``start_distribution`` is
        sampled (deterministically from the seed); otherwise the
        paper's default strategy places the i-th walker at vertex
        ``i mod |V|``.
        """
        count = self.resolve_num_walkers(graph)
        if self.start_vertices is not None:
            starts = np.asarray(self.start_vertices, dtype=np.int64)
            if starts.size != count:
                raise ConfigError(
                    f"{starts.size} start vertices for {count} walkers"
                )
            if starts.size and (
                starts.min() < 0 or starts.max() >= graph.num_vertices
            ):
                raise ConfigError("start vertex out of range")
            return starts
        if self.start_distribution is not None:
            weights = np.asarray(self.start_distribution, dtype=np.float64)
            if weights.size != graph.num_vertices:
                raise ConfigError(
                    "start_distribution must have one weight per vertex"
                )
            if weights.min() < 0 or weights.sum() <= 0:
                raise ConfigError(
                    "start_distribution weights must be non-negative with "
                    "positive total"
                )
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed, spawn_key=(0x57A7,))
            )
            return rng.choice(
                graph.num_vertices, size=count, p=weights / weights.sum()
            ).astype(np.int64)
        return np.arange(count, dtype=np.int64) % graph.num_vertices
