"""The single-process walker-centric walk engine.

:class:`WalkEngine` executes any :class:`~repro.core.program.WalkerProgram`
over a CSR graph following the iteration structure of paper section 5.1,
without the message-passing layer (the distributed variant lives in
:mod:`repro.cluster.engine` and shares this module's kernels):

1. check the extension component Pe — dead ends, the configured step
   limit, the per-step termination coin, and any program-specific
   continuation test;
2. run rejection-sampling trials over the static tables: candidates
   from alias/ITS, lower-bound pre-acceptance, on-demand Pd evaluation,
   outlier appendices;
3. move walkers along accepted edges.

Pacing follows the paper: static and first-order programs move in
*lockstep* — within one iteration every walker retries until it moves
("step" mode) — while second-order programs spend one trial per
iteration, because each trial costs a two-round query exchange in the
distributed setting; rejected walkers stay put and retry next iteration
("trial" mode).

Static programs (Pd = 1) set envelope == lower bound == 1 so every
trial pre-accepts on the first dart: rejection sampling degenerates to
plain alias/ITS sampling exactly as the paper promises ("morphing into
the alias solution automatically in static walks").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import WalkConfig
from repro.core.kernels import (
    ZERO_MASS_GUARD_TRIALS,
    KernelScratch,
    adaptive_trial_count,
    batch_multi_trial_round,
    batch_trial_round,
    full_scan_distribution,
    full_scan_spans,
)
from repro.core.program import WalkerProgram
from repro.core.stats import WalkStats
from repro.core.stepper import StepExecutor
from repro.core.trace import PathRecorder, StreamingPathRecorder
from repro.core.walker import WalkerSet
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, EpochSnapshot
from repro.sampling.alias import VertexAliasTables
from repro.sampling.its import VertexITSTables
from repro.sampling.rejection import RejectionSampler
from repro.sampling.rng import derive_rng

__all__ = ["WalkEngine", "WalkResult", "ZERO_MASS_GUARD_TRIALS"]


@dataclass
class WalkResult:
    """Outcome of one walk execution.

    ``status`` says how the run ended:

    * ``"complete"`` — every walker terminated;
    * ``"paused"`` — stopped by ``max_iterations`` with walkers alive
      (the checkpoint/monitoring hook);
    * ``"deadline_exceeded"`` — the deadline expired between iteration
      batches; the result is a well-formed partial (stats, walker
      positions, and any recorded path prefixes are all consistent);
    * ``"cancelled"`` — a cancel token fired, same partial guarantees.
    """

    stats: WalkStats
    walkers: WalkerSet
    paths: list[np.ndarray] | None
    status: str = "complete"

    @property
    def complete(self) -> bool:
        return self.status == "complete"

    @property
    def walk_lengths(self) -> np.ndarray:
        """Steps taken per walker."""
        return self.walkers.steps

    def corpus(self) -> list[list[int]]:
        """Recorded walk sequences as lists (requires record_paths)."""
        if self.paths is None:
            raise ProgramError("paths were not recorded; set record_paths=True")
        return [path.tolist() for path in self.paths]


class WalkEngine:
    """Single-process KnightKing engine.

    Parameters
    ----------
    graph, program, config:
        what to walk, how to sample, and how many walkers/steps.
    use_lower_bound:
        toggle for the pre-acceptance optimization of paper section
        4.2, exposed so the Table 5 ablations can disable it (a zero
        lower bound is always sound).  Outlier folding is toggled on
        the *program* (e.g. ``Node2Vec(fold_outlier=...)``) because the
        envelope must be widened consistently when folding is off.
    force_scalar:
        run the per-walker reference path even if the program provides
        batch hooks (used by tests to check the two paths agree).
    validate_bounds:
        debug mode: assert every evaluated Pd respects the declared
        envelope, raising :class:`~repro.errors.ProgramError` on the
        first violation (which would otherwise silently skew the
        sampled law).  Off by default for speed.
    fuse_trials:
        use the fused multi-trial kernel for step-mode dynamic
        programs, speculating K trials per round with K adapted to the
        running acceptance rate.  Trial-mode (second-order) pacing is
        never fused — one trial per superstep there is a semantic, not
        an inefficiency — and static programs pre-accept every first
        dart, so speculation would be pure waste.  Off gives the
        single-trial kernel, kept as the semantic reference.
    """

    # True on engines whose _account_lane_work override does real work
    # (the distributed engine); lets the step executor skip building
    # per-lane work arrays when nobody consumes them.
    _accounts_lane_work = False

    def __init__(
        self,
        graph: CSRGraph,
        program: WalkerProgram,
        config: WalkConfig | None = None,
        use_lower_bound: bool = True,
        force_scalar: bool = False,
        validate_bounds: bool = False,
        fuse_trials: bool = True,
    ) -> None:
        config = config if config is not None else WalkConfig()
        program.validate()
        # Dynamic graphs: the walk pins the current epoch's immutable
        # snapshot — later commits to the DynamicGraph can never move
        # arrays under a running engine (epoch-snapshot isolation).
        snapshot = None
        if isinstance(graph, DynamicGraph):
            snapshot = graph.snapshot()
        elif isinstance(graph, EpochSnapshot):
            snapshot = graph
        if snapshot is not None:
            graph = snapshot.graph
        self.snapshot = snapshot
        self.graph_epoch = None if snapshot is None else snapshot.epoch
        self.graph = graph
        self.program = program
        self.config = config
        self.use_lower_bound = use_lower_bound
        self.validate_bounds = validate_bounds
        self._batch = program.supports_batch and not force_scalar

        init_start = time.perf_counter()
        static = program.edge_static_comp(graph)
        if snapshot is not None and static is None:
            # Incrementally maintained tables (only touched vertices
            # were rebuilt this epoch); bit-identical to a fresh build.
            self.tables = snapshot.tables(config.static_sampler)
        elif config.static_sampler == "alias":
            self.tables = VertexAliasTables(graph, static)
        else:
            self.tables = VertexITSTables(graph, static)
        self._scalar_sampler = RejectionSampler(self.tables)

        if program.dynamic:
            if snapshot is not None:
                self.upper, self.lower = snapshot.bounds_for(
                    program, use_lower_bound
                )
            else:
                self.upper = np.asarray(
                    program.upper_bound_array(graph), dtype=np.float64
                )
                if use_lower_bound:
                    self.lower = np.asarray(
                        program.lower_bound_array(graph), dtype=np.float64
                    )
                else:
                    self.lower = np.zeros(graph.num_vertices, dtype=np.float64)
        else:
            # Static walk: Pd is identically 1, so the tight envelope
            # and lower bound coincide and every dart pre-accepts.
            self.upper = np.ones(graph.num_vertices, dtype=np.float64)
            self.lower = np.ones(graph.num_vertices, dtype=np.float64)
        if np.any(self.lower > self.upper):
            raise ProgramError("lower bound exceeds upper bound somewhere")
        if np.any(self.upper <= 0):
            raise ProgramError("upper bounds must be positive")

        starts = config.resolve_starts(graph)
        self.walkers = WalkerSet(starts, history_depth=program.history_depth)
        self._rng = derive_rng(config.seed, 0xE17)
        program.setup_walkers(graph, self.walkers, derive_rng(config.seed, 0x5E7))
        if config.stream_paths_to is not None:
            self._recorder = StreamingPathRecorder(config.stream_paths_to, starts)
        elif config.record_paths:
            self._recorder = PathRecorder(starts)
        else:
            self._recorder = None
        self._streaming = isinstance(self._recorder, StreamingPathRecorder)
        self._rejection_streak = np.zeros(self.walkers.num_walkers, dtype=np.int64)
        self.stats = WalkStats()
        # "trial" pacing for second-order programs, "step" otherwise.
        self.sync_mode = "trial" if program.order == 2 else "step"
        self.fuse_trials = fuse_trials
        self._fuse = (
            fuse_trials
            and self._batch
            and program.dynamic
            and self.sync_mode == "step"
        )
        # Step-centric staging needs the batch kernels; scalar-path
        # programs (and force_scalar runs) keep the walker-at-a-time
        # reference loop regardless of the configured mode.  Engines
        # that replace the trial round wholesale (the full-scan and
        # typed-partition baselines) stay on the walker loop too — the
        # staged path would route around their override.
        overrides_round = (
            type(self)._attempt_once is not WalkEngine._attempt_once
        )
        self.engine_mode = (
            config.engine_mode
            if self._batch and not overrides_round
            else "walker"
        )
        self._scratch = (
            KernelScratch()
            if (self._fuse or self.engine_mode == "step")
            else None
        )
        self._has_custom_continue = (
            type(program).should_continue is not WalkerProgram.should_continue
        )
        self._has_teleports = (
            type(program).teleport_targets is not WalkerProgram.teleport_targets
        )
        self._stepper = (
            StepExecutor(self) if self.engine_mode == "step" else None
        )
        # Observability seam (repro.obs): no tracer by default, so the
        # hot loop pays one attribute check per guard site.  `_obs`
        # carries run/superstep spans; `_stage_obs` carries the
        # Gather/Move/Update stage spans and is left None by engines
        # that keep their own timeline (the cluster simulator declares
        # stage spans in simulated time instead of measuring them).
        self._obs = None
        self._stage_obs = None
        self.stats.graph_epoch = self.graph_epoch
        if snapshot is not None:
            # Live reference: the owning DynamicGraph keeps accumulating
            # verification/fallback counters into the same object.
            self.stats.maintenance = snapshot.maintenance
        self.stats.init_time_seconds = time.perf_counter() - init_start

    # Measured stage spans use the injected wall clock; the cluster
    # engine overrides this to False and declares its stages in
    # simulated time (docs/INTERNALS.md section 16).
    _obs_stages = True
    # Timeline row this engine's spans land on.
    _obs_track = "engine"

    def observe(self, tracer) -> None:
        """Attach a :class:`repro.obs.Tracer` (or detach with ``None``).

        Duck-typed like :meth:`attach_tracer` so the core engine needs
        no obs import.  A tracer with ``enabled=False`` — the hard
        off-switch — is treated as absent, which keeps the disabled
        path at one ``is None`` check per emission site (the perf
        harness certifies <3% steps/sec overhead).  Tracing is
        observation only: it consumes no randomness and never feeds
        back into the walk.
        """
        if tracer is None or not getattr(tracer, "enabled", False):
            self._obs = None
            self._stage_obs = None
            return
        self._obs = tracer
        self._stage_obs = tracer if self._obs_stages else None

    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Route every RNG draw and walker transition through *tracer*.

        The seam of the runtime determinism sanitizer
        (:mod:`repro.lint.sanitizer`): ``tracer`` is duck-typed —
        ``trace_rng(rng)`` returns a drop-in generator proxy and
        ``record_transition(kind, ids, targets)`` observes every
        ``move``/``kill`` — so this module needs no lint import.  Must
        be called before :meth:`run`; the walk itself is unchanged
        (tracing consumes no randomness), only observed.
        """
        self._rng = tracer.trace_rng(self._rng)
        walkers = self.walkers
        original_move, original_kill = walkers.move, walkers.kill

        def traced_move(walker_ids, new_vertices):
            tracer.record_transition("move", walker_ids, new_vertices)
            return original_move(walker_ids, new_vertices)

        def traced_kill(walker_ids):
            tracer.record_transition("kill", walker_ids, None)
            return original_kill(walker_ids)

        walkers.move = traced_move
        walkers.kill = traced_kill

    # ------------------------------------------------------------------
    def _should_stop(
        self, executed: int, max_iterations, deadline, cancel
    ) -> str | None:
        """Between-iteration stop check shared by both engines.

        Returns the result status that ends the run, or ``None`` to
        keep going.  ``deadline`` and ``cancel`` are duck-typed
        (``expired()`` / ``.cancelled``) so the core engine needs no
        import of :mod:`repro.service`.
        """
        if max_iterations is not None and executed >= max_iterations:
            return "paused"
        if cancel is not None and cancel.cancelled:
            return "cancelled"
        if deadline is not None and deadline.expired():
            return "deadline_exceeded"
        return None

    def run(
        self,
        max_iterations: int | None = None,
        deadline=None,
        cancel=None,
    ) -> WalkResult:
        """Execute the walk and return the result.

        ``max_iterations`` stops the engine early (walkers stay alive
        in the returned result) — the hook used for monitoring and for
        checkpoint/resume (:mod:`repro.core.snapshot`).

        ``deadline`` (an object with ``expired()``, e.g.
        :class:`repro.service.Deadline`) and ``cancel`` (an object with
        ``.cancelled``, e.g. :class:`repro.service.CancelToken`) turn
        the loop into chunked cooperative execution: both are checked
        between iteration batches, and an expired deadline or a fired
        token stops the run with a partial, well-formed result tagged
        ``"deadline_exceeded"`` / ``"cancelled"``.  Neither consumes
        randomness, so a run that finishes before its deadline is
        bit-identical to an unbounded run with the same seed.
        """
        loop_start = time.perf_counter()
        executed = 0
        status = "complete"
        obs = self._obs
        if obs is None:
            while self.walkers.num_active:
                stop = self._should_stop(
                    executed, max_iterations, deadline, cancel
                )
                if stop is not None:
                    status = stop
                    break
                self._iteration()
                executed += 1
        else:
            with obs.span(
                "engine.run",
                track=self._obs_track,
                args={"mode": self.engine_mode},
            ) as run_handle:
                while self.walkers.num_active:
                    stop = self._should_stop(
                        executed, max_iterations, deadline, cancel
                    )
                    if stop is not None:
                        status = stop
                        break
                    with obs.span(
                        "superstep",
                        track=self._obs_track,
                        args={"iteration": self.stats.iterations},
                    ) as step_handle:
                        self._iteration()
                        if step_handle is not None:
                            step_handle.args["active"] = int(
                                self.stats.active_per_iteration[-1]
                            )
                    executed += 1
                if run_handle is not None:
                    run_handle.args["status"] = status
                    run_handle.args["iterations"] = executed
        self.stats.wall_time_seconds += time.perf_counter() - loop_start
        paths = None
        if self._recorder is not None:
            if self._streaming:
                if not self.walkers.num_active:
                    self._recorder.close()
            else:
                paths = self._recorder.paths()
        return WalkResult(
            stats=self.stats,
            walkers=self.walkers,
            paths=paths,
            status=status,
        )

    # ------------------------------------------------------------------
    def _iteration(self) -> None:
        active = self.walkers.active_ids()
        self.stats.active_per_iteration.append(active.size)
        self.stats.iterations += 1

        obs = self._stage_obs
        if obs is None:
            survivors = self._advance_walkers(active)
        else:
            # "Update" in the ThunderRW staging: advance walker state —
            # termination checks, step-limit bookkeeping, teleports.
            with obs.span(
                "stage.update",
                track=self._obs_track,
                args={"active": int(active.size)},
            ):
                survivors = self._advance_walkers(active)
        if survivors.size == 0:
            return

        if self._stepper is not None:
            self._stepper.run_iteration(survivors)
        elif obs is None:
            self._move_walkers(survivors)
        else:
            with obs.span("stage.move", track=self._obs_track):
                self._move_walkers(survivors)
        self._flush_streaming(active)

    def _advance_walkers(self, active: np.ndarray) -> np.ndarray:
        """Update stage: termination/teleport bookkeeping before the
        sampling rounds; returns the walkers still in play."""
        survivors = self._apply_extension_component(active)
        if survivors.size == 0:
            return survivors
        return self._apply_teleports(survivors)

    def _move_walkers(self, survivors: np.ndarray) -> None:
        """Move stage of the walker-centric reference loop."""
        if self.sync_mode == "trial":
            self._attempt_once(survivors)
        else:
            # Lockstep: every surviving walker moves (or is terminated
            # by the zero-mass guard) within this iteration.
            pending = survivors
            while pending.size:
                moved = self._attempt_once(pending)
                pending = pending[~moved]

    def _flush_streaming(self, active: np.ndarray) -> None:
        """Spill the sequences of walkers that died this iteration."""
        if self._streaming and active.size:
            finished = active[~self.walkers.alive[active]]
            if finished.size:
                self._recorder.flush_finished(finished)

    def _apply_teleports(self, active: np.ndarray) -> np.ndarray:
        """Move teleporting walkers directly; return the remainder."""
        if not self._has_teleports or active.size == 0:
            return active
        jump = self.program.teleport_targets(
            self.graph, self.walkers, active, self._rng
        )
        if jump is None:
            return active
        jumper_ids, targets = jump
        if jumper_ids.size == 0:
            return active
        self._record_teleports(jumper_ids, np.asarray(targets, dtype=np.int64))
        return np.setdiff1d(active, jumper_ids, assume_unique=True)

    def _record_teleports(
        self, walker_ids: np.ndarray, targets: np.ndarray
    ) -> None:
        """Book-keeping for direct jumps (shared with the distributed
        engine, whose move hook additionally counts migrations)."""
        self._commit_moves(walker_ids, targets)
        self.stats.teleports += walker_ids.size

    def _apply_extension_component(self, active: np.ndarray) -> np.ndarray:
        """Pe: kill walkers whose walk ends here; return survivors."""
        config = self.config
        walkers = self.walkers

        # No out-edges with positive static mass: nothing to sample.
        dead = self.tables.totals[walkers.current[active]] <= 0.0
        if dead.any():
            doomed = active[dead]
            walkers.kill(doomed)
            self.stats.termination.by_dead_end += doomed.size
            active = active[~dead]

        if config.max_steps is not None and active.size:
            done = walkers.steps[active] >= config.max_steps
            if done.any():
                finished = active[done]
                walkers.kill(finished)
                self.stats.termination.by_step_limit += finished.size
                active = active[~done]

        if config.termination_probability > 0.0 and active.size:
            coins = self._rng.random(active.size)
            stop = coins < config.termination_probability
            if stop.any():
                stopped = active[stop]
                walkers.kill(stopped)
                self.stats.termination.by_probability += stopped.size
                active = active[~stop]

        if self._has_custom_continue and active.size:
            keep = np.asarray(
                [
                    self.program.should_continue(
                        self.graph, self.walkers.view(int(walker_id))
                    )
                    for walker_id in active
                ],
                dtype=bool,
            )
            if not keep.all():
                halted = active[~keep]
                walkers.kill(halted)
                self.stats.termination.by_step_limit += halted.size
                active = active[keep]
        return active

    # ------------------------------------------------------------------
    def _attempt_once(self, walker_ids: np.ndarray) -> np.ndarray:
        """One trial per walker; moves the accepted ones.

        Returns the per-walker moved mask (aligned with walker_ids).
        """
        trials_spent = None
        if self._fuse:
            outcome = batch_multi_trial_round(
                self.graph,
                self.tables,
                self.program,
                self.walkers,
                walker_ids,
                self.upper,
                self.lower,
                self._rng,
                self.stats.counters,
                num_trials=adaptive_trial_count(self.stats.counters),
                validate_bounds=self.validate_bounds,
                scratch=self._scratch,
            )
            accepted, edges = outcome.accepted, outcome.edges
            trials_spent = outcome.trials_used
        elif self._batch:
            outcome = batch_trial_round(
                self.graph,
                self.tables,
                self.program,
                self.walkers,
                walker_ids,
                self.upper,
                self.lower,
                self._rng,
                self.stats.counters,
                validate_bounds=self.validate_bounds,
            )
            accepted, edges = outcome.accepted, outcome.edges
        else:
            accepted, edges = self._scalar_round(walker_ids)
        return self._commit_round(walker_ids, accepted, edges, trials_spent)

    # ------------------------------------------------------------------
    # Move/Update hooks — shared by the walker-centric loop and the
    # step-centric executor; the distributed engine overrides the first
    # three to add per-node message and work accounting.
    # ------------------------------------------------------------------
    def _commit_round(
        self,
        walker_ids: np.ndarray,
        accepted: np.ndarray,
        edges: np.ndarray,
        trials_spent: np.ndarray | None = None,
    ) -> np.ndarray:
        """Move/Update tail of one trial round: apply the accepted
        transitions, advance rejection streaks, fire the zero-mass
        guard.  Returns the resolved-lane mask (moved or guarded)."""
        moved = accepted.copy()
        if accepted.any():
            self._commit_moves(
                walker_ids[accepted], self.graph.targets[edges[accepted]]
            )

        stuck_lanes = np.flatnonzero(~accepted)
        if stuck_lanes.size:
            stuck = walker_ids[stuck_lanes]
            # The streak advances by trials actually consumed, so the
            # fused kernel (K trials per round) reaches the guard after
            # the same trial budget as the single-trial kernel.
            if trials_spent is None:
                self._rejection_streak[stuck] += 1
            else:
                self._rejection_streak[stuck] += trials_spent[stuck_lanes]
            # Positional indexing — walker_ids carries no ordering
            # guarantee, so a sorted-array search would silently flag
            # the wrong lane.
            guarded_lanes = stuck_lanes[
                self._rejection_streak[stuck] >= ZERO_MASS_GUARD_TRIALS
            ]
            if guarded_lanes.size:
                if self._batch:
                    # The guard always resolves a walker (kill or an
                    # exact move), so every guarded lane leaves the
                    # pending set.
                    self._run_guard(walker_ids[guarded_lanes])
                    moved[guarded_lanes] = True
                else:
                    for lane in guarded_lanes:
                        if self._guard_walker(int(walker_ids[lane])):
                            moved[lane] = True
        return moved

    def _commit_moves(self, movers: np.ndarray, targets: np.ndarray) -> None:
        """Apply one batch of accepted transitions."""
        self.walkers.move(movers, targets)
        self._rejection_streak[movers] = 0
        self.stats.total_steps += movers.size
        if self._recorder is not None:
            self._recorder.record_moves(movers, targets)

    def _run_guard(self, ids: np.ndarray) -> None:
        """Resolve persistently rejected walkers (kill or exact move)."""
        self._guard_batch(ids)

    def _account_lane_work(
        self,
        vertices: np.ndarray,
        trials: np.ndarray | int | None = None,
        pd: np.ndarray | None = None,
    ) -> None:
        """Attribute sampling work to the walkers' locations.

        A no-op here; the distributed engine charges each vertex's
        owning node so per-node utilisation stays truthful when the
        step executor routes lanes through different strategies.
        """

    def _guard_batch(self, ids: np.ndarray) -> np.ndarray:
        """Vectorised zero-mass guard over several walkers at once.

        Same semantics as :meth:`_guard_walker` — scan the full edge
        span, terminate on zero eligible mass, otherwise move by an
        exact draw from the scanned distribution — but the spans come
        from the shared :func:`~repro.core.kernels.full_scan_spans`
        kernel (one ``batch_dynamic_comp`` over the concatenated spans,
        one global-CDF searchsorted for the draws), so programs whose
        walkers hit the guard in bulk (Meta-path at every scheme dead
        end) don't fall off the vectorised path.

        Kills precede the draw so the RNG consumes exactly one uniform
        per surviving walker, in lane order.  Returns the per-walker Pd
        evaluation counts, which the distributed engine attributes to
        each walker's node.
        """
        spans = full_scan_spans(
            self.graph, self.tables, self.program, self.walkers, ids
        )
        self.stats.full_scan_evaluations += int(spans.evaluations.sum())

        dead = spans.totals <= 0.0
        if dead.any():
            doomed = ids[dead]
            self.walkers.kill(doomed)
            self.stats.termination.by_dead_end += doomed.size
            self._rejection_streak[doomed] = 0

        live = np.flatnonzero(~dead)
        if live.size:
            edges = spans.sample(live, self._rng)
            self._commit_moves(ids[live], self.graph.targets[edges])
        return spans.evaluations

    def _scalar_round(
        self, walker_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Reference per-walker trial round (no batch hooks needed)."""
        accepted = np.zeros(walker_ids.size, dtype=bool)
        edges = np.full(walker_ids.size, -1, dtype=np.int64)
        for lane, walker_id in enumerate(walker_ids):
            view = self.walkers.view(int(walker_id))
            vertex = view.current
            outliers = (
                self.program.outlier_specs(self.graph, view)
                if self.program.dynamic
                else ()
            )
            edge = self._scalar_sampler.try_once(
                vertex,
                self._rng,
                self._scalar_pd(view),
                float(self.upper[vertex]),
                float(self.lower[vertex]),
                outliers,
                self.stats.counters,
            )
            if edge is not None:
                accepted[lane] = True
                edges[lane] = edge
        return accepted, edges

    def _scalar_pd(self, view):
        """Pd closure that resolves state queries synchronously."""
        program, graph = self.program, self.graph

        def pd_of(edge_index: int) -> float:
            query = program.state_query(graph, view, edge_index)
            result = (
                program.answer_state_query(graph, query)
                if query is not None
                else None
            )
            return program.edge_dynamic_comp(graph, view, edge_index, result)

        return pd_of

    def _guard_walker(self, walker_id: int) -> bool:
        """Zero-mass guard for a persistently rejected walker.

        Scans the walker's vertex once.  Zero eligible mass terminates
        the walk (no out-edge has positive transition probability);
        otherwise the walker moves by an exact draw from the scanned
        distribution.  Returns True if the walker moved or terminated.
        """
        mass, evaluations = full_scan_distribution(
            self.graph, self.tables, self.program, self.walkers, walker_id
        )
        self.stats.full_scan_evaluations += evaluations
        total = float(mass.sum())
        if total <= 0.0:
            self.walkers.kill(np.asarray([walker_id]))
            self.stats.termination.by_dead_end += 1
            self._rejection_streak[walker_id] = 0
            return True
        cdf = np.cumsum(mass)
        draw = self._rng.random() * total
        local = int(np.searchsorted(cdf, draw, side="right"))
        start, _ = self.graph.edge_range(int(self.walkers.current[walker_id]))
        target = self.graph.targets[start + local]
        ids = np.asarray([walker_id])
        self.walkers.move(ids, np.asarray([target]))
        self._rejection_streak[walker_id] = 0
        self.stats.total_steps += 1
        if self._recorder is not None:
            self._recorder.record_moves(ids, np.asarray([target]))
        return True
