"""The single-process walker-centric walk engine.

:class:`WalkEngine` executes any :class:`~repro.core.program.WalkerProgram`
over a CSR graph following the iteration structure of paper section 5.1,
without the message-passing layer (the distributed variant lives in
:mod:`repro.cluster.engine` and shares this module's kernels):

1. check the extension component Pe — dead ends, the configured step
   limit, the per-step termination coin, and any program-specific
   continuation test;
2. run rejection-sampling trials over the static tables: candidates
   from alias/ITS, lower-bound pre-acceptance, on-demand Pd evaluation,
   outlier appendices;
3. move walkers along accepted edges.

Pacing follows the paper: static and first-order programs move in
*lockstep* — within one iteration every walker retries until it moves
("step" mode) — while second-order programs spend one trial per
iteration, because each trial costs a two-round query exchange in the
distributed setting; rejected walkers stay put and retry next iteration
("trial" mode).

Static programs (Pd = 1) set envelope == lower bound == 1 so every
trial pre-accepts on the first dart: rejection sampling degenerates to
plain alias/ITS sampling exactly as the paper promises ("morphing into
the alias solution automatically in static walks").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import WalkConfig
from repro.core.kernels import batch_trial_round, full_scan_distribution
from repro.core.program import WalkerProgram
from repro.core.stats import WalkStats
from repro.core.trace import PathRecorder, StreamingPathRecorder
from repro.core.walker import WalkerSet
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph
from repro.sampling.alias import VertexAliasTables
from repro.sampling.its import VertexITSTables
from repro.sampling.rejection import RejectionSampler
from repro.sampling.rng import derive_rng

__all__ = ["WalkEngine", "WalkResult"]

# After this many consecutive rejections a walker's vertex is fully
# scanned once to distinguish "unlucky" from "zero eligible mass".
ZERO_MASS_GUARD_TRIALS = 64


@dataclass
class WalkResult:
    """Outcome of one walk execution."""

    stats: WalkStats
    walkers: WalkerSet
    paths: list[np.ndarray] | None

    @property
    def walk_lengths(self) -> np.ndarray:
        """Steps taken per walker."""
        return self.walkers.steps

    def corpus(self) -> list[list[int]]:
        """Recorded walk sequences as lists (requires record_paths)."""
        if self.paths is None:
            raise ProgramError("paths were not recorded; set record_paths=True")
        return [path.tolist() for path in self.paths]


class WalkEngine:
    """Single-process KnightKing engine.

    Parameters
    ----------
    graph, program, config:
        what to walk, how to sample, and how many walkers/steps.
    use_lower_bound:
        toggle for the pre-acceptance optimization of paper section
        4.2, exposed so the Table 5 ablations can disable it (a zero
        lower bound is always sound).  Outlier folding is toggled on
        the *program* (e.g. ``Node2Vec(fold_outlier=...)``) because the
        envelope must be widened consistently when folding is off.
    force_scalar:
        run the per-walker reference path even if the program provides
        batch hooks (used by tests to check the two paths agree).
    validate_bounds:
        debug mode: assert every evaluated Pd respects the declared
        envelope, raising :class:`~repro.errors.ProgramError` on the
        first violation (which would otherwise silently skew the
        sampled law).  Off by default for speed.
    """

    def __init__(
        self,
        graph: CSRGraph,
        program: WalkerProgram,
        config: WalkConfig | None = None,
        use_lower_bound: bool = True,
        force_scalar: bool = False,
        validate_bounds: bool = False,
    ) -> None:
        config = config if config is not None else WalkConfig()
        program.validate()
        self.graph = graph
        self.program = program
        self.config = config
        self.use_lower_bound = use_lower_bound
        self.validate_bounds = validate_bounds
        self._batch = program.supports_batch and not force_scalar

        init_start = time.perf_counter()
        static = program.edge_static_comp(graph)
        if config.static_sampler == "alias":
            self.tables = VertexAliasTables(graph, static)
        else:
            self.tables = VertexITSTables(graph, static)
        self._scalar_sampler = RejectionSampler(self.tables)

        if program.dynamic:
            self.upper = np.asarray(
                program.upper_bound_array(graph), dtype=np.float64
            )
            if use_lower_bound:
                self.lower = np.asarray(
                    program.lower_bound_array(graph), dtype=np.float64
                )
            else:
                self.lower = np.zeros(graph.num_vertices, dtype=np.float64)
        else:
            # Static walk: Pd is identically 1, so the tight envelope
            # and lower bound coincide and every dart pre-accepts.
            self.upper = np.ones(graph.num_vertices, dtype=np.float64)
            self.lower = np.ones(graph.num_vertices, dtype=np.float64)
        if np.any(self.lower > self.upper):
            raise ProgramError("lower bound exceeds upper bound somewhere")
        if np.any(self.upper <= 0):
            raise ProgramError("upper bounds must be positive")

        starts = config.resolve_starts(graph)
        self.walkers = WalkerSet(starts, history_depth=program.history_depth)
        self._rng = derive_rng(config.seed, 0xE17)
        program.setup_walkers(graph, self.walkers, derive_rng(config.seed, 0x5E7))
        if config.stream_paths_to is not None:
            self._recorder = StreamingPathRecorder(config.stream_paths_to, starts)
        elif config.record_paths:
            self._recorder = PathRecorder(starts)
        else:
            self._recorder = None
        self._streaming = isinstance(self._recorder, StreamingPathRecorder)
        self._rejection_streak = np.zeros(self.walkers.num_walkers, dtype=np.int64)
        self.stats = WalkStats()
        self.stats.init_time_seconds = time.perf_counter() - init_start
        # "trial" pacing for second-order programs, "step" otherwise.
        self.sync_mode = "trial" if program.order == 2 else "step"
        self._has_custom_continue = (
            type(program).should_continue is not WalkerProgram.should_continue
        )
        self._has_teleports = (
            type(program).teleport_targets is not WalkerProgram.teleport_targets
        )

    # ------------------------------------------------------------------
    def run(self, max_iterations: int | None = None) -> WalkResult:
        """Execute the walk and return the result.

        ``max_iterations`` stops the engine early (walkers stay alive
        in the returned result) — the hook used for monitoring and for
        checkpoint/resume (:mod:`repro.core.snapshot`).
        """
        loop_start = time.perf_counter()
        executed = 0
        while self.walkers.num_active and (
            max_iterations is None or executed < max_iterations
        ):
            self._iteration()
            executed += 1
        self.stats.wall_time_seconds += time.perf_counter() - loop_start
        paths = None
        if self._recorder is not None:
            if self._streaming:
                if not self.walkers.num_active:
                    self._recorder.close()
            else:
                paths = self._recorder.paths()
        return WalkResult(stats=self.stats, walkers=self.walkers, paths=paths)

    # ------------------------------------------------------------------
    def _iteration(self) -> None:
        active = self.walkers.active_ids()
        self.stats.active_per_iteration.append(active.size)
        self.stats.iterations += 1

        survivors = self._apply_extension_component(active)
        if survivors.size == 0:
            return
        survivors = self._apply_teleports(survivors)
        if survivors.size == 0:
            return

        if self.sync_mode == "trial":
            self._attempt_once(survivors)
        else:
            # Lockstep: every surviving walker moves (or is terminated
            # by the zero-mass guard) within this iteration.
            pending = survivors
            while pending.size:
                moved = self._attempt_once(pending)
                pending = pending[~moved]
        self._flush_streaming(active)

    def _flush_streaming(self, active: np.ndarray) -> None:
        """Spill the sequences of walkers that died this iteration."""
        if self._streaming and active.size:
            finished = active[~self.walkers.alive[active]]
            if finished.size:
                self._recorder.flush_finished(finished)

    def _apply_teleports(self, active: np.ndarray) -> np.ndarray:
        """Move teleporting walkers directly; return the remainder."""
        if not self._has_teleports or active.size == 0:
            return active
        jump = self.program.teleport_targets(
            self.graph, self.walkers, active, self._rng
        )
        if jump is None:
            return active
        jumper_ids, targets = jump
        if jumper_ids.size == 0:
            return active
        self._record_teleports(jumper_ids, np.asarray(targets, dtype=np.int64))
        return np.setdiff1d(active, jumper_ids, assume_unique=True)

    def _record_teleports(
        self, walker_ids: np.ndarray, targets: np.ndarray
    ) -> None:
        """Book-keeping for direct jumps (shared with the distributed
        engine, which additionally counts migration messages)."""
        self.walkers.move(walker_ids, targets)
        self._rejection_streak[walker_ids] = 0
        self.stats.total_steps += walker_ids.size
        self.stats.teleports += walker_ids.size
        if self._recorder is not None:
            self._recorder.record_moves(walker_ids, targets)

    def _apply_extension_component(self, active: np.ndarray) -> np.ndarray:
        """Pe: kill walkers whose walk ends here; return survivors."""
        config = self.config
        walkers = self.walkers

        # No out-edges with positive static mass: nothing to sample.
        dead = self.tables.totals[walkers.current[active]] <= 0.0
        if dead.any():
            doomed = active[dead]
            walkers.kill(doomed)
            self.stats.termination.by_dead_end += doomed.size
            active = active[~dead]

        if config.max_steps is not None and active.size:
            done = walkers.steps[active] >= config.max_steps
            if done.any():
                finished = active[done]
                walkers.kill(finished)
                self.stats.termination.by_step_limit += finished.size
                active = active[~done]

        if config.termination_probability > 0.0 and active.size:
            coins = self._rng.random(active.size)
            stop = coins < config.termination_probability
            if stop.any():
                stopped = active[stop]
                walkers.kill(stopped)
                self.stats.termination.by_probability += stopped.size
                active = active[~stop]

        if self._has_custom_continue and active.size:
            keep = np.asarray(
                [
                    self.program.should_continue(
                        self.graph, self.walkers.view(int(walker_id))
                    )
                    for walker_id in active
                ],
                dtype=bool,
            )
            if not keep.all():
                halted = active[~keep]
                walkers.kill(halted)
                self.stats.termination.by_step_limit += halted.size
                active = active[keep]
        return active

    # ------------------------------------------------------------------
    def _attempt_once(self, walker_ids: np.ndarray) -> np.ndarray:
        """One trial per walker; moves the accepted ones.

        Returns the per-walker moved mask (aligned with walker_ids).
        """
        if self._batch:
            outcome = batch_trial_round(
                self.graph,
                self.tables,
                self.program,
                self.walkers,
                walker_ids,
                self.upper,
                self.lower,
                self._rng,
                self.stats.counters,
                validate_bounds=self.validate_bounds,
            )
            accepted, edges = outcome.accepted, outcome.edges
        else:
            accepted, edges = self._scalar_round(walker_ids)

        moved = accepted.copy()
        if accepted.any():
            movers = walker_ids[accepted]
            targets = self.graph.targets[edges[accepted]]
            self.walkers.move(movers, targets)
            self._rejection_streak[movers] = 0
            self.stats.total_steps += movers.size
            if self._recorder is not None:
                self._recorder.record_moves(movers, targets)

        stuck = walker_ids[~accepted]
        if stuck.size:
            self._rejection_streak[stuck] += 1
            guarded = stuck[
                self._rejection_streak[stuck] >= ZERO_MASS_GUARD_TRIALS
            ]
            for walker_id in guarded:
                if self._guard_walker(int(walker_id)):
                    moved[np.searchsorted(walker_ids, walker_id)] = True
        return moved

    def _scalar_round(
        self, walker_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Reference per-walker trial round (no batch hooks needed)."""
        accepted = np.zeros(walker_ids.size, dtype=bool)
        edges = np.full(walker_ids.size, -1, dtype=np.int64)
        for lane, walker_id in enumerate(walker_ids):
            view = self.walkers.view(int(walker_id))
            vertex = view.current
            outliers = (
                self.program.outlier_specs(self.graph, view)
                if self.program.dynamic
                else ()
            )
            edge = self._scalar_sampler.try_once(
                vertex,
                self._rng,
                self._scalar_pd(view),
                float(self.upper[vertex]),
                float(self.lower[vertex]),
                outliers,
                self.stats.counters,
            )
            if edge is not None:
                accepted[lane] = True
                edges[lane] = edge
        return accepted, edges

    def _scalar_pd(self, view):
        """Pd closure that resolves state queries synchronously."""
        program, graph = self.program, self.graph

        def pd_of(edge_index: int) -> float:
            query = program.state_query(graph, view, edge_index)
            result = (
                program.answer_state_query(graph, query)
                if query is not None
                else None
            )
            return program.edge_dynamic_comp(graph, view, edge_index, result)

        return pd_of

    def _guard_walker(self, walker_id: int) -> bool:
        """Zero-mass guard for a persistently rejected walker.

        Scans the walker's vertex once.  Zero eligible mass terminates
        the walk (no out-edge has positive transition probability);
        otherwise the walker moves by an exact draw from the scanned
        distribution.  Returns True if the walker moved or terminated.
        """
        mass, evaluations = full_scan_distribution(
            self.graph, self.tables, self.program, self.walkers, walker_id
        )
        self.stats.full_scan_evaluations += evaluations
        total = float(mass.sum())
        if total <= 0.0:
            self.walkers.kill(np.asarray([walker_id]))
            self.stats.termination.by_dead_end += 1
            self._rejection_streak[walker_id] = 0
            return True
        cdf = np.cumsum(mass)
        draw = self._rng.random() * total
        local = int(np.searchsorted(cdf, draw, side="right"))
        start, _ = self.graph.edge_range(int(self.walkers.current[walker_id]))
        target = self.graph.targets[start + local]
        ids = np.asarray([walker_id])
        self.walkers.move(ids, np.asarray([target]))
        self._rejection_streak[walker_id] = 0
        self.stats.total_steps += 1
        if self._recorder is not None:
            self._recorder.record_moves(ids, np.asarray([target]))
        return True
