"""Vectorised rejection-sampling kernels.

The scalar :class:`~repro.sampling.rejection.RejectionSampler` defines
the semantics; these kernels execute the identical math over whole
batches of walkers with a handful of numpy operations per trial round.
Both the single-process :class:`~repro.core.engine.WalkEngine` and the
per-node compute of the cluster simulator call into them.

A *trial round* processes one rejection-sampling trial for each walker
in the batch:

1. choose a region per walker — the main dartboard or one folded
   outlier appendix — proportionally to area;
2. main region: draw a candidate edge from the static tables, throw
   the ``y`` dart, pre-accept at or below the lower bound, otherwise
   evaluate Pd for the candidate only;
3. appendix region: evaluate Pd for the declared outlier edge and
   accept with (true chopped area) / (estimated appendix area).

Walkers whose trial is rejected simply appear in the next round's
batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.program import WalkerProgram
from repro.core.walker import WalkerSet
from repro.sampling.alias import VertexAliasTables
from repro.sampling.its import VertexITSTables
from repro.sampling.rejection import SamplingCounters

__all__ = [
    "TrialOutcome",
    "batch_trial_round",
    "full_scan_distribution",
    "full_scan_mass",
]

StaticTables = VertexAliasTables | VertexITSTables


@dataclass
class TrialOutcome:
    """Result of one batch trial round.

    ``accepted`` and ``edges`` align with the input ``walker_ids``:
    where ``accepted[i]`` is True, ``edges[i]`` holds the flat index of
    the sampled edge; elsewhere ``edges[i]`` is -1.
    """

    accepted: np.ndarray
    edges: np.ndarray


def batch_trial_round(
    graph,
    tables: StaticTables,
    program: WalkerProgram,
    walkers: WalkerSet,
    walker_ids: np.ndarray,
    upper_bounds: np.ndarray,
    lower_bounds: np.ndarray,
    rng: np.random.Generator,
    counters: SamplingCounters,
    use_outliers: bool = True,
    validate_bounds: bool = False,
) -> TrialOutcome:
    """One rejection-sampling trial for every walker in ``walker_ids``.

    ``upper_bounds``/``lower_bounds`` are the per-vertex envelope
    arrays (length |V|).  Every walker must reside at a vertex with
    positive static mass; the engine filters dead ends beforehand.

    ``validate_bounds`` enables the debug check that every evaluated Pd
    respects the declared envelope (values above it are legal only on
    declared outlier edges).  A violated envelope silently skews the
    sampled law, so the check turns that bug into a loud
    :class:`~repro.errors.ProgramError` — at the cost of one comparison
    per evaluation, hence opt-in.
    """
    count = walker_ids.size
    vertices = walkers.current[walker_ids]
    upper = upper_bounds[vertices]
    lower = lower_bounds[vertices]
    main_area = tables.totals[vertices] * upper

    outlier_edges = None
    outlier_masses = None
    appendix_area = None
    if use_outliers:
        declared = program.batch_outliers(graph, walkers, walker_ids)
        if declared is not None:
            outlier_edges, outlier_bounds, outlier_widths, outlier_masses = declared
            appendix_area = np.where(
                outlier_edges >= 0,
                outlier_widths * np.maximum(outlier_bounds - upper, 0.0),
                0.0,
            )

    accepted = np.zeros(count, dtype=bool)
    edges = np.full(count, -1, dtype=np.int64)
    counters.trials += count

    if appendix_area is None:
        main_lanes = np.arange(count)
    else:
        total_area = main_area + appendix_area
        region = rng.random(count) * total_area
        in_main = region < main_area
        main_lanes = np.flatnonzero(in_main)
        appendix_lanes = np.flatnonzero(~in_main)
        _appendix_trials(
            graph,
            program,
            walkers,
            walker_ids,
            appendix_lanes,
            outlier_edges,
            outlier_masses,
            appendix_area,
            upper,
            rng,
            counters,
            accepted,
            edges,
        )

    if main_lanes.size:
        candidates = tables.sample_batch(vertices[main_lanes], rng)
        darts = rng.random(main_lanes.size) * upper[main_lanes]
        pre = darts <= lower[main_lanes]
        counters.pre_accepts += int(pre.sum())
        pre_lanes = main_lanes[pre]
        accepted[pre_lanes] = True
        edges[pre_lanes] = candidates[pre]

        need = np.flatnonzero(~pre)
        if need.size:
            lanes = main_lanes[need]
            dynamic = program.batch_dynamic_comp(
                graph, walkers, walker_ids[lanes], candidates[need]
            )
            counters.pd_evaluations += need.size
            if validate_bounds:
                _validate_envelope(
                    graph,
                    dynamic,
                    upper[lanes],
                    candidates[need],
                    outlier_edges[lanes] if outlier_edges is not None else None,
                )
            passed = darts[need] <= dynamic
            ok_lanes = lanes[passed]
            accepted[ok_lanes] = True
            edges[ok_lanes] = candidates[need][passed]

    counters.accepts += int(accepted.sum())
    return TrialOutcome(accepted=accepted, edges=edges)


def _validate_envelope(
    graph,
    dynamic: np.ndarray,
    upper: np.ndarray,
    candidate_edges: np.ndarray,
    declared_outliers: np.ndarray | None,
) -> None:
    """Raise if any evaluated Pd exceeds its envelope illegitimately.

    Exemption is by *target vertex* of the declared outlier, so all
    parallel copies of a folded edge (which share its Pd) are covered.
    """
    from repro.errors import ProgramError

    over = dynamic > upper * (1.0 + 1e-12)
    if declared_outliers is not None:
        has_outlier = declared_outliers >= 0
        same_target = np.zeros(candidate_edges.size, dtype=bool)
        same_target[has_outlier] = (
            graph.targets[candidate_edges[has_outlier]]
            == graph.targets[declared_outliers[has_outlier]]
        )
        over &= ~same_target
    if over.any():
        lane = int(np.flatnonzero(over)[0])
        raise ProgramError(
            f"edgeDynamicComp returned {dynamic[lane]} above the declared "
            f"envelope {upper[lane]} for a non-outlier edge "
            f"{int(candidate_edges[lane])}; the sampled law would be wrong"
        )


def _appendix_trials(
    graph,
    program: WalkerProgram,
    walkers: WalkerSet,
    walker_ids: np.ndarray,
    lanes: np.ndarray,
    outlier_edges: np.ndarray,
    outlier_masses: np.ndarray,
    appendix_area: np.ndarray,
    upper: np.ndarray,
    rng: np.random.Generator,
    counters: SamplingCounters,
    accepted: np.ndarray,
    edges: np.ndarray,
) -> None:
    """Darts landing in outlier appendices (mutates accepted/edges)."""
    if lanes.size == 0:
        return
    counters.appendix_trials += lanes.size
    target_edges = outlier_edges[lanes]
    dynamic = program.batch_dynamic_comp(
        graph, walkers, walker_ids[lanes], target_edges
    )
    counters.pd_evaluations += lanes.size
    chopped = outlier_masses[lanes] * np.maximum(dynamic - upper[lanes], 0.0)
    passed = rng.random(lanes.size) * appendix_area[lanes] < chopped
    ok_lanes = lanes[passed]
    accepted[ok_lanes] = True
    edges[ok_lanes] = target_edges[passed]


def full_scan_distribution(
    graph,
    tables: StaticTables,
    program: WalkerProgram,
    walkers: WalkerSet,
    walker_id: int,
) -> tuple[np.ndarray, int]:
    """Per-edge unnormalised mass ``Ps * Pd`` at one walker's vertex,
    plus the number of Pd evaluations spent computing it.

    Used by the engines' zero-mass guard: when a walker's trials keep
    failing (possible under Meta-path when no out-edge has the required
    type), a single full scan decides between "no eligible out-edges —
    terminate" (paper section 2.2's no-positive-probability rule) and
    "eligible mass exists", in which case the engine samples exactly
    from the scanned distribution, bounding the worst case without
    changing the sampled law.
    """
    view = walkers.view(walker_id)
    vertex = view.current
    start, end = graph.edge_range(vertex)
    static = tables.static_weights
    mass = np.zeros(end - start, dtype=np.float64)
    evaluations = 0
    for offset, edge_index in enumerate(range(start, end)):
        if static[edge_index] <= 0.0:
            continue
        query = program.state_query(graph, view, edge_index)
        result = (
            program.answer_state_query(graph, query) if query is not None else None
        )
        dynamic = program.edge_dynamic_comp(graph, view, edge_index, result)
        evaluations += 1
        mass[offset] = static[edge_index] * dynamic
    return mass, evaluations


def full_scan_mass(
    graph,
    tables: StaticTables,
    program: WalkerProgram,
    walkers: WalkerSet,
    walker_id: int,
) -> tuple[float, int]:
    """Total unnormalised transition mass at one walker's vertex."""
    mass, evaluations = full_scan_distribution(
        graph, tables, program, walkers, walker_id
    )
    return float(mass.sum()), evaluations
