"""Vectorised rejection-sampling kernels.

The scalar :class:`~repro.sampling.rejection.RejectionSampler` defines
the semantics; these kernels execute the identical math over whole
batches of walkers with a handful of numpy operations per trial round.
Both the single-process :class:`~repro.core.engine.WalkEngine` and the
per-node compute of the cluster simulator call into them.

A *trial round* processes one rejection-sampling trial for each walker
in the batch:

1. choose a region per walker — the main dartboard or one folded
   outlier appendix — proportionally to area;
2. main region: draw a candidate edge from the static tables, throw
   the ``y`` dart, pre-accept at or below the lower bound, otherwise
   evaluate Pd for the candidate only;
3. appendix region: evaluate Pd for the declared outlier edge and
   accept with (true chopped area) / (estimated appendix area).

Walkers whose trial is rejected simply appear in the next round's
batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.program import WalkerProgram
from repro.core.walker import WalkerSet
from repro.sampling.alias import VertexAliasTables
from repro.sampling.its import VertexITSTables
from repro.sampling.rejection import SamplingCounters

__all__ = [
    "TrialOutcome",
    "MultiTrialOutcome",
    "GatherContext",
    "FullScanSpans",
    "KernelScratch",
    "ZERO_MASS_GUARD_TRIALS",
    "adaptive_trial_count",
    "batch_trial_round",
    "batch_multi_trial_round",
    "full_scan_distribution",
    "full_scan_mass",
    "full_scan_spans",
    "gather_stage",
]

StaticTables = VertexAliasTables | VertexITSTables

# After this many consecutive rejections a walker's vertex is fully
# scanned once to distinguish "unlucky" from "zero eligible mass".
# (Defined here so the kernels, the engines, and the step executor
# share one constant without import cycles.)
ZERO_MASS_GUARD_TRIALS = 64

# Fused-trial clamp: at least 2 trials per fused round (1 would be the
# single-trial kernel with extra bookkeeping), at most 16 (beyond the
# ~95th percentile of geometric waiting times worth speculating on).
TRIAL_FUSION_MIN = 2
TRIAL_FUSION_MAX = 16

# Fraction of walkers a fused round should resolve in expectation; the
# adaptive trial count is the geometric-distribution quantile at this
# level, so low acceptance rates speculate more trials per round and
# high acceptance rates stay near the clamp floor.
TRIAL_FUSION_RESOLVE_TARGET = 0.8


class KernelScratch:
    """Grow-only buffer pool reused across trial rounds.

    Step-mode engines call the kernels hundreds of times per walk with
    near-identical batch shapes; recycling the random-draw and mask
    buffers avoids re-allocating a few MB per round.  Buffers are keyed
    by name and grown geometrically, so a pool stabilises after the
    first few rounds.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, str], np.ndarray] = {}

    def get(self, name: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A writable array view of the requested shape (uninitialised)."""
        dtype = np.dtype(dtype)
        size = 1
        for extent in shape:  # math-only: np.prod costs an array per call
            size *= int(extent)
        key = (name, dtype.str)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.size < size:
            buffer = np.empty(max(size, 16), dtype=dtype)
            self._buffers[key] = buffer
        return buffer[:size].reshape(shape)

    def random(
        self, rng: np.random.Generator, name: str, shape: tuple[int, ...]
    ) -> np.ndarray:
        """Uniform [0, 1) draws written into a pooled buffer."""
        out = self.get(name, shape, np.float64)
        rng.random(out=out)
        return out


def adaptive_trial_count(
    counters: SamplingCounters,
    k_min: int = TRIAL_FUSION_MIN,
    k_max: int = TRIAL_FUSION_MAX,
    resolve_target: float = TRIAL_FUSION_RESOLVE_TARGET,
) -> int:
    """Trials per fused round, from the running acceptance rate.

    Picks the smallest K such that a walker accepting each trial with
    the observed probability ``r`` resolves within K trials with
    probability ``resolve_target`` — i.e. the geometric quantile
    ``ceil(log(1 - target) / log(1 - r))`` — clamped to
    ``[k_min, k_max]``.  Before any trials have been observed the clamp
    floor is used (speculating is pointless without evidence of
    rejections).
    """
    rate = counters.acceptance_rate()
    if rate is None:
        return k_min
    if rate >= 1.0:
        return k_min
    if rate <= 0.0:
        return k_max
    k = int(np.ceil(np.log(1.0 - resolve_target) / np.log(1.0 - rate)))
    return max(k_min, min(k_max, k))


@dataclass
class GatherContext:
    """Product of the Gather stage: per-lane state fetched once.

    The step-centric engine computes these arrays once per iteration
    (per surviving walker) and threads them through every sampling
    round, instead of re-gathering vertex state from the graph-wide
    arrays inside each kernel call.  ``classes`` carries the degree
    class per lane for the sampler selector; it is ``None`` when the
    caller does not select per class (the walker-centric engine).

    All arrays align lane-for-lane with ``walker_ids``.  Slicing with
    :meth:`take` keeps the alignment for shrinking pending sets.
    """

    walker_ids: np.ndarray
    vertices: np.ndarray
    upper: np.ndarray
    lower: np.ndarray
    main_area: np.ndarray
    classes: np.ndarray | None = None

    @property
    def size(self) -> int:
        return self.walker_ids.size

    def take(self, lanes: np.ndarray) -> "GatherContext":
        """The sub-context of the given lane positions (or mask)."""
        return GatherContext(
            walker_ids=self.walker_ids[lanes],
            vertices=self.vertices[lanes],
            upper=self.upper[lanes],
            lower=self.lower[lanes],
            main_area=self.main_area[lanes],
            classes=self.classes[lanes] if self.classes is not None else None,
        )


def gather_stage(
    tables: StaticTables,
    walkers: WalkerSet,
    walker_ids: np.ndarray,
    upper_bounds: np.ndarray,
    lower_bounds: np.ndarray,
    vertex_class: np.ndarray | None = None,
) -> GatherContext:
    """Fetch per-lane vertex state (the Gather stage) in one pass."""
    vertices = walkers.current[walker_ids]
    upper = upper_bounds[vertices]
    return GatherContext(
        walker_ids=walker_ids,
        vertices=vertices,
        upper=upper,
        lower=lower_bounds[vertices],
        main_area=tables.totals[vertices] * upper,
        classes=vertex_class[vertices] if vertex_class is not None else None,
    )


@dataclass
class TrialOutcome:
    """Result of one batch trial round.

    ``accepted`` and ``edges`` align with the input ``walker_ids``:
    where ``accepted[i]`` is True, ``edges[i]`` holds the flat index of
    the sampled edge; elsewhere ``edges[i]`` is -1.  ``pd_lanes`` lists
    the lane positions whose trial evaluated Pd (main-region misses of
    the pre-acceptance floor plus appendix darts) — the per-class
    evidence the sampler selector feeds on.
    """

    accepted: np.ndarray
    edges: np.ndarray
    pd_lanes: np.ndarray | None = None


@dataclass
class MultiTrialOutcome:
    """Result of one fused multi-trial round.

    All arrays align with the input ``walker_ids``.  ``trials_used`` is
    the number of sequential trials the walker *observably* consumed —
    the index of its first accepted trial plus one, or the full K when
    every speculated trial was rejected.  ``pd_evaluations`` counts the
    Pd evaluations attributable to those consumed trials; speculative
    evaluations past the first accept are performed but never counted,
    so counters match a sequential execution in distribution.  The
    per-walker breakdown exists because callers (the cluster engine's
    per-node accounting, the zero-mass guard's rejection streaks) need
    to attribute work to individual walkers, not just totals.
    """

    accepted: np.ndarray
    edges: np.ndarray
    trials_used: np.ndarray
    pd_evaluations: np.ndarray


def batch_trial_round(
    graph,
    tables: StaticTables,
    program: WalkerProgram,
    walkers: WalkerSet,
    walker_ids: np.ndarray,
    upper_bounds: np.ndarray,
    lower_bounds: np.ndarray,
    rng: np.random.Generator,
    counters: SamplingCounters,
    use_outliers: bool = True,
    validate_bounds: bool = False,
    gather: GatherContext | None = None,
    scratch: KernelScratch | None = None,
) -> TrialOutcome:
    """One rejection-sampling trial for every walker in ``walker_ids``.

    ``upper_bounds``/``lower_bounds`` are the per-vertex envelope
    arrays (length |V|).  Every walker must reside at a vertex with
    positive static mass; the engine filters dead ends beforehand.

    ``validate_bounds`` enables the debug check that every evaluated Pd
    respects the declared envelope (values above it are legal only on
    declared outlier edges).  A violated envelope silently skews the
    sampled law, so the check turns that bug into a loud
    :class:`~repro.errors.ProgramError` — at the cost of one comparison
    per evaluation, hence opt-in.

    ``gather`` supplies the Gather stage's pre-fetched per-lane state
    (the step-centric engine computes it once per iteration); without
    it the gathers run here.  ``scratch`` recycles the dart buffer
    across rounds; both options leave the RNG stream untouched, so a
    round with or without them is bit-identical.
    """
    count = walker_ids.size
    if gather is not None:
        vertices = gather.vertices
        upper = gather.upper
        lower = gather.lower
        main_area = gather.main_area
    else:
        vertices = walkers.current[walker_ids]
        upper = upper_bounds[vertices]
        lower = lower_bounds[vertices]
        main_area = tables.totals[vertices] * upper

    outlier_edges = None
    outlier_masses = None
    appendix_area = None
    if use_outliers:
        declared = program.batch_outliers(graph, walkers, walker_ids)
        if declared is not None:
            outlier_edges, outlier_bounds, outlier_widths, outlier_masses = declared
            appendix_area = np.where(
                outlier_edges >= 0,
                outlier_widths * np.maximum(outlier_bounds - upper, 0.0),
                0.0,
            )

    accepted = np.zeros(count, dtype=bool)
    edges = np.full(count, -1, dtype=np.int64)
    counters.trials += count

    if appendix_area is None:
        main_lanes = np.arange(count)
    else:
        total_area = main_area + appendix_area
        region = rng.random(count) * total_area
        in_main = region < main_area
        main_lanes = np.flatnonzero(in_main)
        appendix_lanes = np.flatnonzero(~in_main)
        _appendix_trials(
            graph,
            program,
            walkers,
            walker_ids,
            appendix_lanes,
            outlier_edges,
            outlier_masses,
            appendix_area,
            upper,
            rng,
            counters,
            accepted,
            edges,
        )

    pd_lanes = np.zeros(0, dtype=np.int64)
    if main_lanes.size:
        whole_batch = main_lanes.size == count
        candidates = tables.sample_batch(
            vertices if whole_batch else vertices[main_lanes], rng
        )
        if scratch is not None:
            darts = scratch.random(rng, "trial_darts", (main_lanes.size,))
            darts *= upper if whole_batch else upper[main_lanes]
        else:
            darts = rng.random(main_lanes.size) * (
                upper if whole_batch else upper[main_lanes]
            )
        pre = darts <= (lower if whole_batch else lower[main_lanes])
        counters.pre_accepts += int(pre.sum())
        pre_lanes = main_lanes[pre]
        accepted[pre_lanes] = True
        edges[pre_lanes] = candidates[pre]

        need = np.flatnonzero(~pre)
        if need.size:
            lanes = main_lanes[need]
            dynamic = program.batch_dynamic_comp(
                graph, walkers, walker_ids[lanes], candidates[need]
            )
            counters.pd_evaluations += need.size
            if validate_bounds:
                _validate_envelope(
                    graph,
                    dynamic,
                    upper[lanes],
                    candidates[need],
                    outlier_edges[lanes] if outlier_edges is not None else None,
                )
            passed = darts[need] <= dynamic
            ok_lanes = lanes[passed]
            accepted[ok_lanes] = True
            edges[ok_lanes] = candidates[need][passed]
            pd_lanes = lanes

    if appendix_area is not None and appendix_lanes.size:
        pd_lanes = np.concatenate([pd_lanes, appendix_lanes])

    counters.accepts += int(accepted.sum())
    return TrialOutcome(accepted=accepted, edges=edges, pd_lanes=pd_lanes)


def _validate_envelope(
    graph,
    dynamic: np.ndarray,
    upper: np.ndarray,
    candidate_edges: np.ndarray,
    declared_outliers: np.ndarray | None,
) -> None:
    """Raise if any evaluated Pd exceeds its envelope illegitimately.

    Exemption is by *target vertex* of the declared outlier, so all
    parallel copies of a folded edge (which share its Pd) are covered.
    """
    from repro.errors import ProgramError

    over = dynamic > upper * (1.0 + 1e-12)
    if declared_outliers is not None:
        has_outlier = declared_outliers >= 0
        same_target = np.zeros(candidate_edges.size, dtype=bool)
        same_target[has_outlier] = (
            graph.targets[candidate_edges[has_outlier]]
            == graph.targets[declared_outliers[has_outlier]]
        )
        over &= ~same_target
    if over.any():
        lane = int(np.flatnonzero(over)[0])
        raise ProgramError(
            f"edgeDynamicComp returned {dynamic[lane]} above the declared "
            f"envelope {upper[lane]} for a non-outlier edge "
            f"{int(candidate_edges[lane])}; the sampled law would be wrong"
        )


def _appendix_trials(
    graph,
    program: WalkerProgram,
    walkers: WalkerSet,
    walker_ids: np.ndarray,
    lanes: np.ndarray,
    outlier_edges: np.ndarray,
    outlier_masses: np.ndarray,
    appendix_area: np.ndarray,
    upper: np.ndarray,
    rng: np.random.Generator,
    counters: SamplingCounters,
    accepted: np.ndarray,
    edges: np.ndarray,
) -> None:
    """Darts landing in outlier appendices (mutates accepted/edges)."""
    if lanes.size == 0:
        return
    counters.appendix_trials += lanes.size
    target_edges = outlier_edges[lanes]
    dynamic = program.batch_dynamic_comp(
        graph, walkers, walker_ids[lanes], target_edges
    )
    counters.pd_evaluations += lanes.size
    chopped = outlier_masses[lanes] * np.maximum(dynamic - upper[lanes], 0.0)
    passed = rng.random(lanes.size) * appendix_area[lanes] < chopped
    ok_lanes = lanes[passed]
    accepted[ok_lanes] = True
    edges[ok_lanes] = target_edges[passed]


def batch_multi_trial_round(
    graph,
    tables: StaticTables,
    program: WalkerProgram,
    walkers: WalkerSet,
    walker_ids: np.ndarray,
    upper_bounds: np.ndarray,
    lower_bounds: np.ndarray,
    rng: np.random.Generator,
    counters: SamplingCounters,
    num_trials: int,
    use_outliers: bool = True,
    validate_bounds: bool = False,
    scratch: KernelScratch | None = None,
    gather: GatherContext | None = None,
) -> MultiTrialOutcome:
    """K speculative rejection trials per walker, fused into one round.

    Semantically equivalent to running :func:`batch_trial_round` up to
    ``num_trials`` times on the shrinking rejected set, but all K
    candidate/dart pairs are drawn in one shot and each walker's first
    accepted trial is resolved with a vectorised first-success
    selection (accept-mask ``argmax`` over the (walker, trial) cell
    layout).  Trials past the first accept are *speculative*: their
    darts are drawn and their Pd may be evaluated, but they contribute
    nothing to the outcome or the counters, so the sampled law and the
    counter totals match a sequential execution trial-for-trial.

    Counter accounting per walker with first accept at column ``a``
    (``a = K`` when all trials rejected):

    - ``trials``         += ``min(a + 1, K)``
    - ``pre_accepts``    += 1 iff the accepting cell pre-accepted
    - ``pd_evaluations`` += Pd-requiring cells at columns ``<= a``
    - ``appendix_trials``+= appendix cells at columns ``<= a``

    The per-walker consumption is also returned (see
    :class:`MultiTrialOutcome`) so distributed callers can attribute
    work to nodes and rejection streaks can advance by trials consumed.
    """
    count = walker_ids.size
    k = int(num_trials)
    if k < 1:
        raise ValueError("num_trials must be >= 1")
    if scratch is None:
        scratch = KernelScratch()

    if gather is not None:
        vertices = gather.vertices
        upper = gather.upper
        lower = gather.lower
        main_area = gather.main_area
    else:
        vertices = walkers.current[walker_ids]
        upper = upper_bounds[vertices]
        lower = lower_bounds[vertices]
        main_area = tables.totals[vertices] * upper

    outlier_edges = None
    outlier_masses = None
    appendix_area = None
    if use_outliers:
        declared = program.batch_outliers(graph, walkers, walker_ids)
        if declared is not None:
            outlier_edges, outlier_bounds, outlier_widths, outlier_masses = declared
            appendix_area = np.where(
                outlier_edges >= 0,
                outlier_widths * np.maximum(outlier_bounds - upper, 0.0),
                0.0,
            )
            if not appendix_area.any():
                appendix_area = None

    cols = np.arange(k)

    # Region choice and candidate/dart draws for every (walker, trial)
    # cell.  Darts are thrown for appendix cells too — an independent
    # wasted draw changes nothing distributionally and keeps the dart
    # matrix a single vectorised fill.
    darts = scratch.random(rng, "darts", (count, k))
    if appendix_area is None:
        in_main = None
        candidates = tables.sample_batch(np.repeat(vertices, k), rng).reshape(
            count, k
        )
        darts *= upper[:, None]
        pre = darts <= lower[:, None]
    else:
        total_area = main_area + appendix_area
        region = scratch.random(rng, "region", (count, k))
        region *= total_area[:, None]
        in_main = region < main_area[:, None]
        main_rows, main_cols = np.nonzero(in_main)
        candidates = scratch.get("candidates", (count, k), np.int64)
        candidates.fill(-1)
        if main_rows.size:
            candidates[main_rows, main_cols] = tables.sample_batch(
                vertices[main_rows], rng
            )
        darts *= upper[:, None]
        pre = in_main & (darts <= lower[:, None])

    # First pre-accepting column per walker; trials beyond it are dead
    # speculation and need no Pd at all.
    pre_any = pre.any(axis=1)
    pre_pos = np.where(pre_any, pre.argmax(axis=1), k)
    live = cols[None, :] < pre_pos[:, None]

    accept = scratch.get("accept", (count, k), bool)
    np.copyto(accept, pre)

    # Main-region cells needing a Pd evaluation.
    if in_main is None and not pre_any.any():
        # Fast path for no appendix and no pre-accepts (e.g. a zero
        # lower bound): every cell needs Pd, so evaluate the whole cell
        # matrix flat and skip the nonzero/gather machinery.
        need_pd = None
        dynamic = program.batch_dynamic_comp(
            graph, walkers, np.repeat(walker_ids, k), candidates.reshape(-1)
        )
        if validate_bounds:
            _validate_envelope(
                graph,
                dynamic,
                np.repeat(upper, k),
                candidates.reshape(-1),
                np.repeat(outlier_edges, k) if outlier_edges is not None else None,
            )
        np.less_equal(
            darts.reshape(-1), dynamic, out=accept.reshape(-1)
        )
    else:
        if in_main is None:
            need_pd = live & ~pre
        else:
            need_pd = live & in_main & ~pre
        pd_rows, pd_cols = np.nonzero(need_pd)
        if pd_rows.size:
            cell_candidates = candidates[pd_rows, pd_cols]
            dynamic = program.batch_dynamic_comp(
                graph, walkers, walker_ids[pd_rows], cell_candidates
            )
            if validate_bounds:
                _validate_envelope(
                    graph,
                    dynamic,
                    upper[pd_rows],
                    cell_candidates,
                    outlier_edges[pd_rows] if outlier_edges is not None else None,
                )
            passed = darts[pd_rows, pd_cols] <= dynamic
            accept[pd_rows[passed], pd_cols[passed]] = True

    # Appendix cells: the outlier's Pd is a per-walker constant (same
    # edge, same walker state), so evaluate it once per walker and
    # broadcast, then draw the chopped-area coin per cell.
    if in_main is None:
        appendix_cells = None
    else:
        appendix_cells = live & ~in_main
        ap_rows, ap_cols = np.nonzero(appendix_cells)
        if ap_rows.size:
            ap_walkers = np.unique(ap_rows)
            dynamic_out = program.batch_dynamic_comp(
                graph, walkers, walker_ids[ap_walkers], outlier_edges[ap_walkers]
            )
            chopped = np.zeros(count, dtype=np.float64)
            chopped[ap_walkers] = outlier_masses[ap_walkers] * np.maximum(
                dynamic_out - upper[ap_walkers], 0.0
            )
            coins = rng.random(ap_rows.size) * appendix_area[ap_rows]
            passed = coins < chopped[ap_rows]
            accept[ap_rows[passed], ap_cols[passed]] = True

    # First-success selection.
    accepted = accept.any(axis=1)
    first = np.where(accepted, accept.argmax(axis=1), k)
    trials_used = np.minimum(first + 1, k).astype(np.int64)

    edges = np.full(count, -1, dtype=np.int64)
    hit = np.flatnonzero(accepted)
    if hit.size:
        hit_cols = first[hit]
        if in_main is None:
            edges[hit] = candidates[hit, hit_cols]
        else:
            from_main = in_main[hit, hit_cols]
            edges[hit] = np.where(
                from_main, candidates[hit, hit_cols], outlier_edges[hit]
            )

    # Counters: only cells at columns <= first accept are "consumed";
    # speculative work past the accept is free and uncounted.
    if need_pd is None:
        # No pre-accepts and no appendix: every consumed cell is a
        # main-region Pd evaluation.
        pd_per_walker = trials_used.copy()
    else:
        consumed = cols[None, :] <= first[:, None]
        pd_per_walker = (need_pd & consumed).sum(axis=1).astype(np.int64)
        if appendix_cells is not None:
            appendix_consumed = appendix_cells & consumed
            pd_per_walker += appendix_consumed.sum(axis=1)
            counters.appendix_trials += int(appendix_consumed.sum())
    counters.trials += int(trials_used.sum())
    counters.pd_evaluations += int(pd_per_walker.sum())
    counters.pre_accepts += int((pre_any & (first == pre_pos)).sum())
    counters.accepts += int(accepted.sum())

    return MultiTrialOutcome(
        accepted=accepted,
        edges=edges,
        trials_used=trials_used,
        pd_evaluations=pd_per_walker,
    )


@dataclass
class FullScanSpans:
    """Per-edge masses of several walkers' full vertex scans.

    Everything a caller needs to resolve each walker exactly:
    ``running`` is the cumulative ``Ps * Pd`` mass over the
    concatenated spans, ``boundaries[i]:boundaries[i+1]`` delimits
    walker ``i``'s slice of ``flat_edges``, ``totals[i]`` is its
    eligible mass (``<= 0`` means no eligible out-edge — terminate),
    and ``evaluations[i]`` counts the Pd evaluations spent on it (the
    distributed engine charges them to the walker's node).

    Shared by the engines' zero-mass guard and the step engine's
    ``full_scan`` strategy, so both resolve walkers through the same
    vectorised span assembly (one ``batch_dynamic_comp`` over the
    concatenated spans, one global-CDF ``searchsorted`` for the
    draws).
    """

    flat_edges: np.ndarray
    boundaries: np.ndarray
    running: np.ndarray
    totals: np.ndarray
    evaluations: np.ndarray

    def sample(
        self, lanes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Exact draws for the given (positive-mass) lanes; returns
        flat edge indices.  One ``rng.random`` call of ``lanes.size``."""
        seg_start = self.boundaries[:-1][lanes]
        base = np.where(seg_start > 0, self.running[seg_start - 1], 0.0)
        draws = base + rng.random(lanes.size) * self.totals[lanes]
        positions = np.searchsorted(self.running, draws, side="right")
        positions = np.clip(
            positions, seg_start, self.boundaries[1:][lanes] - 1
        )
        return self.flat_edges[positions]


def full_scan_spans(
    graph,
    tables: StaticTables,
    program: WalkerProgram,
    walkers: WalkerSet,
    walker_ids: np.ndarray,
) -> FullScanSpans:
    """Vectorised ``Ps * Pd`` over every walker's whole edge slice.

    Every walker must sit at a vertex with at least one out-edge (the
    engines filter dead ends through Pe first).  Consumes no
    randomness — sampling is the caller's move stage.
    """
    vertices = walkers.current[walker_ids].astype(np.int64)
    starts = graph.offsets[vertices].astype(np.int64)
    counts = graph.offsets[vertices + 1].astype(np.int64) - starts
    boundaries = np.zeros(walker_ids.size + 1, dtype=np.int64)
    np.cumsum(counts, out=boundaries[1:])
    flat_edges = np.repeat(starts - boundaries[:-1], counts) + np.arange(
        boundaries[-1]
    )
    owner = np.repeat(np.arange(walker_ids.size), counts)

    static = tables.static_weights[flat_edges]
    mass = np.zeros(flat_edges.size, dtype=np.float64)
    positive = np.flatnonzero(static > 0.0)
    evaluations = np.zeros(walker_ids.size, dtype=np.int64)
    if positive.size:
        dynamic = program.batch_dynamic_comp(
            graph, walkers, walker_ids[owner[positive]], flat_edges[positive]
        )
        mass[positive] = static[positive] * dynamic
        evaluations = np.bincount(owner[positive], minlength=walker_ids.size)

    running = np.cumsum(mass)
    totals = np.add.reduceat(mass, boundaries[:-1])
    return FullScanSpans(
        flat_edges=flat_edges,
        boundaries=boundaries,
        running=running,
        totals=totals,
        evaluations=evaluations,
    )


def full_scan_distribution(
    graph,
    tables: StaticTables,
    program: WalkerProgram,
    walkers: WalkerSet,
    walker_id: int,
) -> tuple[np.ndarray, int]:
    """Per-edge unnormalised mass ``Ps * Pd`` at one walker's vertex,
    plus the number of Pd evaluations spent computing it.

    Used by the engines' zero-mass guard: when a walker's trials keep
    failing (possible under Meta-path when no out-edge has the required
    type), a single full scan decides between "no eligible out-edges —
    terminate" (paper section 2.2's no-positive-probability rule) and
    "eligible mass exists", in which case the engine samples exactly
    from the scanned distribution, bounding the worst case without
    changing the sampled law.
    """
    view = walkers.view(walker_id)
    vertex = view.current
    start, end = graph.edge_range(vertex)
    static = tables.static_weights
    mass = np.zeros(end - start, dtype=np.float64)
    evaluations = 0
    for offset, edge_index in enumerate(range(start, end)):
        if static[edge_index] <= 0.0:
            continue
        query = program.state_query(graph, view, edge_index)
        result = (
            program.answer_state_query(graph, query) if query is not None else None
        )
        dynamic = program.edge_dynamic_comp(graph, view, edge_index, result)
        evaluations += 1
        mass[offset] = static[edge_index] * dynamic
    return mass, evaluations


def full_scan_mass(
    graph,
    tables: StaticTables,
    program: WalkerProgram,
    walkers: WalkerSet,
    walker_id: int,
) -> tuple[float, int]:
    """Total unnormalised transition mass at one walker's vertex."""
    mass, evaluations = full_scan_distribution(
        graph, tables, program, walkers, walker_id
    )
    return float(mass.sum()), evaluations
