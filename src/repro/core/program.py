"""The walker-centric programming model (paper section 5.2).

A random walk algorithm is specified by subclassing
:class:`WalkerProgram` and overriding the hooks that correspond one-to-
one to KnightKing's APIs:

==========================  =======================================
paper API (Figure 4)        WalkerProgram hook
==========================  =======================================
``edgeStaticComp``          :meth:`WalkerProgram.edge_static_comp`
``edgeDynamicComp``         :meth:`WalkerProgram.edge_dynamic_comp`
``dynamicCompUpperBound``   :meth:`WalkerProgram.dynamic_upper_bound`
``dynamicCompLowerBound``   :meth:`WalkerProgram.dynamic_lower_bound`
``postStateQuery``          :meth:`WalkerProgram.state_query`
(query execution)           :meth:`WalkerProgram.answer_state_query`
(outlier declaration)       :meth:`WalkerProgram.outlier_specs`
==========================  =======================================

The unified transition probability is
``P(e) = Ps(e) * Pd(e, v, w) * Pe(v, w)``: Ps comes from
``edge_static_comp`` (pre-processed into alias/ITS tables at init), Pd
from ``edge_dynamic_comp`` (evaluated lazily per rejection-sampling
trial), and Pe from the termination configuration plus
:meth:`WalkerProgram.should_continue`.

Programs may additionally provide *batch* hooks
(:attr:`supports_batch`, :meth:`batch_dynamic_comp`,
:meth:`batch_outliers`); the engines then process walkers in vectorised
numpy batches instead of one Python call per trial.  The scalar hooks
remain the semantic definition — tests assert the two paths agree.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.core.walker import WalkerSet, WalkerView
from repro.errors import ProgramError
from repro.graph.csr import CSRGraph
from repro.sampling.rejection import OutlierSpec

__all__ = ["WalkerProgram", "StateQuery"]


class StateQuery(NamedTuple):
    """A walker-to-vertex state query (paper section 5.1).

    ``target_vertex`` is the vertex whose owner must answer (node2vec
    asks the walker's previous stop); ``payload`` is algorithm-defined
    (node2vec sends the candidate vertex to test adjacency against).
    """

    target_vertex: int
    payload: int


class WalkerProgram:
    """Base class for random walk algorithm definitions.

    Class attributes
    ----------------
    name:
        human-readable algorithm name (used in reports).
    dynamic:
        whether the algorithm has a non-trivial Pd.  Static programs
        (``dynamic = False``) skip Pd evaluation entirely: the engine
        sets upper == lower so every trial pre-accepts, morphing
        rejection sampling into plain alias/ITS sampling.
    order:
        1 for first-order walks; 2 for second-order (the engine then
        runs the two-round walker-to-vertex query protocol in
        distributed mode).
    supports_batch:
        whether the batch hooks are implemented.
    history_depth:
        how many recent stops the engine must keep per walker (the
        paper's unified definition lets walker state carry "the
        previous n vertices visited"; 1 is enough for the second-order
        algorithms it evaluates).
    """

    name: str = "custom"
    dynamic: bool = False
    order: int = 1
    supports_batch: bool = False
    history_depth: int = 1

    # ------------------------------------------------------------------
    # Static component Ps
    # ------------------------------------------------------------------
    def edge_static_comp(self, graph: CSRGraph) -> np.ndarray | None:
        """Per-edge static components as a flat array, or ``None``.

        ``None`` (the default) means "use edge weights, or 1.0 when the
        graph is unweighted" — the convention of the paper's sample
        code, where ``edgeStaticComp`` returns ``e.weight``.
        """
        return None

    # ------------------------------------------------------------------
    # Dynamic component Pd and its bounds
    # ------------------------------------------------------------------
    def dynamic_upper_bound(self, graph: CSRGraph, vertex: int) -> float:
        """Per-vertex envelope Q(v); mandatory for dynamic programs.

        Must upper-bound Pd over all *non-outlier* edges of ``vertex``
        for every possible walker state.
        """
        return 1.0

    def dynamic_lower_bound(self, graph: CSRGraph, vertex: int) -> float:
        """Optional pre-acceptance bound L(v); 0 disables it.

        Must lower-bound Pd over all edges of ``vertex`` for every
        possible walker state.
        """
        return 0.0

    def upper_bound_array(self, graph: CSRGraph) -> np.ndarray:
        """Vectorised per-vertex envelopes; defaults to looping the
        scalar hook.  Programs with constant bounds should override."""
        return np.asarray(
            [
                self.dynamic_upper_bound(graph, vertex)
                for vertex in range(graph.num_vertices)
            ],
            dtype=np.float64,
        )

    def lower_bound_array(self, graph: CSRGraph) -> np.ndarray:
        return np.asarray(
            [
                self.dynamic_lower_bound(graph, vertex)
                for vertex in range(graph.num_vertices)
            ],
            dtype=np.float64,
        )

    def edge_dynamic_comp(
        self,
        graph: CSRGraph,
        walker: WalkerView,
        edge_index: int,
        query_result: object | None = None,
    ) -> float:
        """Dynamic component Pd of one candidate edge.

        For second-order programs the engine first runs the state-query
        round and passes the answer in ``query_result``; first-order
        programs receive ``None``.
        """
        return 1.0

    # ------------------------------------------------------------------
    # Walker-to-vertex state queries (second order)
    # ------------------------------------------------------------------
    def state_query(
        self, graph: CSRGraph, walker: WalkerView, edge_index: int
    ) -> StateQuery | None:
        """Query to post for a candidate edge, or ``None`` if this
        trial needs no remote state (paper: ``postStateQuery``)."""
        return None

    def answer_state_query(self, graph: CSRGraph, query: StateQuery) -> object:
        """Execute a query at the node owning ``query.target_vertex``.

        The default implements the standard ``postNeighbourQuery``
        utility: is ``payload`` a neighbour of ``target_vertex``?
        """
        return graph.has_edge(query.target_vertex, query.payload)

    # ------------------------------------------------------------------
    # Outlier folding (paper section 4.2)
    # ------------------------------------------------------------------
    def outlier_specs(
        self, graph: CSRGraph, walker: WalkerView
    ) -> tuple[OutlierSpec, ...]:
        """Outlier edges whose Pd may exceed the envelope, with their
        own bounds.  Default: none."""
        return ()

    # ------------------------------------------------------------------
    # Walker lifecycle and the extension component Pe
    # ------------------------------------------------------------------
    def setup_walkers(
        self, graph: CSRGraph, walkers: WalkerSet, rng: np.random.Generator
    ) -> None:
        """Initialise custom per-walker state (e.g. Meta-path scheme
        assignment).  Default: nothing."""

    def should_continue(self, graph: CSRGraph, walker: WalkerView) -> bool:
        """Extra algorithm-specific continuation test, checked after
        the configured step-limit/termination-probability components of
        Pe.  Default: always continue."""
        return True

    def teleport_targets(
        self,
        graph: CSRGraph,
        walkers: WalkerSet,
        walker_ids: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Walkers that jump this iteration instead of sampling an edge.

        Returns aligned ``(walker_ids, target_vertices)`` for the
        subset that teleports, or ``None`` (default) for algorithms
        without teleportation.  Supports restart-style walks (random
        walk with restart jumps back to its start vertex with a fixed
        probability each step).  A teleport counts as a step.
        """
        return None

    # ------------------------------------------------------------------
    # Optional vectorised hooks
    # ------------------------------------------------------------------
    def batch_dynamic_comp(
        self,
        graph: CSRGraph,
        walkers: WalkerSet,
        walker_ids: np.ndarray,
        candidate_edges: np.ndarray,
    ) -> np.ndarray:
        """Vectorised Pd for aligned (walker, candidate edge) pairs."""
        raise ProgramError(
            f"{type(self).__name__} does not implement batch_dynamic_comp"
        )

    def batch_outliers(
        self, graph: CSRGraph, walkers: WalkerSet, walker_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """At most one outlier per walker, as aligned arrays
        ``(edges, pd_bounds, widths, static_masses)`` with edge -1
        meaning "none".  ``widths`` are estimated (upper-bound) static
        masses used for appendix sizing; ``static_masses`` the exact
        masses used in the acceptance correction.  ``None`` (default)
        disables vectorised outlier folding."""
        return None

    def batch_state_queries(
        self,
        graph: CSRGraph,
        walkers: WalkerSet,
        walker_ids: np.ndarray,
        candidate_edges: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Queries to post per (walker, candidate) pair, as aligned
        ``(target_vertices, payloads)`` arrays; target -1 means Pd is
        resolvable locally and no message is needed.

        The distributed engine batches these into the two-round
        walker-to-vertex exchange (steps 2-4 of the paper's iteration).
        The default loops the scalar :meth:`state_query` hook.
        """
        targets = np.full(walker_ids.size, -1, dtype=np.int64)
        payloads = np.zeros(walker_ids.size, dtype=np.int64)
        for lane, (walker_id, edge) in enumerate(zip(walker_ids, candidate_edges)):
            query = self.state_query(
                graph, walkers.view(int(walker_id)), int(edge)
            )
            if query is not None:
                targets[lane] = query.target_vertex
                payloads[lane] = query.payload
        return targets, payloads

    def batch_answer_queries(
        self,
        graph: CSRGraph,
        query_targets: np.ndarray,
        payloads: np.ndarray,
    ) -> np.ndarray:
        """Vectorised query execution at the owning node.

        Default: the standard neighbour query (is ``payload`` adjacent
        to ``target``?), matching :meth:`answer_state_query`.
        """
        return graph.has_edges_batch(query_targets, payloads).astype(np.float64)

    def batch_dynamic_with_answers(
        self,
        graph: CSRGraph,
        walkers: WalkerSet,
        walker_ids: np.ndarray,
        candidate_edges: np.ndarray,
        answers: np.ndarray,
        answered: np.ndarray,
    ) -> np.ndarray:
        """Pd for aligned (walker, candidate) pairs given query answers.

        ``answers[i]`` is valid where ``answered[i]`` is True (the lane
        posted a query in this iteration).  First-order programs ignore
        the answers; the default delegates to :meth:`batch_dynamic_comp`.
        """
        return self.batch_dynamic_comp(graph, walkers, walker_ids, candidate_edges)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Sanity-check attribute combinations."""
        if self.order not in (1, 2):
            raise ProgramError("order must be 1 or 2")
        if self.order == 2 and not self.dynamic:
            raise ProgramError("second-order programs are dynamic by definition")
        if self.history_depth < 1:
            raise ProgramError("history_depth must be at least 1")

    def __repr__(self) -> str:
        kind = "dynamic" if self.dynamic else "static"
        return f"{type(self).__name__}(name={self.name!r}, {kind}, order={self.order})"
