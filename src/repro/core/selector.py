"""Per-degree-class sampler selection for the step-centric engine.

KnightKing fixes one sampling strategy per algorithm: alias (or ITS)
candidate generation inside rejection sampling, with a full scan only
as the zero-mass guard of last resort.  FlexiWalker (PAPERS.md) shows
the better strategy varies *within* one walk — by vertex degree and by
the observed acceptance rate — so this module replaces the global
choice with a per-degree-class decision re-evaluated as the walk runs.

Vertices are bucketed into logarithmic out-degree classes (class ``c``
holds degrees in ``[2**c, 2**(c+1))``).  For each class the selector
chooses between three resolution strategies:

* ``rejection`` — the paper's envelope/dart scheme (the incumbent);
* ``full_scan`` — evaluate ``Ps * Pd`` over the whole edge slice and
  move by one exact CDF draw, which beats rejection when the expected
  trial count exceeds the slice length (low acceptance rates, scheme
  dead ends in Meta-path);
* ``direct``   — plain candidate sampling with no dart at all, exact
  for static programs where Pd is identically 1.

and, independently, between the two static candidate generators
(``alias`` vs ``its``) — decided once per class from their fixed
per-draw costs, since neither depends on runtime feedback.

The cost model is deliberately small and *deterministic*: its only
inputs are per-class counters (trials, accepts, Pd evaluations — all
carried in :class:`SamplerDecisionStats`, which lives on
:class:`~repro.core.stats.WalkStats` so checkpoint/rewind replays the
same decisions) and static per-class mean degrees.  Wall-clock never
feeds a decision, so two runs of one seeded config always pick the
same strategies in the same iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "NUM_DEGREE_CLASSES",
    "STRATEGY_REJECTION",
    "STRATEGY_FULL_SCAN",
    "STRATEGY_DIRECT",
    "STRATEGY_NAMES",
    "SamplerDecisionStats",
    "SamplerSelector",
    "classify_degrees",
    "degree_class_label",
]

# Log2 degree classes 0..11; the last class is open-ended ("&ge;2048").
NUM_DEGREE_CLASSES = 12
_CLASS_BOUNDARIES = 2 ** np.arange(1, NUM_DEGREE_CLASSES, dtype=np.int64)

# Strategy codes, also indices into per-class decision arrays.
STRATEGY_REJECTION = 0
STRATEGY_FULL_SCAN = 1
STRATEGY_DIRECT = 2
STRATEGY_NAMES = ("rejection", "full_scan", "direct")

# ---------------------------------------------------------------------------
# Cost model constants, in "lane-ops" (one vectorised gather or one
# uniform draw across a batch lane ~ 1).  Absolute values matter less
# than ratios; INTERNALS.md section 12 documents the calibration.
# ---------------------------------------------------------------------------
# One rejection trial: candidate draw (2 ops alias), dart draw, dart
# compare, accept bookkeeping.
COST_TRIAL = 4.0
# One Pd evaluation through a program batch hook (hash probe or state
# compare plus the dispatch overhead amortised over a batch).
COST_PD = 2.0
# Full scan: per-edge static gather + mass multiply, plus a fixed
# span-assembly overhead per lane (repeat/reduceat/searchsorted).
COST_SCAN_EDGE = 1.0
COST_SCAN_SETUP = 4.0
# Candidate generators: alias = 2 uniforms + 2 gathers; ITS = 1
# uniform + a binary search over the global CDF (log2 |E| probes with
# poor locality, discounted because the probes are in one C loop).
COST_ALIAS_DRAW = 4.0
ITS_SEARCH_DISCOUNT = 0.5

# A class switches strategy only when the challenger is at least this
# factor cheaper — hysteresis against flapping on noisy early rates.
SWITCH_MARGIN = 1.25
# Acceptance rates are trusted only after this many observed trials in
# a class; before that the incumbent stays.
MIN_CLASS_TRIALS = 256
# Rejection's expected trial count is capped by the zero-mass guard.
MAX_EXPECTED_TRIALS = 64.0

# Group-size histogram buckets (walkers co-located on one vertex).
_GROUP_BUCKETS = ((1, "1"), (3, "2-3"), (7, "4-7"), (None, "8+"))


def classify_degrees(degrees: np.ndarray) -> np.ndarray:
    """Map out-degrees to log2 class indices (vectorised, int8)."""
    return np.digitize(
        np.asarray(degrees, dtype=np.int64), _CLASS_BOUNDARIES
    ).astype(np.int8)


def degree_class_label(index: int) -> str:
    """Human-readable degree range of one class, e.g. ``"4-7"``."""
    low = 1 << index if index > 0 else 0
    if index >= NUM_DEGREE_CLASSES - 1:
        return f">={low}"
    high = (1 << (index + 1)) - 1
    return f"{low}-{high}" if high > low else f"{low}"


def _zero_classes() -> np.ndarray:
    return np.zeros(NUM_DEGREE_CLASSES, dtype=np.int64)


def _default_choices() -> np.ndarray:
    return np.full(NUM_DEGREE_CLASSES, STRATEGY_REJECTION, dtype=np.int8)


@dataclass(eq=False)
class SamplerDecisionStats:
    """Auditable record (and working state) of sampler auto-selection.

    Lives on :class:`~repro.core.stats.WalkStats` so the distributed
    engine's checkpoint/restore (which deep-copies stats) rewinds the
    selector's evidence together with everything else — a replayed
    superstep re-derives identical decisions.

    ``trials/accepts/pd_by_class`` count rejection work per degree
    class; ``lanes_by_class`` counts resolved lanes per (class,
    strategy) so the decision mix is visible after the run;
    ``switch_events`` records every strategy change with its iteration;
    ``group_size_histogram`` samples how many co-located walkers share
    a vertex (the gather stage's grouping opportunity).
    """

    policy: str = "fixed"
    candidate_source: str = "alias"
    trials_by_class: np.ndarray = field(default_factory=_zero_classes)
    accepts_by_class: np.ndarray = field(default_factory=_zero_classes)
    pd_by_class: np.ndarray = field(default_factory=_zero_classes)
    lanes_by_class: np.ndarray = field(
        default_factory=lambda: np.zeros(
            (NUM_DEGREE_CLASSES, len(STRATEGY_NAMES)), dtype=np.int64
        )
    )
    chosen_strategy: np.ndarray = field(default_factory=_default_choices)
    source_by_class: np.ndarray = field(
        default_factory=lambda: np.zeros(NUM_DEGREE_CLASSES, dtype=np.int8)
    )
    switch_events: list[dict[str, Any]] = field(default_factory=list)
    group_size_histogram: dict[str, int] = field(default_factory=dict)

    def record_group_sizes(self, sizes: np.ndarray) -> None:
        """Fold one sampled iteration's vertex-group sizes in."""
        previous = 0
        for bound, label in _GROUP_BUCKETS:
            if bound is None:
                count = int((sizes > previous).sum())
            else:
                count = int(((sizes > previous) & (sizes <= bound)).sum())
                previous = bound
            if count:
                self.group_size_histogram[label] = (
                    self.group_size_histogram.get(label, 0) + count
                )

    def chosen_by_class(self) -> dict[str, str]:
        """Latest strategy per degree class that resolved any lane."""
        chosen: dict[str, str] = {}
        touched = self.lanes_by_class.sum(axis=1) > 0
        for index in np.flatnonzero(touched):
            chosen[degree_class_label(int(index))] = STRATEGY_NAMES[
                int(self.chosen_strategy[index])
            ]
        return chosen

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready summary for the perf harness and WalkResult dumps."""
        lanes: dict[str, dict[str, int]] = {}
        for index in range(NUM_DEGREE_CLASSES):
            row = self.lanes_by_class[index]
            if row.sum() == 0:
                continue
            lanes[degree_class_label(index)] = {
                STRATEGY_NAMES[s]: int(row[s])
                for s in range(len(STRATEGY_NAMES))
                if row[s]
            }
        return {
            "policy": self.policy,
            "candidate_source": self.candidate_source,
            "chosen_by_class": self.chosen_by_class(),
            "lanes_by_class": lanes,
            "switch_events": list(self.switch_events),
            "group_size_histogram": dict(self.group_size_histogram),
        }


class SamplerSelector:
    """Stateless decision logic over :class:`SamplerDecisionStats`.

    All mutable evidence lives on the stats object passed into each
    call (see its docstring for why); the selector itself holds only
    static per-class facts derived from the graph at init.
    """

    def __init__(
        self,
        degrees: np.ndarray,
        vertex_class: np.ndarray,
        dynamic: bool,
        num_edges: int,
    ) -> None:
        self.dynamic = dynamic
        counts = np.bincount(
            vertex_class, minlength=NUM_DEGREE_CLASSES
        ).astype(np.float64)
        mass = np.bincount(
            vertex_class,
            weights=np.asarray(degrees, dtype=np.float64),
            minlength=NUM_DEGREE_CLASSES,
        )
        with np.errstate(invalid="ignore"):
            mean = np.where(counts > 0, mass / np.maximum(counts, 1), 0.0)
        self.mean_degree_by_class = mean
        # Per-draw candidate generator costs (static, per class).
        self._its_draw_cost = 1.0 + ITS_SEARCH_DISCOUNT * np.log2(
            max(num_edges, 2)
        )

    # ------------------------------------------------------------------
    def initial_decisions(
        self, stats: SamplerDecisionStats, primary_source: str
    ) -> None:
        """Seed the per-class choices before the first iteration.

        Static programs resolve every class with ``direct`` (Pd is 1,
        so a dart can never reject — the strategies coincide in law).
        The candidate source is decided here once: its per-draw costs
        are fixed properties of the structures, not runtime feedback.
        """
        if not self.dynamic:
            stats.chosen_strategy[:] = STRATEGY_DIRECT
        alias_wins = COST_ALIAS_DRAW <= self._its_draw_cost
        chosen = "alias" if alias_wins else "its"
        stats.candidate_source = chosen
        stats.source_by_class[:] = 0 if chosen == "alias" else 1
        if chosen != primary_source:
            stats.switch_events.append(
                {
                    "iteration": 0,
                    "degree_class": "*",
                    "from": primary_source,
                    "to": chosen,
                    "what": "candidate_source",
                }
            )

    def decide(self, stats: SamplerDecisionStats, iteration: int) -> np.ndarray:
        """Re-evaluate per-class strategies; returns the choices array.

        Rejection's expected cost per resolved lane is
        ``E[trials] * (COST_TRIAL + pd_fraction * COST_PD)`` with
        ``E[trials] = 1 / acceptance_rate`` capped by the zero-mass
        guard; a full scan costs the class's mean degree in edge work
        plus Pd over every positive edge.  A class switches only past
        ``SWITCH_MARGIN`` and only once its rate rests on at least
        ``MIN_CLASS_TRIALS`` observed trials.
        """
        if not self.dynamic:
            return stats.chosen_strategy
        trials = stats.trials_by_class
        informed = np.flatnonzero(trials >= MIN_CLASS_TRIALS)
        for index in informed:
            observed = float(trials[index])
            rate = float(stats.accepts_by_class[index]) / observed
            expected_trials = (
                MAX_EXPECTED_TRIALS
                if rate <= 1.0 / MAX_EXPECTED_TRIALS
                else 1.0 / rate
            )
            pd_fraction = float(stats.pd_by_class[index]) / observed
            reject_cost = expected_trials * (
                COST_TRIAL + pd_fraction * COST_PD
            )
            degree = self.mean_degree_by_class[index]
            scan_cost = COST_SCAN_SETUP + degree * (COST_SCAN_EDGE + COST_PD)
            incumbent = int(stats.chosen_strategy[index])
            if incumbent == STRATEGY_REJECTION:
                challenger_wins = scan_cost * SWITCH_MARGIN < reject_cost
                challenger = STRATEGY_FULL_SCAN
            else:
                challenger_wins = reject_cost * SWITCH_MARGIN < scan_cost
                challenger = STRATEGY_REJECTION
            if challenger_wins:
                stats.chosen_strategy[index] = challenger
                stats.switch_events.append(
                    {
                        "iteration": int(iteration),
                        "degree_class": degree_class_label(int(index)),
                        "from": STRATEGY_NAMES[incumbent],
                        "to": STRATEGY_NAMES[challenger],
                        "what": "strategy",
                    }
                )
        return stats.chosen_strategy

    # ------------------------------------------------------------------
    @staticmethod
    def account_rejection(
        stats: SamplerDecisionStats,
        classes: np.ndarray,
        trials: np.ndarray | int,
        accepted: np.ndarray,
        pd_lanes: np.ndarray | None = None,
        pd_counts: np.ndarray | None = None,
    ) -> None:
        """Fold one rejection round's per-lane work into the evidence.

        ``pd_lanes`` (lane positions, one evaluation each) comes from
        the single-trial kernel; ``pd_counts`` (per-lane totals) from
        the fused kernel.  Pass one or the other.
        """
        if isinstance(trials, np.ndarray):
            stats.trials_by_class += np.bincount(
                classes, weights=trials, minlength=NUM_DEGREE_CLASSES
            ).astype(np.int64)
        else:
            stats.trials_by_class += np.bincount(
                classes, minlength=NUM_DEGREE_CLASSES
            ) * int(trials)
        stats.accepts_by_class += np.bincount(
            classes[accepted], minlength=NUM_DEGREE_CLASSES
        )
        if pd_lanes is not None and pd_lanes.size:
            stats.pd_by_class += np.bincount(
                classes[pd_lanes], minlength=NUM_DEGREE_CLASSES
            )
        if pd_counts is not None:
            stats.pd_by_class += np.bincount(
                classes, weights=pd_counts, minlength=NUM_DEGREE_CLASSES
            ).astype(np.int64)

    @staticmethod
    def account_lanes(
        stats: SamplerDecisionStats, classes: np.ndarray, strategy: int
    ) -> None:
        """Count lanes handled by ``strategy`` this round, per class."""
        stats.lanes_by_class[:, strategy] += np.bincount(
            classes, minlength=NUM_DEGREE_CLASSES
        )
