"""Walk checkpoint and resume.

Long walks (PPR with a heavy tail, |V| walkers on a large graph) want
fault tolerance: :func:`save_checkpoint` captures a running engine's
complete dynamic state — walker positions and custom state, recorded
paths, statistics, and the RNG stream — into a single ``.npz``;
:func:`restore_checkpoint` rebuilds an engine that continues the walk
*bit-identically* to an uninterrupted run (the resume-determinism test
asserts exactly that).

Format (version 2): every payload array is covered by a CRC32 recorded
in the file; a truncated, corrupted, or version-skewed checkpoint
raises :class:`~repro.errors.SnapshotError` instead of surfacing a raw
numpy/zipfile traceback.

Distributed engines are first-class: a
:class:`~repro.cluster.engine.DistributedWalkEngine` checkpoint
additionally captures the per-node walker shards (walker state plus
the owner of each walker at capture time), per-node work counters,
superstep times, node liveness and any degraded-mode owner overlay,
the logical network matrices, recovery statistics, and the fault
plane's physical-layer state (delivery counters, triggered crashes,
and the fault RNG stream).  In-flight retry queues are *by
construction* empty at every BSP barrier — reliable delivery resolves
within the superstep's communication phase — so barrier-aligned
checkpoints never need to serialise undelivered messages, the classic
simplification of coordinated checkpointing.

Graph, program, config — and for distributed engines the fault plan —
are not serialised: they are reproducible inputs the caller passes
again at restore time, as with every checkpointing system that
separates immutable datasets from mutable state.
"""

from __future__ import annotations

import os
import pickle
import struct
import zipfile
import zlib

import numpy as np

from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.core.trace import PathRecorder
from repro.core.program import WalkerProgram
from repro.errors import SnapshotCorruptError, SnapshotError
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, EpochSnapshot

__all__ = ["save_checkpoint", "restore_checkpoint", "checkpoint_epoch"]

FORMAT_VERSION = 2

_RECOVERY_FIELDS = ("crashes", "restarts", "checkpoints_taken", "replayed_supersteps")


def _payload_checksum(payload: dict) -> int:
    """CRC32 over every key and array payload, in sorted key order."""
    crc = 0
    for key in sorted(payload):
        crc = zlib.crc32(key.encode("utf-8"), crc)
        crc = zlib.crc32(np.ascontiguousarray(payload[key]).tobytes(), crc)
    return crc


def _base_payload(engine: WalkEngine) -> dict:
    walkers = engine.walkers
    payload: dict[str, np.ndarray] = {
        "version": np.asarray([FORMAT_VERSION]),
        "current": walkers.current,
        "previous": walkers.previous,
        "steps": walkers.steps,
        "alive": walkers.alive,
        "rejection_streak": engine._rejection_streak,
        "rng_state": np.frombuffer(
            pickle.dumps(engine._rng.bit_generator.state), dtype=np.uint8
        ),
        "stats_scalars": np.asarray(
            [
                engine.stats.total_steps,
                engine.stats.iterations,
                engine.stats.teleports,
                engine.stats.full_scan_evaluations,
                engine.stats.messages_sent,
                engine.stats.counters.trials,
                engine.stats.counters.pd_evaluations,
                engine.stats.counters.pre_accepts,
                engine.stats.counters.appendix_trials,
                engine.stats.counters.accepts,
                engine.stats.termination.by_step_limit,
                engine.stats.termination.by_probability,
                engine.stats.termination.by_dead_end,
            ],
            dtype=np.int64,
        ),
        "active_per_iteration": np.asarray(
            engine.stats.active_per_iteration, dtype=np.int64
        ),
    }

    if engine.graph_epoch is not None:
        # Dynamic-graph run: record the pinned epoch, so restore can
        # demand the same one (replayed from the write-ahead log).
        payload["graph_epoch"] = np.asarray([engine.graph_epoch], dtype=np.int64)

    if walkers.history is not None:
        payload["history"] = walkers.history

    # Custom walker state arrays.
    state_names = list(walkers._custom)
    payload["state_names"] = np.asarray(state_names, dtype="U64")
    for name in state_names:
        payload[f"state_{name}"] = walkers.state(name)

    # Recorded moves (flattened with per-batch lengths).
    if engine._recorder is not None:
        recorder = engine._recorder
        lengths = np.asarray(
            [batch.size for batch in recorder._move_walkers], dtype=np.int64
        )
        payload["recorder_lengths"] = lengths
        payload["recorder_walkers"] = (
            np.concatenate(recorder._move_walkers)
            if lengths.size
            else np.zeros(0, dtype=np.int64)
        )
        payload["recorder_vertices"] = (
            np.concatenate(recorder._move_vertices)
            if lengths.size
            else np.zeros(0, dtype=np.int64)
        )
    return payload


def _cluster_payload(engine) -> dict:
    """Distributed extras: shards, cluster counters, fault-plane state."""
    from repro.cluster.network import MessageKind

    cluster = engine.cluster
    recovery = cluster.recovery
    network_state = engine.network.snapshot_state()
    payload: dict[str, np.ndarray] = {
        "cluster_num_nodes": np.asarray([engine.num_nodes], dtype=np.int64),
        "cluster_shard_of_walker": engine._owners(engine.walkers.current),
        "cluster_alive_nodes": engine._alive_nodes,
        "cluster_executed_supersteps": np.asarray(
            [engine._executed_supersteps], dtype=np.int64
        ),
        "cluster_trials_per_node": cluster.trials_per_node,
        "cluster_pd_per_node": cluster.pd_evaluations_per_node,
        "cluster_walker_supersteps_per_node": cluster.walker_supersteps_per_node,
        "cluster_superstep_times": np.asarray(
            cluster.superstep_times, dtype=np.float64
        ),
        "cluster_light_mode": np.asarray(
            [cluster.light_mode_node_supersteps], dtype=np.int64
        ),
        "cluster_recovery_counts": np.asarray(
            [getattr(recovery, name) for name in _RECOVERY_FIELDS], dtype=np.int64
        ),
        "cluster_recovery_seconds": np.asarray(
            [recovery.recovery_seconds], dtype=np.float64
        ),
        "cluster_degraded_nodes": np.asarray(
            recovery.degraded_nodes, dtype=np.int64
        ),
        "cluster_net_messages": np.stack(
            [network_state["messages"][kind] for kind in MessageKind]
        ),
        "cluster_net_local": np.asarray(
            [network_state["local"][kind] for kind in MessageKind], dtype=np.int64
        ),
        "cluster_net_scattered": np.stack(
            [network_state["scattered"][kind] for kind in MessageKind]
        ),
    }
    if engine._owner_lookup is not None:
        payload["cluster_owner_lookup"] = engine._owner_lookup
    if engine.fault_plane is not None:
        payload.update(engine.fault_plane.state_dict())
    if engine.health is not None:
        payload.update(engine.health.state_arrays())
    if engine.rebalancer is not None:
        payload.update(engine.rebalancer.state_arrays())
    return payload


def save_checkpoint(engine: WalkEngine, path: str | os.PathLike) -> None:
    """Serialise the engine's dynamic state to ``path`` (.npz).

    Works for both the local :class:`WalkEngine` and the distributed
    :class:`~repro.cluster.engine.DistributedWalkEngine` (which must be
    paused at a superstep boundary, i.e. between ``run`` calls — the
    only place its state is observable anyway).
    """
    if engine._recorder is not None and not isinstance(
        engine._recorder, PathRecorder
    ):
        raise SnapshotError(
            "checkpointing is not supported with streaming path output "
            "(already-spilled sequences cannot be captured)"
        )
    payload = _base_payload(engine)
    from repro.cluster.engine import DistributedWalkEngine

    if isinstance(engine, DistributedWalkEngine):
        payload.update(_cluster_payload(engine))
    payload["checksum"] = np.asarray(
        [_payload_checksum(payload)], dtype=np.uint64
    )
    np.savez_compressed(path, **payload)


def _verify_and_load(path: str | os.PathLike) -> dict:
    """Read a checkpoint into memory, verifying version and checksum."""
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
    except (
        OSError,
        ValueError,
        EOFError,
        zipfile.BadZipFile,
        zlib.error,
        struct.error,
    ) as exc:
        if isinstance(exc, OSError) and not os.path.exists(path):
            raise SnapshotError(f"unreadable checkpoint {path}: {exc}") from exc
        raise SnapshotCorruptError(
            f"unreadable checkpoint {path}: {exc}"
        ) from exc
    if "version" not in arrays or "checksum" not in arrays:
        raise SnapshotError(f"malformed checkpoint {path}: missing header")
    version = int(arrays["version"][0])
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"checkpoint version {version} unsupported (expected {FORMAT_VERSION})"
        )
    stored = int(arrays["checksum"][0])
    recorded = {k: v for k, v in arrays.items() if k != "checksum"}
    if _payload_checksum(recorded) != stored:
        raise SnapshotCorruptError(
            f"corrupt checkpoint {path}: payload checksum mismatch"
        )
    return arrays


def checkpoint_epoch(path: str | os.PathLike) -> int | None:
    """The dynamic-graph epoch a checkpoint was taken at (None if the
    run used a plain static graph).

    Recovery flow for dynamic graphs: read this first, rebuild the
    graph state with ``DynamicGraph.recover(base, wal, replay_to=e)``,
    then :func:`restore_checkpoint` against that instance.
    """
    data = _verify_and_load(path)
    if "graph_epoch" not in data:
        return None
    return int(data["graph_epoch"][0])


def _restore_base(engine: WalkEngine, data: dict, path) -> None:
    walkers = engine.walkers
    try:
        if data["current"].size != walkers.num_walkers:
            raise SnapshotError(
                "checkpoint walker count does not match configuration"
            )
        walkers.current[:] = data["current"]
        walkers.previous[:] = data["previous"]
        walkers.steps[:] = data["steps"]
        walkers.alive[:] = data["alive"]
        if walkers.history is not None:
            if "history" not in data:
                raise SnapshotError(
                    "checkpoint lacks walker history for this program"
                )
            walkers.history[:] = data["history"]
        engine._rejection_streak[:] = data["rejection_streak"]
        engine._rng.bit_generator.state = pickle.loads(
            data["rng_state"].tobytes()
        )

        scalars = data["stats_scalars"]
        stats = engine.stats
        (
            stats.total_steps,
            stats.iterations,
            stats.teleports,
            stats.full_scan_evaluations,
            stats.messages_sent,
            stats.counters.trials,
            stats.counters.pd_evaluations,
            stats.counters.pre_accepts,
            stats.counters.appendix_trials,
            stats.counters.accepts,
            stats.termination.by_step_limit,
            stats.termination.by_probability,
            stats.termination.by_dead_end,
        ) = (int(value) for value in scalars)
        stats.active_per_iteration = data["active_per_iteration"].tolist()

        for name in data["state_names"]:
            name = str(name)
            walkers.state(name)[:] = data[f"state_{name}"]

        if engine._recorder is not None:
            if "recorder_lengths" not in data:
                raise SnapshotError(
                    "checkpoint lacks recorded paths but record_paths=True"
                )
            recorder = engine._recorder
            recorder._move_walkers.clear()
            recorder._move_vertices.clear()
            offsets = np.zeros(
                data["recorder_lengths"].size + 1, dtype=np.int64
            )
            np.cumsum(data["recorder_lengths"], out=offsets[1:])
            flat_walkers = data["recorder_walkers"]
            flat_vertices = data["recorder_vertices"]
            for index in range(offsets.size - 1):
                low, high = offsets[index], offsets[index + 1]
                recorder._move_walkers.append(flat_walkers[low:high].copy())
                recorder._move_vertices.append(
                    flat_vertices[low:high].copy()
                )
    except KeyError as exc:
        raise SnapshotError(f"malformed checkpoint {path}: {exc}") from exc


def _restore_cluster(engine, data: dict, path) -> None:
    from repro.cluster.network import MessageKind

    try:
        cluster = engine.cluster
        engine._alive_nodes[:] = data["cluster_alive_nodes"]
        engine._executed_supersteps = int(data["cluster_executed_supersteps"][0])
        cluster.trials_per_node[:] = data["cluster_trials_per_node"]
        cluster.pd_evaluations_per_node[:] = data["cluster_pd_per_node"]
        cluster.walker_supersteps_per_node[:] = data[
            "cluster_walker_supersteps_per_node"
        ]
        cluster.superstep_times[:] = data["cluster_superstep_times"].tolist()
        cluster.light_mode_node_supersteps = int(data["cluster_light_mode"][0])
        recovery = cluster.recovery
        for name, value in zip(_RECOVERY_FIELDS, data["cluster_recovery_counts"]):
            setattr(recovery, name, int(value))
        recovery.recovery_seconds = float(data["cluster_recovery_seconds"][0])
        recovery.degraded_nodes = data["cluster_degraded_nodes"].tolist()
        if "cluster_owner_lookup" in data:
            engine._owner_lookup = np.asarray(
                data["cluster_owner_lookup"], dtype=np.int64
            )
        engine.network.restore_state(
            {
                "messages": {
                    kind: data["cluster_net_messages"][index]
                    for index, kind in enumerate(MessageKind)
                },
                "local": {
                    kind: int(data["cluster_net_local"][index])
                    for index, kind in enumerate(MessageKind)
                },
                "scattered": {
                    kind: data["cluster_net_scattered"][index]
                    for index, kind in enumerate(MessageKind)
                },
            }
        )
        if engine.fault_plane is not None and "fault_rng_state" in data:
            engine.fault_plane.load_state(data)
        if engine.health is not None and "health_ewma" in data:
            engine.health.load_arrays(data)
        if engine.rebalancer is not None and "rebalance_nodes" in data:
            engine.rebalancer.load_arrays(data)
    except KeyError as exc:
        raise SnapshotError(f"malformed checkpoint {path}: {exc}") from exc


def restore_checkpoint(
    graph: CSRGraph,
    program: WalkerProgram,
    config: WalkConfig,
    path: str | os.PathLike,
    **engine_kwargs,
) -> WalkEngine:
    """Rebuild an engine from a checkpoint; ``run()`` continues it.

    ``graph``, ``program``, and ``config`` must be the ones the
    checkpointed engine was constructed with (the static state is
    re-derived from them; only dynamic state is loaded).  A checkpoint
    taken from a distributed engine restores a
    :class:`~repro.cluster.engine.DistributedWalkEngine` on the same
    number of nodes; pass ``fault_plan``/``retry_policy``/... through
    ``engine_kwargs`` to re-arm fault injection — the plane then resumes
    its recorded RNG stream, triggered-crash set, and delivery counters.
    """
    data = _verify_and_load(path)
    if "graph_epoch" in data:
        wanted = int(data["graph_epoch"][0])
        actual = (
            graph.epoch
            if isinstance(graph, (DynamicGraph, EpochSnapshot))
            else None
        )
        if actual != wanted:
            raise SnapshotError(
                f"checkpoint was taken at graph epoch {wanted}, but the "
                f"supplied graph is at "
                f"{'a static graph' if actual is None else f'epoch {actual}'}; "
                f"rebuild it with DynamicGraph.recover(base, wal, "
                f"replay_to={wanted})"
            )
    if "cluster_num_nodes" in data:
        from repro.cluster.engine import DistributedWalkEngine

        num_nodes = int(data["cluster_num_nodes"][0])
        requested = engine_kwargs.pop("num_nodes", None)
        if requested is not None and requested != num_nodes:
            raise SnapshotError(
                f"checkpoint was taken on {num_nodes} nodes, not {requested}"
            )
        engine = DistributedWalkEngine(
            graph, program, config, num_nodes=num_nodes, **engine_kwargs
        )
        _restore_base(engine, data, path)
        _restore_cluster(engine, data, path)
        return engine
    if engine_kwargs:
        raise SnapshotError(
            "engine options are only meaningful for distributed checkpoints"
        )
    engine = WalkEngine(graph, program, config)
    _restore_base(engine, data, path)
    return engine
