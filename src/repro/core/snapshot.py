"""Walk checkpoint and resume.

Long walks (PPR with a heavy tail, |V| walkers on a large graph) want
fault tolerance: :func:`save_checkpoint` captures a running engine's
complete dynamic state — walker positions and custom state, recorded
paths, statistics, and the RNG stream — into a single ``.npz``;
:func:`restore_checkpoint` rebuilds an engine that continues the walk
*bit-identically* to an uninterrupted run (the resume-determinism test
asserts exactly that).

Graph and program are not serialised: they are reproducible inputs the
caller passes again at restore time, as with every checkpointing
system that separates immutable datasets from mutable state.
"""

from __future__ import annotations

import os
import pickle

import numpy as np

from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.core.trace import PathRecorder
from repro.core.program import WalkerProgram
from repro.errors import ReproError
from repro.graph.csr import CSRGraph

__all__ = ["save_checkpoint", "restore_checkpoint"]

FORMAT_VERSION = 1


def save_checkpoint(engine: WalkEngine, path: str | os.PathLike) -> None:
    """Serialise the engine's dynamic state to ``path`` (.npz)."""
    if engine._recorder is not None and not isinstance(
        engine._recorder, PathRecorder
    ):
        raise ReproError(
            "checkpointing is not supported with streaming path output "
            "(already-spilled sequences cannot be captured)"
        )
    walkers = engine.walkers
    payload: dict[str, np.ndarray] = {
        "version": np.asarray([FORMAT_VERSION]),
        "current": walkers.current,
        "previous": walkers.previous,
        "steps": walkers.steps,
        "alive": walkers.alive,
        "rejection_streak": engine._rejection_streak,
        "rng_state": np.frombuffer(
            pickle.dumps(engine._rng.bit_generator.state), dtype=np.uint8
        ),
        "stats_scalars": np.asarray(
            [
                engine.stats.total_steps,
                engine.stats.iterations,
                engine.stats.teleports,
                engine.stats.full_scan_evaluations,
                engine.stats.messages_sent,
                engine.stats.counters.trials,
                engine.stats.counters.pd_evaluations,
                engine.stats.counters.pre_accepts,
                engine.stats.counters.appendix_trials,
                engine.stats.counters.accepts,
                engine.stats.termination.by_step_limit,
                engine.stats.termination.by_probability,
                engine.stats.termination.by_dead_end,
            ],
            dtype=np.int64,
        ),
        "active_per_iteration": np.asarray(
            engine.stats.active_per_iteration, dtype=np.int64
        ),
    }

    if walkers.history is not None:
        payload["history"] = walkers.history

    # Custom walker state arrays.
    state_names = list(walkers._custom)
    payload["state_names"] = np.asarray(state_names, dtype="U64")
    for name in state_names:
        payload[f"state_{name}"] = walkers.state(name)

    # Recorded moves (flattened with per-batch lengths).
    if engine._recorder is not None:
        recorder = engine._recorder
        lengths = np.asarray(
            [batch.size for batch in recorder._move_walkers], dtype=np.int64
        )
        payload["recorder_lengths"] = lengths
        payload["recorder_walkers"] = (
            np.concatenate(recorder._move_walkers)
            if lengths.size
            else np.zeros(0, dtype=np.int64)
        )
        payload["recorder_vertices"] = (
            np.concatenate(recorder._move_vertices)
            if lengths.size
            else np.zeros(0, dtype=np.int64)
        )

    np.savez_compressed(path, **payload)


def restore_checkpoint(
    graph: CSRGraph,
    program: WalkerProgram,
    config: WalkConfig,
    path: str | os.PathLike,
) -> WalkEngine:
    """Rebuild an engine from a checkpoint; ``run()`` continues it.

    ``graph``, ``program``, and ``config`` must be the ones the
    checkpointed engine was constructed with (the static state is
    re-derived from them; only dynamic state is loaded).
    """
    engine = WalkEngine(graph, program, config)
    walkers = engine.walkers
    with np.load(path, allow_pickle=False) as data:
        try:
            version = int(data["version"][0])
            if version != FORMAT_VERSION:
                raise ReproError(
                    f"checkpoint version {version} unsupported "
                    f"(expected {FORMAT_VERSION})"
                )
            if data["current"].size != walkers.num_walkers:
                raise ReproError(
                    "checkpoint walker count does not match configuration"
                )
            walkers.current[:] = data["current"]
            walkers.previous[:] = data["previous"]
            walkers.steps[:] = data["steps"]
            walkers.alive[:] = data["alive"]
            if walkers.history is not None:
                if "history" not in data:
                    raise ReproError(
                        "checkpoint lacks walker history for this program"
                    )
                walkers.history[:] = data["history"]
            engine._rejection_streak[:] = data["rejection_streak"]
            engine._rng.bit_generator.state = pickle.loads(
                data["rng_state"].tobytes()
            )

            scalars = data["stats_scalars"]
            stats = engine.stats
            (
                stats.total_steps,
                stats.iterations,
                stats.teleports,
                stats.full_scan_evaluations,
                stats.messages_sent,
                stats.counters.trials,
                stats.counters.pd_evaluations,
                stats.counters.pre_accepts,
                stats.counters.appendix_trials,
                stats.counters.accepts,
                stats.termination.by_step_limit,
                stats.termination.by_probability,
                stats.termination.by_dead_end,
            ) = (int(value) for value in scalars)
            stats.active_per_iteration = data["active_per_iteration"].tolist()

            for name in data["state_names"]:
                name = str(name)
                walkers.state(name)[:] = data[f"state_{name}"]

            if engine._recorder is not None:
                if "recorder_lengths" not in data:
                    raise ReproError(
                        "checkpoint lacks recorded paths but record_paths=True"
                    )
                recorder = engine._recorder
                recorder._move_walkers.clear()
                recorder._move_vertices.clear()
                offsets = np.zeros(
                    data["recorder_lengths"].size + 1, dtype=np.int64
                )
                np.cumsum(data["recorder_lengths"], out=offsets[1:])
                flat_walkers = data["recorder_walkers"]
                flat_vertices = data["recorder_vertices"]
                for index in range(offsets.size - 1):
                    low, high = offsets[index], offsets[index + 1]
                    recorder._move_walkers.append(flat_walkers[low:high].copy())
                    recorder._move_vertices.append(
                        flat_vertices[low:high].copy()
                    )
        except KeyError as exc:
            raise ReproError(f"malformed checkpoint {path}: {exc}") from exc
    return engine
