"""Execution statistics.

The paper's evaluation reports two kinds of quantities: wall-clock run
time, and machine-independent work counts (transition-probability
evaluations per step, Table 1 / Table 5 / Figure 6; active walkers per
iteration, Figure 5).  :class:`WalkStats` collects both for every
engine in this repository, so benchmarks can print either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sampling.rejection import SamplingCounters

__all__ = ["WalkStats", "TerminationBreakdown"]


@dataclass
class TerminationBreakdown:
    """Why walkers ended their walks."""

    by_step_limit: int = 0
    by_probability: int = 0
    by_dead_end: int = 0

    @property
    def total(self) -> int:
        return self.by_step_limit + self.by_probability + self.by_dead_end


@dataclass
class WalkStats:
    """Counters accumulated over one walk execution.

    Attributes
    ----------
    counters:
        sampling work counters (trials, Pd evaluations, pre-accepts).
    total_steps:
        number of successful walker moves across all walkers — the
        denominator of the paper's "edges/step" metric.
    iterations:
        engine iterations (supersteps) executed.
    active_per_iteration:
        number of active walkers entering each iteration — the series
        Figure 5 plots to show random walk's "longer and thinner" tail.
    full_scan_evaluations:
        Pd evaluations spent in zero-mass-detection scans (kept
        separate so the rejection numbers stay comparable to the
        paper's, but included in the per-step totals).
    wall_time_seconds:
        wall-clock of the walk loop (excludes graph loading, matching
        the paper's methodology; includes sampling-structure and
        walker initialization).
    """

    counters: SamplingCounters = field(default_factory=SamplingCounters)
    termination: TerminationBreakdown = field(default_factory=TerminationBreakdown)
    total_steps: int = 0
    teleports: int = 0
    iterations: int = 0
    active_per_iteration: list[int] = field(default_factory=list)
    full_scan_evaluations: int = 0
    messages_sent: int = 0
    wall_time_seconds: float = 0.0
    init_time_seconds: float = 0.0

    @property
    def pd_evaluations_per_step(self) -> float:
        """The paper's headline "edges/step" metric: dynamic transition
        probabilities computed per successful walker move."""
        if self.total_steps == 0:
            return 0.0
        return (
            self.counters.pd_evaluations + self.full_scan_evaluations
        ) / self.total_steps

    @property
    def trials_per_step(self) -> float:
        """Average rejection-sampling trials per move (paper Eq. 3)."""
        if self.total_steps == 0:
            return 0.0
        return self.counters.trials / self.total_steps

    def summary(self) -> str:
        return (
            f"steps={self.total_steps} iterations={self.iterations} "
            f"pd_evals/step={self.pd_evaluations_per_step:.3f} "
            f"trials/step={self.trials_per_step:.3f} "
            f"wall={self.wall_time_seconds:.3f}s"
        )
