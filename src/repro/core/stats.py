"""Execution statistics.

The paper's evaluation reports two kinds of quantities: wall-clock run
time, and machine-independent work counts (transition-probability
evaluations per step, Table 1 / Table 5 / Figure 6; active walkers per
iteration, Figure 5).  :class:`WalkStats` collects both for every
engine in this repository, so benchmarks can print either.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.core.selector import SamplerDecisionStats
from repro.sampling.incremental import MaintenanceStats
from repro.sampling.rejection import SamplingCounters

__all__ = ["WalkStats", "TerminationBreakdown", "ServiceMetrics"]


@dataclass
class TerminationBreakdown:
    """Why walkers ended their walks."""

    by_step_limit: int = 0
    by_probability: int = 0
    by_dead_end: int = 0

    @property
    def total(self) -> int:
        return self.by_step_limit + self.by_probability + self.by_dead_end


@dataclass
class WalkStats:
    """Counters accumulated over one walk execution.

    Attributes
    ----------
    counters:
        sampling work counters (trials, Pd evaluations, pre-accepts).
    total_steps:
        number of successful walker moves across all walkers — the
        denominator of the paper's "edges/step" metric.
    iterations:
        engine iterations (supersteps) executed.
    active_per_iteration:
        number of active walkers entering each iteration — the series
        Figure 5 plots to show random walk's "longer and thinner" tail.
    full_scan_evaluations:
        Pd evaluations spent in zero-mass-detection scans (kept
        separate so the rejection numbers stay comparable to the
        paper's, but included in the per-step totals).
    wall_time_seconds:
        wall-clock of the walk loop (excludes graph loading, matching
        the paper's methodology; includes sampling-structure and
        walker initialization).
    sampler:
        the step engine's per-degree-class sampler decisions and their
        evidence (see :class:`~repro.core.selector.SamplerDecisionStats`);
        carries the ``"fixed"`` policy with empty counters when auto
        selection is off or the walker-centric engine ran.
    """

    counters: SamplingCounters = field(default_factory=SamplingCounters)
    sampler: SamplerDecisionStats = field(default_factory=SamplerDecisionStats)
    termination: TerminationBreakdown = field(default_factory=TerminationBreakdown)
    total_steps: int = 0
    teleports: int = 0
    iterations: int = 0
    active_per_iteration: list[int] = field(default_factory=list)
    full_scan_evaluations: int = 0
    messages_sent: int = 0
    wall_time_seconds: float = 0.0
    init_time_seconds: float = 0.0
    # Dynamic-graph runs: the snapshot epoch the walk pinned, and the
    # owning DynamicGraph's incremental sampler-maintenance counters
    # (verification probes, mismatches, full-rebuild fallbacks).
    graph_epoch: int | None = None
    maintenance: MaintenanceStats | None = None

    @property
    def pd_evaluations_per_step(self) -> float:
        """The paper's headline "edges/step" metric: dynamic transition
        probabilities computed per successful walker move."""
        if self.total_steps == 0:
            return 0.0
        return (
            self.counters.pd_evaluations + self.full_scan_evaluations
        ) / self.total_steps

    @property
    def trials_per_step(self) -> float:
        """Average rejection-sampling trials per move (paper Eq. 3)."""
        if self.total_steps == 0:
            return 0.0
        return self.counters.trials / self.total_steps

    def summary(self) -> str:
        return (
            f"steps={self.total_steps} iterations={self.iterations} "
            f"pd_evals/step={self.pd_evaluations_per_step:.3f} "
            f"trials/step={self.trials_per_step:.3f} "
            f"wall={self.wall_time_seconds:.3f}s"
        )


# Unique identity per ServiceMetrics instance so merges are
# idempotent.  The pid prefix keeps ids collision-free when deltas are
# built inside SupervisedPool worker processes (each child restarts
# the counter at 1).
_SOURCE_COUNTER = itertools.count(1)
_MERGE_LOCK = threading.Lock()


def _next_metrics_source() -> str:
    return f"{os.getpid()}-{next(_SOURCE_COUNTER)}"


@dataclass
class ServiceMetrics:
    """Accounting of the overload-robust serving layer.

    The invariant the soak tests pin: every submitted request resolves
    into exactly one of ``served`` / ``shed`` / ``failed``, so after a
    drain ``submitted == served + shed + failed`` holds *exactly* —
    requests are never double-counted or silently dropped.  ``served``
    includes deadline-exceeded responses (they carry a well-formed
    partial result); ``deadline_hits`` counts them separately.

    Attributes
    ----------
    submitted / admitted:
        requests offered to the service / accepted into the queue.
    served:
        requests that ran to a result (complete or deadline-partial).
    shed:
        requests rejected by admission control, evicted by a shedding
        policy, or refused by the open circuit breaker
        (``shed_reasons`` itemises why).
    failed:
        requests whose execution raised.
    degraded:
        served requests that ran with a degraded configuration.
    deadline_hits:
        served requests that returned a deadline-exceeded partial.
    queue_depth_peak:
        high watermark of the admission queue.
    latencies_seconds:
        submit-to-response latency per resolved request, the source of
        the p50/p99 figures.
    """

    submitted: int = 0
    admitted: int = 0
    served: int = 0
    shed: int = 0
    failed: int = 0
    degraded: int = 0
    deadline_hits: int = 0
    queue_depth_peak: int = 0
    # Distributed requests (cluster-simulator executions) and their
    # straggler-tolerance activity, aggregated across requests.
    distributed_runs: int = 0
    straggler_suspicions: int = 0
    walkers_rebalanced: int = 0
    speculative_wins: int = 0
    # Dynamic-graph update stream committed through apply_updates.
    updates_applied: int = 0
    epochs_committed: int = 0
    shed_reasons: dict[str, int] = field(default_factory=dict)
    latencies_seconds: list[float] = field(default_factory=list)
    # Merge identity: every instance is a unique source; an aggregate
    # remembers which sources it has absorbed so re-delivering the same
    # shard delta (SupervisedPool retries, duplicated result messages)
    # cannot double-count.
    source_id: str = field(default_factory=_next_metrics_source)
    merged_sources: set[str] = field(default_factory=set)

    # Additive counters folded by merge(); peak gauges and reason maps
    # are handled separately.
    _ADDITIVE_FIELDS = (
        "submitted",
        "admitted",
        "served",
        "failed",
        "degraded",
        "deadline_hits",
        "distributed_runs",
        "straggler_suspicions",
        "walkers_rebalanced",
        "speculative_wins",
        "updates_applied",
        "epochs_committed",
    )

    @property
    def resolved(self) -> int:
        return self.served + self.shed + self.failed

    def merge(self, other: "ServiceMetrics") -> bool:
        """Fold ``other`` into this aggregate, exactly once.

        Idempotent and thread-safe: every :class:`ServiceMetrics`
        carries a unique ``source_id``, and an aggregate refuses a
        source it has absorbed before *or whose own absorbed set
        overlaps anything this aggregate already counted* — so a shard
        delta re-delivered after a SupervisedPool retry, the same
        snapshot merged concurrently from two threads, and a relayed
        aggregate that re-packages an already-counted shard all count
        once (the overlapping relay is refused whole; merge topology
        should be a tree, with each delta shipped to exactly one
        aggregate).  Returns ``True`` if ``other`` was absorbed,
        ``False`` if it was a duplicate.
        """
        if other is self:
            return False
        with _MERGE_LOCK:
            if (
                other.source_id == self.source_id
                or other.source_id in self.merged_sources
                or self.source_id in other.merged_sources
                or not self.merged_sources.isdisjoint(other.merged_sources)
            ):
                return False
            self.merged_sources.add(other.source_id)
            self.merged_sources |= other.merged_sources
            for name in self._ADDITIVE_FIELDS:
                setattr(self, name, getattr(self, name) + getattr(other, name))
            self.shed += other.shed
            for reason, count in other.shed_reasons.items():
                self.shed_reasons[reason] = (
                    self.shed_reasons.get(reason, 0) + count
                )
            self.queue_depth_peak = max(
                self.queue_depth_peak, other.queue_depth_peak
            )
            self.latencies_seconds.extend(other.latencies_seconds)
        return True

    def record_shed(self, reason: str) -> None:
        self.shed += 1
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1

    def record_latency(self, seconds: float) -> None:
        self.latencies_seconds.append(seconds)

    def latency_percentile(self, percentile: float) -> float:
        """Latency at the given percentile (0 with no samples)."""
        if not self.latencies_seconds:
            return 0.0
        return float(np.percentile(self.latencies_seconds, percentile))

    @property
    def p50_latency(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(99.0)

    def accounting_balanced(self, pending: int = 0) -> bool:
        """The exact conservation law, with ``pending`` still in
        flight (0 after a drain)."""
        return self.submitted == self.resolved + pending

    def report(self) -> str:
        shed_detail = (
            " (" + ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.shed_reasons.items())
            ) + ")"
            if self.shed_reasons
            else ""
        )
        report = (
            f"service: submitted={self.submitted} admitted={self.admitted} "
            f"served={self.served} shed={self.shed}{shed_detail} "
            f"failed={self.failed}\n"
            f"service: degraded={self.degraded} "
            f"deadline_hits={self.deadline_hits} "
            f"queue_peak={self.queue_depth_peak}\n"
            f"service: latency p50={self.p50_latency * 1000.0:.2f}ms "
            f"p99={self.p99_latency * 1000.0:.2f}ms"
        )
        if self.distributed_runs:
            report += (
                f"\nservice: distributed_runs={self.distributed_runs} "
                f"straggler_suspicions={self.straggler_suspicions} "
                f"walkers_rebalanced={self.walkers_rebalanced} "
                f"speculative_wins={self.speculative_wins}"
            )
        if self.epochs_committed:
            report += (
                f"\nservice: updates_applied={self.updates_applied} "
                f"epochs_committed={self.epochs_committed}"
            )
        return report
