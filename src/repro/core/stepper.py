"""Step-centric staged execution: Gather → Move → Update.

The walker-centric engine treats each sampling round as one opaque
batch: every kernel call re-gathers per-walker vertex state from the
graph-wide arrays, and every walker runs the same strategy.  ThunderRW
(PAPERS.md) shows the hot loop wants to be organised around *steps*
instead: fetch the per-vertex state once per superstep (Gather), run
the cheapest sampling strategy for each lane and apply all resulting
transitions (Move), then advance bookkeeping — streaks, counters,
selector evidence (Update).

:class:`StepExecutor` implements that staging for any engine built on
:class:`~repro.core.engine.WalkEngine`.  Two sampler policies:

* ``fixed`` (default) — the staged loop drives the *same* kernels with
  the same RNG call granularity and the same move/kill batching as the
  walker-centric engine, so its walks (and its determinism-sanitizer
  event stream) are **bit-identical** to walker mode under one seed.
  The staging still pays off: gathers are hoisted out of the kernels
  and reused across a superstep's retry rounds, and the dart buffers
  come from a shared scratch pool.
* ``auto`` — each lane is routed by its vertex's degree class through
  the :class:`~repro.core.selector.SamplerSelector` decision: plain
  rejection trials, an exact full scan (one vectorised ``Ps * Pd``
  sweep + CDF draw, the strategy that wins when acceptance rates
  collapse), or dart-free direct sampling (static programs).  The walk
  law is unchanged and runs are deterministic seed-for-seed, but the
  RNG stream differs from fixed mode, so auto is a *policy* choice,
  not a drop-in replay of walker mode.

Engine-specific effects (migration messages, per-node work accounting
in the cluster simulator) stay behind the engine hooks
``_commit_moves`` / ``_run_guard`` / ``_account_lane_work``, so the
distributed engine reuses this module's staging for its per-node
compute unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import (
    ZERO_MASS_GUARD_TRIALS,
    GatherContext,
    adaptive_trial_count,
    batch_multi_trial_round,
    batch_trial_round,
    full_scan_spans,
    gather_stage,
)
from repro.core.selector import (
    STRATEGY_DIRECT,
    STRATEGY_FULL_SCAN,
    STRATEGY_REJECTION,
    SamplerSelector,
    classify_degrees,
)

__all__ = ["StepExecutor", "GROUP_SAMPLE_EVERY"]

# The vertex-group-size histogram is telemetry, not a decision input;
# sampling it every iteration would cost an O(active) bincount per
# superstep for no extra signal, so it is taken on the first iteration
# and every N-th after.
GROUP_SAMPLE_EVERY = 16


class StepExecutor:
    """Drives one engine's supersteps through the staged hot loop.

    Holds only *static* per-graph facts (degree classes, per-class
    mean degrees inside the selector) and reusable scratch; all
    mutable selection evidence lives on ``engine.stats.sampler`` so
    checkpoint/restore rewinds it with the rest of the run state.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        graph = engine.graph
        degrees = graph.out_degrees()
        self.vertex_class = classify_degrees(degrees)
        self.auto = engine.config.sampler_policy == "auto"
        self.selector = SamplerSelector(
            degrees,
            self.vertex_class,
            engine.program.dynamic,
            graph.num_edges,
        )
        self.scratch = engine._scratch
        decision_stats = engine.stats.sampler
        decision_stats.policy = engine.config.sampler_policy
        self.tables = engine.tables
        if self.auto:
            self.selector.initial_decisions(
                decision_stats, engine.config.static_sampler
            )
            self.tables = self._candidate_tables(decision_stats)

    def _candidate_tables(self, decision_stats):
        """The candidate generator the selector chose.

        When it differs from the configured one, the other structure is
        built over the same static weights (charged to init like every
        sampling structure).
        """
        engine = self.engine
        if decision_stats.candidate_source == engine.config.static_sampler:
            return engine.tables
        from repro.sampling.alias import VertexAliasTables
        from repro.sampling.its import VertexITSTables

        build = (
            VertexAliasTables
            if decision_stats.candidate_source == "alias"
            else VertexITSTables
        )
        return build(engine.graph, engine.tables.static_weights)

    # ------------------------------------------------------------------
    # Stage driver
    # ------------------------------------------------------------------
    def run_iteration(self, survivors: np.ndarray) -> None:
        """Execute one superstep's sampling stages for ``survivors``.

        Pacing mirrors the walker-centric engine: trial-mode programs
        spend one round; step-mode programs loop until every pending
        walker resolved.  The Gather stage runs once — retry rounds
        reuse sliced views of the same per-lane arrays, because a
        rejected walker has not moved.
        """
        engine = self.engine
        obs = engine._stage_obs
        if obs is None:
            ctx = self._gather(survivors)
        else:
            with obs.span(
                "stage.gather",
                track=engine._obs_track,
                args={"lanes": int(survivors.size)},
            ):
                ctx = self._gather(survivors)
        if obs is None:
            self._move(ctx)
        else:
            with obs.span("stage.move", track=engine._obs_track):
                self._move(ctx)

    def _gather(self, survivors: np.ndarray) -> GatherContext:
        """Gather stage: fetch per-lane vertex state once per superstep
        (plus the occasional group-size telemetry sample)."""
        engine = self.engine
        ctx = gather_stage(
            engine.tables,
            engine.walkers,
            survivors,
            engine.upper,
            engine.lower,
            self.vertex_class if self.auto else None,
        )
        if self.auto:
            iteration = engine.stats.iterations
            if iteration == 1 or iteration % GROUP_SAMPLE_EVERY == 0:
                counts = np.bincount(ctx.vertices)
                engine.stats.sampler.record_group_sizes(counts[counts > 0])
        return ctx

    def _move(self, ctx: GatherContext) -> None:
        """Move stage: sampling rounds until the superstep's pacing is
        satisfied (one round in trial mode, drain in step mode)."""
        engine = self.engine
        if engine.sync_mode == "trial":
            self._round(ctx)
            return
        while ctx.size:
            moved = self._round(ctx)
            if moved.all():
                break
            ctx = ctx.take(~moved)

    def _round(self, ctx: GatherContext) -> np.ndarray:
        if self.auto:
            return self._auto_round(ctx)
        return self._fixed_round(ctx)

    # ------------------------------------------------------------------
    # Fixed policy: bit-identical to the walker-centric engine
    # ------------------------------------------------------------------
    def _fixed_round(self, ctx: GatherContext) -> np.ndarray:
        """One round through the reference kernels, gathers hoisted."""
        engine = self.engine
        trials_spent = None
        if engine._fuse:
            outcome = batch_multi_trial_round(
                engine.graph,
                engine.tables,
                engine.program,
                engine.walkers,
                ctx.walker_ids,
                engine.upper,
                engine.lower,
                engine._rng,
                engine.stats.counters,
                num_trials=adaptive_trial_count(engine.stats.counters),
                validate_bounds=engine.validate_bounds,
                scratch=self.scratch,
                gather=ctx,
            )
            trials_spent = outcome.trials_used
        else:
            outcome = batch_trial_round(
                engine.graph,
                engine.tables,
                engine.program,
                engine.walkers,
                ctx.walker_ids,
                engine.upper,
                engine.lower,
                engine._rng,
                engine.stats.counters,
                validate_bounds=engine.validate_bounds,
                gather=ctx,
                scratch=self.scratch,
            )
        if engine._accounts_lane_work:
            if trials_spent is not None:
                engine._account_lane_work(
                    ctx.vertices,
                    trials=trials_spent,
                    pd=outcome.pd_evaluations,
                )
            else:
                pd_per_lane = np.zeros(ctx.size, dtype=np.int64)
                if outcome.pd_lanes is not None and outcome.pd_lanes.size:
                    pd_per_lane[outcome.pd_lanes] = 1
                engine._account_lane_work(
                    ctx.vertices, trials=1, pd=pd_per_lane
                )
        return engine._commit_round(
            ctx.walker_ids, outcome.accepted, outcome.edges, trials_spent
        )

    # ------------------------------------------------------------------
    # Auto policy: per-degree-class strategy routing
    # ------------------------------------------------------------------
    def _auto_round(self, ctx: GatherContext) -> np.ndarray:
        """One staged round with per-class strategies.

        Stage order is fixed (decide → direct → scan → rejection →
        kills → one move batch → streak/guard update), so two runs of
        the same seeded config produce identical event streams.
        Returns the resolved-lane mask (moved, killed, or guarded).
        """
        engine = self.engine
        stats = engine.stats
        decision_stats = stats.sampler
        counters = stats.counters
        graph = engine.graph
        choices = self.selector.decide(decision_stats, stats.iterations)
        lane_strategy = choices[ctx.classes]

        resolved = np.zeros(ctx.size, dtype=bool)
        targets = np.full(ctx.size, -1, dtype=np.int64)
        kill_mask = np.zeros(ctx.size, dtype=bool)

        # --- direct lanes: candidate draw is the sample (static Pd) ---
        direct_lanes = np.flatnonzero(lane_strategy == STRATEGY_DIRECT)
        if direct_lanes.size:
            sub = ctx.take(direct_lanes)
            edges = self.tables.sample_batch(sub.vertices, engine._rng)
            targets[direct_lanes] = graph.targets[edges]
            resolved[direct_lanes] = True
            n = direct_lanes.size
            counters.trials += n
            counters.pre_accepts += n
            counters.accepts += n
            engine._account_lane_work(sub.vertices, trials=1)
            self.selector.account_lanes(
                decision_stats, sub.classes, STRATEGY_DIRECT
            )

        # --- full-scan lanes: exact resolution, move or terminate -----
        scan_lanes = np.flatnonzero(lane_strategy == STRATEGY_FULL_SCAN)
        if scan_lanes.size:
            sub = ctx.take(scan_lanes)
            spans = full_scan_spans(
                graph, engine.tables, engine.program, engine.walkers,
                sub.walker_ids,
            )
            stats.full_scan_evaluations += int(spans.evaluations.sum())
            engine._account_lane_work(sub.vertices, pd=spans.evaluations)
            dead = spans.totals <= 0.0
            kill_mask[scan_lanes[dead]] = True
            live = np.flatnonzero(~dead)
            if live.size:
                edges = spans.sample(live, engine._rng)
                targets[scan_lanes[live]] = graph.targets[edges]
            resolved[scan_lanes] = True
            self.selector.account_lanes(
                decision_stats, sub.classes, STRATEGY_FULL_SCAN
            )

        # --- rejection lanes: the reference kernels on the remainder --
        rejection_lanes = np.flatnonzero(lane_strategy == STRATEGY_REJECTION)
        stuck_streak: np.ndarray | None = None
        if rejection_lanes.size:
            sub = ctx.take(rejection_lanes)
            if engine._fuse:
                outcome = batch_multi_trial_round(
                    graph,
                    self.tables,
                    engine.program,
                    engine.walkers,
                    sub.walker_ids,
                    engine.upper,
                    engine.lower,
                    engine._rng,
                    counters,
                    num_trials=adaptive_trial_count(counters),
                    validate_bounds=engine.validate_bounds,
                    scratch=self.scratch,
                    gather=sub,
                )
                trials_spent = outcome.trials_used
                self.selector.account_rejection(
                    decision_stats,
                    sub.classes,
                    trials_spent,
                    outcome.accepted,
                    pd_counts=outcome.pd_evaluations,
                )
                engine._account_lane_work(
                    sub.vertices,
                    trials=trials_spent,
                    pd=outcome.pd_evaluations,
                )
            else:
                outcome = batch_trial_round(
                    graph,
                    self.tables,
                    engine.program,
                    engine.walkers,
                    sub.walker_ids,
                    engine.upper,
                    engine.lower,
                    engine._rng,
                    counters,
                    validate_bounds=engine.validate_bounds,
                    gather=sub,
                    scratch=self.scratch,
                )
                trials_spent = None
                pd_per_lane = np.zeros(sub.size, dtype=np.int64)
                if outcome.pd_lanes is not None and outcome.pd_lanes.size:
                    pd_per_lane[outcome.pd_lanes] = 1
                self.selector.account_rejection(
                    decision_stats,
                    sub.classes,
                    1,
                    outcome.accepted,
                    pd_lanes=outcome.pd_lanes,
                )
                engine._account_lane_work(
                    sub.vertices, trials=1, pd=pd_per_lane
                )
            self.selector.account_lanes(
                decision_stats, sub.classes, STRATEGY_REJECTION
            )
            accepted = outcome.accepted
            targets[rejection_lanes[accepted]] = graph.targets[
                outcome.edges[accepted]
            ]
            resolved[rejection_lanes[accepted]] = True
            stuck_local = np.flatnonzero(~accepted)
            if stuck_local.size:
                stuck_streak = (
                    trials_spent[stuck_local]
                    if trials_spent is not None
                    else np.ones(stuck_local.size, dtype=np.int64)
                )
                stuck_lanes = rejection_lanes[stuck_local]
            else:
                stuck_lanes = np.zeros(0, dtype=np.int64)
        else:
            stuck_lanes = np.zeros(0, dtype=np.int64)

        # --- Move stage: kills, then one batched move -----------------
        if kill_mask.any():
            doomed = ctx.walker_ids[kill_mask]
            engine.walkers.kill(doomed)
            stats.termination.by_dead_end += doomed.size
            engine._rejection_streak[doomed] = 0
        move_mask = targets >= 0
        if move_mask.any():
            engine._commit_moves(
                ctx.walker_ids[move_mask], targets[move_mask]
            )

        # --- Update stage: streaks and the zero-mass guard ------------
        if stuck_lanes.size:
            stuck_ids = ctx.walker_ids[stuck_lanes]
            engine._rejection_streak[stuck_ids] += stuck_streak
            guarded = stuck_lanes[
                engine._rejection_streak[stuck_ids] >= ZERO_MASS_GUARD_TRIALS
            ]
            if guarded.size:
                engine._run_guard(ctx.walker_ids[guarded])
                resolved[guarded] = True
        return resolved
