"""Walk path recording.

Algorithms like DeepWalk and node2vec consume the *sequences* a walk
produces (each walker's vertex path becomes a "sentence" for skip-gram
training), so the engine can optionally record every move.

Recording is append-per-iteration rather than append-per-walker: each
iteration contributes one (walker_ids, vertices) pair of arrays, and
full per-walker paths are reconstructed once at the end.  This keeps
the hot loop free of per-walker Python work.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PathRecorder", "StreamingPathRecorder"]


class PathRecorder:
    """Accumulates walker moves and reconstructs per-walker paths."""

    def __init__(self, start_vertices: np.ndarray) -> None:
        self._starts = np.asarray(start_vertices, dtype=np.int64).copy()
        self._move_walkers: list[np.ndarray] = []
        self._move_vertices: list[np.ndarray] = []

    @property
    def num_walkers(self) -> int:
        return self._starts.size

    def record_moves(self, walker_ids: np.ndarray, vertices: np.ndarray) -> None:
        """Record one iteration's successful moves."""
        if len(walker_ids):
            self._move_walkers.append(np.asarray(walker_ids, dtype=np.int64).copy())
            self._move_vertices.append(np.asarray(vertices, dtype=np.int64).copy())

    def paths(self) -> list[np.ndarray]:
        """Per-walker vertex sequences, starts included.

        A walker that took ``k`` steps yields an array of ``k + 1``
        vertices.  Iteration order of recorded moves preserves each
        walker's step order, so a single stable pass suffices.
        """
        lengths = np.ones(self.num_walkers, dtype=np.int64)
        for walker_ids in self._move_walkers:
            np.add.at(lengths, walker_ids, 1)
        paths = [np.empty(length, dtype=np.int64) for length in lengths]
        cursor = np.zeros(self.num_walkers, dtype=np.int64)
        for walker_id, start in enumerate(self._starts):
            paths[walker_id][0] = start
        cursor += 1
        for walker_ids, vertices in zip(self._move_walkers, self._move_vertices):
            for walker_id, vertex in zip(walker_ids, vertices):
                paths[walker_id][cursor[walker_id]] = vertex
                cursor[walker_id] += 1
        return paths

    def as_corpus(self) -> list[list[int]]:
        """Paths as plain lists of ints (skip-gram training input)."""
        return [path.tolist() for path in self.paths()]


class StreamingPathRecorder:
    """Writes each walker's full sequence to disk when its walk ends.

    For |V|-walker runs with long paths, keeping every sequence in
    memory until the end can dominate the engine's footprint.  This
    recorder holds only the *active* walkers' partial sequences; the
    engine calls :meth:`flush_finished` after each iteration with the
    walkers that just terminated, and their lines go straight to the
    corpus file (the :func:`repro.analysis.load_corpus` format, one
    whitespace-separated walk per line).

    Line order is termination order, not walker order — walk corpora
    are order-insensitive (skip-gram shuffles anyway).
    """

    def __init__(self, path, start_vertices: np.ndarray) -> None:
        self._handle = open(path, "w", encoding="ascii")
        self._partial: dict[int, list[int]] = {
            walker_id: [int(start)]
            for walker_id, start in enumerate(
                np.asarray(start_vertices, dtype=np.int64)
            )
        }
        self.lines_written = 0

    @property
    def num_walkers(self) -> int:
        return self.lines_written + len(self._partial)

    def record_moves(self, walker_ids: np.ndarray, vertices: np.ndarray) -> None:
        for walker_id, vertex in zip(walker_ids, vertices):
            self._partial[int(walker_id)].append(int(vertex))

    def flush_finished(self, walker_ids: np.ndarray) -> None:
        """Write and release the sequences of terminated walkers."""
        for walker_id in walker_ids:
            sequence = self._partial.pop(int(walker_id), None)
            if sequence is None:
                continue
            self._handle.write(" ".join(str(v) for v in sequence) + "\n")
            self.lines_written += 1

    def close(self) -> None:
        """Flush any remaining (interrupted) walkers and close."""
        if not self._handle.closed:
            remaining = np.asarray(sorted(self._partial), dtype=np.int64)
            self.flush_finished(remaining)
            self._handle.close()

    def __enter__(self) -> "StreamingPathRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
