"""Walker state storage.

KnightKing's computation model is walker-centric: the engine tracks,
for every walker, its current residing vertex, the previous vertex (the
one-step history that second-order algorithms consult), and the number
of steps taken.  Algorithms may attach custom per-walker state (e.g.
Meta-path stores each walker's assigned scheme id).

State lives in structure-of-arrays form (:class:`WalkerSet`) so the
vectorised kernels can operate on thousands of walkers per numpy call;
:class:`WalkerView` wraps one index of those arrays with attribute
access for the scalar (user-extensible) code path, mirroring the ``w``
argument of the paper's API (Figure 4).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProgramError

__all__ = ["WalkerSet", "WalkerView", "NO_VERTEX"]

# previous-vertex sentinel before the first move (w.step == 0 in the
# paper's node2vec sample code).
NO_VERTEX = -1


class WalkerSet:
    """Structure-of-arrays store for all walkers of one execution.

    ``history_depth`` extends the one-step memory the paper's
    second-order algorithms need to the "previous n vertices visited"
    of its unified definition (section 2.2): with depth k, the walker's
    last k stops are kept in ``history`` (column 0 the most recent,
    i.e. ``history[:, 0] == previous``).  Depth 1 stores nothing extra
    — ``previous`` covers it.
    """

    def __init__(
        self, start_vertices: np.ndarray, history_depth: int = 1
    ) -> None:
        if history_depth < 1:
            raise ProgramError("history_depth must be at least 1")
        starts = np.asarray(start_vertices, dtype=np.int64)
        count = starts.size
        self.current = starts.copy()
        self.previous = np.full(count, NO_VERTEX, dtype=np.int64)
        self.steps = np.zeros(count, dtype=np.int64)
        self.alive = np.ones(count, dtype=bool)
        self.history_depth = int(history_depth)
        self.history = (
            np.full((count, history_depth), NO_VERTEX, dtype=np.int64)
            if history_depth > 1
            else None
        )
        self._custom: dict[str, np.ndarray] = {}

    @property
    def num_walkers(self) -> int:
        return self.current.size

    @property
    def num_active(self) -> int:
        return int(np.count_nonzero(self.alive))

    def active_ids(self) -> np.ndarray:
        """Indices of walkers still walking."""
        return np.flatnonzero(self.alive)

    # ------------------------------------------------------------------
    # Custom per-walker state
    # ------------------------------------------------------------------
    def add_state(self, name: str, values: np.ndarray) -> None:
        """Attach a named per-walker state array (one entry/walker)."""
        values = np.asarray(values)
        if values.shape[0] != self.num_walkers:
            raise ProgramError(
                f"state {name!r} must have one entry per walker"
            )
        self._custom[name] = values

    def state(self, name: str) -> np.ndarray:
        try:
            return self._custom[name]
        except KeyError as exc:
            raise ProgramError(f"no walker state named {name!r}") from exc

    def has_state(self, name: str) -> bool:
        return name in self._custom

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def move(self, walker_ids: np.ndarray, new_vertices: np.ndarray) -> None:
        """Advance walkers one step: previous <- current <- target."""
        if self.history is not None:
            self.history[walker_ids, 1:] = self.history[walker_ids, :-1]
            self.history[walker_ids, 0] = self.current[walker_ids]
        self.previous[walker_ids] = self.current[walker_ids]
        self.current[walker_ids] = new_vertices
        self.steps[walker_ids] += 1

    def recent_vertices(self, walker_id: int) -> np.ndarray:
        """The walker's last ``history_depth`` stops, most recent first
        (:data:`NO_VERTEX` padding before enough steps were taken)."""
        if self.history is not None:
            return self.history[walker_id]
        return self.previous[walker_id : walker_id + 1]

    def kill(self, walker_ids: np.ndarray) -> None:
        """Terminate walkers (their walk is complete)."""
        self.alive[walker_ids] = False

    def view(self, walker_id: int) -> "WalkerView":
        return WalkerView(self, int(walker_id))


class WalkerView:
    """Scalar window onto one walker's slots in a :class:`WalkerSet`.

    This is the object handed to user-defined ``edge_dynamic_comp`` and
    friends; attribute names follow the paper's sample code
    (``w.prev``, ``w.step``).
    """

    __slots__ = ("_walkers", "walker_id")

    def __init__(self, walkers: WalkerSet, walker_id: int) -> None:
        self._walkers = walkers
        self.walker_id = walker_id

    @property
    def current(self) -> int:
        """The walker's current residing vertex."""
        return int(self._walkers.current[self.walker_id])

    @property
    def prev(self) -> int:
        """The previous vertex visited (:data:`NO_VERTEX` before the
        first move)."""
        return int(self._walkers.previous[self.walker_id])

    @property
    def step(self) -> int:
        """Number of steps taken so far."""
        return int(self._walkers.steps[self.walker_id])

    @property
    def recent(self) -> np.ndarray:
        """The last ``history_depth`` vertices visited, most recent
        first (for programs of order > 2)."""
        return self._walkers.recent_vertices(self.walker_id)

    @property
    def alive(self) -> bool:
        return bool(self._walkers.alive[self.walker_id])

    def state(self, name: str) -> object:
        """Read this walker's entry of a named custom state array."""
        return self._walkers.state(name)[self.walker_id]

    def set_state(self, name: str, value: object) -> None:
        """Write this walker's entry of a named custom state array."""
        self._walkers.state(name)[self.walker_id] = value

    def __repr__(self) -> str:
        return (
            f"WalkerView(id={self.walker_id}, at={self.current}, "
            f"prev={self.prev}, step={self.step}, alive={self.alive})"
        )
