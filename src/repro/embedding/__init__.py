"""Embedding substrate: the consumer of DeepWalk/node2vec walks.

Implements skip-gram with negative sampling over walk corpora and a
link-prediction evaluation, closing the paper's application pipeline
(graph -> walks -> embeddings -> task) inside this repository.
"""

from repro.embedding.evaluation import (
    cosine_scores,
    link_prediction_auc,
    sample_edge_split,
)
from repro.embedding.sgns import SkipGramModel, extract_training_pairs

__all__ = [
    "SkipGramModel",
    "extract_training_pairs",
    "cosine_scores",
    "link_prediction_auc",
    "sample_edge_split",
]
