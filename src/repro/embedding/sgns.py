"""Skip-gram with negative sampling (SGNS) over walk corpora.

DeepWalk and node2vec are walk generators whose output trains a
word2vec-style embedding: each walk is a sentence, each vertex a word
(paper section 2.2).  This module implements that consumer from scratch
in numpy, so the repository covers the paper's full application
pipeline end-to-end: graph -> walks -> embeddings -> downstream task.

The trainer is the standard SGNS objective (Mikolov et al. 2013):
maximise ``log sigmoid(u_c . v_w)`` for observed (center w, context c)
pairs and ``log sigmoid(-u_n . v_w)`` for ``k`` negatives drawn from
the unigram distribution raised to 3/4 — sampled in O(1) per draw with
the same alias tables the walk engine uses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.sampling.alias import AliasTable

__all__ = ["SkipGramModel", "extract_training_pairs"]


def extract_training_pairs(
    paths, window: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised (centers, contexts) extraction from walk paths.

    Equivalent to :func:`repro.analysis.skipgram_pairs`, but returns
    flat arrays ready for minibatch training.
    """
    if window < 1:
        raise ReproError("window must be at least 1")
    centers: list[np.ndarray] = []
    contexts: list[np.ndarray] = []
    for path in paths:
        sentence = np.asarray(path, dtype=np.int64)
        length = sentence.size
        if length < 2:
            continue
        for offset in range(1, window + 1):
            if offset >= length:
                break
            left = sentence[:-offset]
            right = sentence[offset:]
            centers.append(left)
            contexts.append(right)
            centers.append(right)
            contexts.append(left)
    if not centers:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
    return np.concatenate(centers), np.concatenate(contexts)


def _sigmoid(values: np.ndarray) -> np.ndarray:
    # Clip for numerical safety; gradients saturate anyway.
    return 1.0 / (1.0 + np.exp(-np.clip(values, -30.0, 30.0)))


class SkipGramModel:
    """SGNS vertex embeddings trained on walk corpora.

    Parameters
    ----------
    num_vertices:
        vocabulary size (vertex count).
    dimension:
        embedding width (the usual 64-128 range; tests use smaller).
    seed:
        initialisation and negative-sampling seed.
    """

    def __init__(self, num_vertices: int, dimension: int = 64, seed: int = 0) -> None:
        if num_vertices < 2:
            raise ReproError("need at least two vertices to embed")
        if dimension < 1:
            raise ReproError("dimension must be positive")
        self.num_vertices = num_vertices
        self.dimension = dimension
        rng = np.random.default_rng(seed)
        scale = 1.0 / dimension
        self.in_vectors = rng.uniform(
            -scale, scale, size=(num_vertices, dimension)
        )
        self.out_vectors = np.zeros((num_vertices, dimension))
        self._rng = rng

    # ------------------------------------------------------------------
    def train(
        self,
        paths,
        window: int = 5,
        negatives: int = 5,
        epochs: int = 1,
        learning_rate: float = 0.05,
        batch_size: int = 4096,
    ) -> float:
        """Train on walk paths; returns the final mean batch loss."""
        centers, contexts = extract_training_pairs(paths, window)
        if centers.size == 0:
            raise ReproError("corpus produced no training pairs")

        # Negative-sampling distribution: unigram^(3/4) over contexts.
        frequencies = np.bincount(contexts, minlength=self.num_vertices).astype(
            np.float64
        )
        noise = AliasTable(np.power(frequencies + 1e-12, 0.75))

        last_loss = 0.0
        for _epoch in range(epochs):
            order = self._rng.permutation(centers.size)
            for start in range(0, centers.size, batch_size):
                batch = order[start : start + batch_size]
                last_loss = self._train_batch(
                    centers[batch],
                    contexts[batch],
                    noise,
                    negatives,
                    learning_rate,
                )
        return last_loss

    def _train_batch(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        noise: AliasTable,
        negatives: int,
        learning_rate: float,
    ) -> float:
        batch = centers.size
        center_vecs = self.in_vectors[centers]  # (b, d)

        # Positive examples.
        context_vecs = self.out_vectors[contexts]
        positive_scores = _sigmoid(np.sum(center_vecs * context_vecs, axis=1))
        positive_grad = 1.0 - positive_scores  # d/dx log sigmoid(x)

        # Negative examples: (b, k) noise draws.
        negative_ids = noise.sample_many(self._rng, batch * negatives).reshape(
            batch, negatives
        )
        negative_vecs = self.out_vectors[negative_ids]  # (b, k, d)
        negative_scores = _sigmoid(
            np.einsum("bd,bkd->bk", center_vecs, negative_vecs)
        )

        # Ascent gradients of the log-likelihood.
        grad_center = (
            positive_grad[:, None] * context_vecs
            - np.einsum("bk,bkd->bd", negative_scores, negative_vecs)
        )
        grad_context = positive_grad[:, None] * center_vecs
        grad_negative = -negative_scores[:, :, None] * center_vecs[:, None, :]

        # Per-vertex *averaged* scatter updates: a vertex that appears
        # many times in the batch moves by the mean of its gradients,
        # not their sum.  Summed duplicates diverge on small
        # vocabularies, while 1/batch reduction starves large ones;
        # averaging per vertex keeps the effective step ~learning_rate
        # for every vocabulary/batch combination.
        self._scatter_mean(self.in_vectors, centers, grad_center, learning_rate)
        self._scatter_mean(
            self.out_vectors, contexts, grad_context, learning_rate
        )
        self._scatter_mean(
            self.out_vectors,
            negative_ids.ravel(),
            grad_negative.reshape(-1, self.dimension),
            learning_rate,
        )

        loss = -(
            np.log(np.maximum(positive_scores, 1e-12)).mean()
            + np.log(np.maximum(1.0 - negative_scores, 1e-12)).sum(axis=1).mean()
        )
        return float(loss)

    @staticmethod
    def _scatter_mean(
        table: np.ndarray,
        indices: np.ndarray,
        gradients: np.ndarray,
        learning_rate: float,
    ) -> None:
        accumulated = np.zeros_like(table)
        np.add.at(accumulated, indices, gradients)
        counts = np.bincount(indices, minlength=table.shape[0])
        touched = counts > 0
        table[touched] += (
            learning_rate * accumulated[touched] / counts[touched, None]
        )

    # ------------------------------------------------------------------
    @property
    def embeddings(self) -> np.ndarray:
        """The trained input vectors (the conventional embedding)."""
        return self.in_vectors

    def similarity(self, u: int, v: int) -> float:
        """Cosine similarity between two vertex embeddings."""
        a, b = self.in_vectors[u], self.in_vectors[v]
        denominator = np.linalg.norm(a) * np.linalg.norm(b)
        if denominator == 0:
            return 0.0
        return float(a @ b / denominator)

    def most_similar(self, vertex: int, top_k: int = 10) -> list[tuple[int, float]]:
        """The ``top_k`` nearest vertices by cosine similarity."""
        norms = np.linalg.norm(self.in_vectors, axis=1)
        norms[norms == 0] = 1.0
        normalised = self.in_vectors / norms[:, None]
        scores = normalised @ normalised[vertex]
        scores[vertex] = -np.inf
        best = np.argsort(scores)[::-1][:top_k]
        return [(int(v), float(scores[v])) for v in best]
