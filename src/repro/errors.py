"""Exception hierarchy for the repro package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed or inconsistent graph inputs."""


class GraphFormatError(GraphError):
    """Raised when parsing an on-disk graph representation fails."""


class PartitionError(ReproError):
    """Raised for invalid partitioning requests (e.g. zero nodes)."""


class SamplingError(ReproError):
    """Raised for invalid sampling setups (e.g. negative weights)."""


class ProgramError(ReproError):
    """Raised when a :class:`~repro.core.program.WalkerProgram` is
    misconfigured, e.g. a dynamic upper bound below an observed Pd."""


class ConfigError(ReproError):
    """Raised for invalid :class:`~repro.core.config.WalkConfig` values."""


class SnapshotError(ReproError):
    """Raised for unreadable checkpoints: truncated or corrupt files,
    checksum mismatches, unknown format versions, or state that does
    not match the engine being restored."""


class SnapshotCorruptError(SnapshotError):
    """Raised when a snapshot file exists and parses far enough to be
    recognised but its content fails integrity verification — a payload
    checksum mismatch, or member data whose decompression/decoding
    fails (bit rot, torn writes).  Distinguished from plain
    :class:`SnapshotError` so callers can tell "this file is damaged,
    restore from another copy" apart from "you handed me the wrong
    file/version"."""


class WalError(GraphError):
    """Raised for unusable write-ahead logs: a bad magic header or a
    record stream whose epochs are out of order.  A *torn tail* (the
    expected result of a crash mid-append) is NOT an error — recovery
    truncates it and reports it in the recovery stats."""


class ServiceError(ReproError):
    """Base class for failures of the overload-robust serving layer
    (:mod:`repro.service`): admission, execution, and supervision
    errors that concern a walk *request* rather than the walk itself."""


class DeadlineExceededError(ServiceError):
    """Raised (by :meth:`repro.service.WalkTicket.raise_for_status`)
    when a request's deadline expired before the walk completed.  The
    engines themselves never raise this — they stop cooperatively and
    return a partial result tagged ``deadline_exceeded`` — so partial
    work is never lost to an exception."""


class OverloadError(ServiceError):
    """Raised when admission control sheds a request: the bounded queue
    was full (or the circuit breaker open) and the configured
    load-shedding policy rejected or evicted it."""


class WorkerError(ServiceError):
    """Raised by the supervised process pool when a worker process
    fails: it died without reporting (e.g. OOM-killed), exceeded its
    per-shard timeout, or raised — in which case the original traceback
    is preserved in :attr:`worker_traceback`.

    Attributes
    ----------
    shard:
        index of the failed task/shard, or ``None``.
    kind:
        ``"exception"``, ``"died"``, ``"timeout"``, or ``"budget"``.
    worker_traceback:
        the worker-side traceback text for ``"exception"`` failures.
    """

    def __init__(
        self,
        message: str,
        shard: int | None = None,
        kind: str = "died",
        worker_traceback: str | None = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.kind = kind
        self.worker_traceback = worker_traceback


class ObsError(ReproError):
    """Raised by the observability layer (``repro.obs``) for metric
    type/name conflicts, histogram bucket mismatches on merge, and
    malformed tracer usage."""


class LintError(ReproError):
    """Raised by the static analyzer's infrastructure (not by rule
    findings): unreadable source or baseline files, malformed
    suppression comments, or an unknown rule id in a suppression."""


class ClusterError(ReproError):
    """Raised by the distributed-execution simulator for protocol
    violations, e.g. a message addressed to a vertex nobody owns."""


class FaultError(ClusterError):
    """Base class for injected-fault failures in the cluster
    simulator: errors that model a *machine* misbehaving rather than a
    caller misusing the API."""


class NodeCrashError(FaultError):
    """Raised when a simulated node crash cannot be recovered from —
    no checkpoint to replay, or no surviving node left to take over
    the dead node's vertices."""


class MessageTimeoutError(FaultError):
    """Raised when the reliable-delivery layer exhausts its capped
    retransmission budget without getting a message through."""
