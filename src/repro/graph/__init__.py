"""Graph substrate: CSR storage, builders, generators, partitioning.

This subpackage implements everything KnightKing assumes from its graph
layer (paper section 6.1): CSR storage with out-edges co-located with
their source vertex, undirected doubling, 1-D load-balanced vertex
partitioning, plus the synthetic topologies used throughout the
evaluation.
"""

from repro.graph.builder import (
    GraphBuilder,
    assign_power_law_weights,
    assign_random_weights,
    from_arrays,
    from_edges,
)
from repro.graph.csr import CSRGraph, DegreeStats
from repro.graph.dynamic import (
    DynamicGraph,
    DynamicGraphStats,
    EdgeUpdate,
    EpochSnapshot,
    UpdateBatch,
    generate_churn_batches,
    parse_update_stream,
)
from repro.graph.datasets import (
    DATASETS,
    friendster_like,
    livejournal_like,
    load_dataset,
    twitter_like,
    ukunion_like,
)
from repro.graph.generators import (
    complete_graph,
    erdos_renyi_graph,
    hotspot_graph,
    ring_graph,
    rmat_graph,
    star_graph,
    truncated_power_law_graph,
    uniform_degree_graph,
)
from repro.graph.hetero import (
    BibliographicSchema,
    assign_random_edge_types,
    bibliographic_graph,
)
from repro.graph.io import load_binary, load_edge_list, save_binary, save_edge_list
from repro.graph.partition import (
    ContiguousPartition,
    MirroredPartition,
    partition_graph,
)
from repro.graph.transform import (
    connected_components,
    induced_subgraph,
    largest_component_subgraph,
    reverse_graph,
)
from repro.graph.traversal import BFSResult, bfs
from repro.graph.wal import WalRecoveryReport, WriteAheadLog

__all__ = [
    "DynamicGraph",
    "DynamicGraphStats",
    "EdgeUpdate",
    "EpochSnapshot",
    "UpdateBatch",
    "WalRecoveryReport",
    "WriteAheadLog",
    "generate_churn_batches",
    "parse_update_stream",
    "CSRGraph",
    "DegreeStats",
    "GraphBuilder",
    "from_edges",
    "from_arrays",
    "assign_random_weights",
    "assign_power_law_weights",
    "assign_random_edge_types",
    "bibliographic_graph",
    "BibliographicSchema",
    "uniform_degree_graph",
    "truncated_power_law_graph",
    "hotspot_graph",
    "erdos_renyi_graph",
    "rmat_graph",
    "ring_graph",
    "complete_graph",
    "star_graph",
    "livejournal_like",
    "friendster_like",
    "twitter_like",
    "ukunion_like",
    "load_dataset",
    "DATASETS",
    "load_edge_list",
    "save_edge_list",
    "load_binary",
    "save_binary",
    "ContiguousPartition",
    "MirroredPartition",
    "partition_graph",
    "bfs",
    "BFSResult",
    "reverse_graph",
    "induced_subgraph",
    "connected_components",
    "largest_component_subgraph",
]
