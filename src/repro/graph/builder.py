"""Edge-list ingestion and CSR construction.

:class:`GraphBuilder` accumulates edges (optionally with weights and
types), then produces a :class:`~repro.graph.csr.CSRGraph` with sorted
adjacency lists.  It implements the two graph-preparation conventions
from the paper's evaluation (section 7.1):

* ``as_undirected`` stores each edge in both directions, which is how
  KnightKing handles the undirected versions of its datasets; and
* :func:`assign_random_weights` draws per-edge weights uniformly from
  ``[1, 5)`` to create the "weighted version" of each graph.

Undirected weight assignment keeps the two stored directions of the
same logical edge at the same weight, as a real weighted undirected
graph would.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = [
    "GraphBuilder",
    "from_edges",
    "from_arrays",
    "assign_random_weights",
    "assign_power_law_weights",
    "WEIGHT_LOW",
    "WEIGHT_HIGH",
]

# Paper section 7.1: "create their weighted version ... by assigning edge
# weight as a real number randomly sampled from [1, 5)".
WEIGHT_LOW = 1.0
WEIGHT_HIGH = 5.0


class GraphBuilder:
    """Incremental builder producing CSR graphs.

    Parameters
    ----------
    num_vertices:
        Total vertex count.  Vertices are dense integers ``0..n-1``.
    undirected:
        If true, :meth:`add_edge` stores both directions (with the same
        weight/type) and the resulting graph is flagged undirected.
    """

    def __init__(self, num_vertices: int, undirected: bool = False) -> None:
        if num_vertices <= 0:
            raise GraphError("a graph needs at least one vertex")
        self._num_vertices = int(num_vertices)
        self._undirected = bool(undirected)
        self._sources: list[int] = []
        self._targets: list[int] = []
        self._weights: list[float] = []
        self._edge_types: list[int] = []
        self._any_weight = False
        self._any_type = False
        self._vertex_types: np.ndarray | None = None

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_added_edges(self) -> int:
        """Number of :meth:`add_edge` calls so far (logical edges)."""
        count = len(self._sources)
        return count // 2 if self._undirected else count

    def add_edge(
        self,
        source: int,
        target: int,
        weight: float | None = None,
        edge_type: int | None = None,
    ) -> "GraphBuilder":
        """Add one logical edge; returns self for chaining."""
        self._check_vertex(source)
        self._check_vertex(target)
        if weight is not None and weight < 0:
            raise GraphError("edge weights must be non-negative")
        self._append(source, target, weight, edge_type)
        if self._undirected:
            self._append(target, source, weight, edge_type)
        return self

    def add_edges(
        self,
        edges: Iterable[tuple[int, int]]
        | Iterable[tuple[int, int, float]]
        | np.ndarray,
    ) -> "GraphBuilder":
        """Add many edges; tuples may be (src, dst) or (src, dst, weight)."""
        for edge in edges:
            if len(edge) == 2:
                self.add_edge(int(edge[0]), int(edge[1]))
            elif len(edge) == 3:
                self.add_edge(int(edge[0]), int(edge[1]), float(edge[2]))
            else:
                raise GraphError(f"cannot interpret edge tuple {edge!r}")
        return self

    def set_vertex_types(self, vertex_types: Sequence[int] | np.ndarray) -> "GraphBuilder":
        """Attach per-vertex type labels (for heterogeneous graphs)."""
        array = np.asarray(vertex_types, dtype=np.int32)
        if array.size != self._num_vertices:
            raise GraphError("vertex_types must have one entry per vertex")
        self._vertex_types = array
        return self

    def build(self) -> CSRGraph:
        """Finalize into a CSR graph with sorted adjacency lists."""
        sources = np.asarray(self._sources, dtype=np.int64)
        targets = np.asarray(self._targets, dtype=np.int64)
        weights = (
            np.asarray(self._weights, dtype=np.float64) if self._any_weight else None
        )
        edge_types = (
            np.asarray(self._edge_types, dtype=np.int32) if self._any_type else None
        )

        # Sort edges by (source, target) so each adjacency slice is sorted.
        order = np.lexsort((targets, sources))
        sources = sources[order]
        targets = targets[order]
        if weights is not None:
            weights = weights[order]
        if edge_types is not None:
            edge_types = edge_types[order]

        counts = np.bincount(sources, minlength=self._num_vertices)
        offsets = np.zeros(self._num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])

        return CSRGraph(
            offsets=offsets,
            targets=targets,
            weights=weights,
            edge_types=edge_types,
            vertex_types=self._vertex_types,
            undirected=self._undirected,
        )

    # ------------------------------------------------------------------
    def _append(
        self,
        source: int,
        target: int,
        weight: float | None,
        edge_type: int | None,
    ) -> None:
        self._sources.append(int(source))
        self._targets.append(int(target))
        self._weights.append(1.0 if weight is None else float(weight))
        self._edge_types.append(0 if edge_type is None else int(edge_type))
        if weight is not None:
            self._any_weight = True
        if edge_type is not None:
            self._any_type = True

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self._num_vertices:
            raise GraphError(
                f"vertex {vertex} out of range [0, {self._num_vertices})"
            )


def from_edges(
    num_vertices: int,
    edges: Iterable[tuple[int, int]] | Iterable[tuple[int, int, float]],
    undirected: bool = False,
) -> CSRGraph:
    """One-shot convenience wrapper around :class:`GraphBuilder`."""
    builder = GraphBuilder(num_vertices, undirected=undirected)
    builder.add_edges(edges)
    return builder.build()


def from_arrays(
    num_vertices: int,
    sources: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray | None = None,
    edge_types: np.ndarray | None = None,
    undirected: bool = False,
) -> CSRGraph:
    """Vectorised CSR construction from parallel source/target arrays.

    This is the fast path used by the synthetic graph generators, which
    produce millions of edges; :class:`GraphBuilder` (list-based) would
    be needlessly slow there.  Semantics match the builder: undirected
    graphs store each edge twice with identical weight/type.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if sources.shape != targets.shape:
        raise GraphError("sources and targets must align")
    if sources.size and (
        sources.min() < 0
        or targets.min() < 0
        or sources.max() >= num_vertices
        or targets.max() >= num_vertices
    ):
        raise GraphError("edge endpoint out of range")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != sources.shape:
            raise GraphError("weights must align with edges")
    if edge_types is not None:
        edge_types = np.asarray(edge_types, dtype=np.int32)
        if edge_types.shape != sources.shape:
            raise GraphError("edge_types must align with edges")

    if undirected:
        sources, targets = (
            np.concatenate([sources, targets]),
            np.concatenate([targets, sources]),
        )
        if weights is not None:
            weights = np.concatenate([weights, weights])
        if edge_types is not None:
            edge_types = np.concatenate([edge_types, edge_types])

    order = np.lexsort((targets, sources))
    sources = sources[order]
    targets = targets[order]
    if weights is not None:
        weights = weights[order]
    if edge_types is not None:
        edge_types = edge_types[order]

    counts = np.bincount(sources, minlength=num_vertices)
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return CSRGraph(
        offsets=offsets,
        targets=targets,
        weights=weights,
        edge_types=edge_types,
        undirected=undirected,
    )


def assign_power_law_weights(
    graph: CSRGraph,
    seed: int,
    max_weight: float,
    exponent: float = 2.0,
    min_weight: float = 1.0,
) -> CSRGraph:
    """Weighted copy with power-law-distributed edge weights.

    Used by the Figure 8 experiment, which shows that compounding a
    heavy-tailed weight into the *dynamic* component (instead of
    pre-processing it as Ps) wrecks rejection-sampling efficiency.
    Mirrored across directions for undirected graphs like
    :func:`assign_random_weights`.
    """
    if max_weight < min_weight:
        raise GraphError("max_weight must be >= min_weight")
    rng = np.random.default_rng(seed)
    if graph.is_undirected:
        sources = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), graph.out_degrees()
        )
        low_end = np.minimum(sources, graph.targets)
        high_end = np.maximum(sources, graph.targets)
        keys = low_end * graph.num_vertices + high_end
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        draw_count = unique_keys.size
    else:
        inverse = None
        draw_count = graph.num_edges

    # Inverse-CDF sampling of a truncated continuous power law.
    power = 1.0 - exponent
    uniforms = rng.random(draw_count)
    if exponent == 1.0:
        values = min_weight * np.exp(
            uniforms * np.log(max_weight / min_weight)
        )
    else:
        low = min_weight**power
        high = max_weight**power
        values = (low + uniforms * (high - low)) ** (1.0 / power)
    weights = values[inverse] if inverse is not None else values
    return CSRGraph(
        offsets=graph.offsets.copy(),
        targets=graph.targets.copy(),
        weights=weights,
        edge_types=None if graph.edge_types is None else graph.edge_types.copy(),
        vertex_types=None if graph.vertex_types is None else graph.vertex_types.copy(),
        undirected=graph.is_undirected,
    )


def assign_random_weights(
    graph: CSRGraph,
    seed: int,
    low: float = WEIGHT_LOW,
    high: float = WEIGHT_HIGH,
) -> CSRGraph:
    """Return a weighted copy of ``graph`` with weights from U[low, high).

    This reproduces the paper's weighted-graph construction (section
    7.1).  For undirected graphs, both stored directions of a logical
    edge receive the same weight: the weight is drawn for the canonical
    orientation ``min(u, v) -> max(u, v)`` and mirrored to the reverse
    edge.
    """
    rng = np.random.default_rng(seed)
    if not graph.is_undirected:
        weights = rng.uniform(low, high, size=graph.num_edges)
        return CSRGraph(
            offsets=graph.offsets.copy(),
            targets=graph.targets.copy(),
            weights=weights,
            edge_types=None if graph.edge_types is None else graph.edge_types.copy(),
            vertex_types=(
                None if graph.vertex_types is None else graph.vertex_types.copy()
            ),
            undirected=False,
        )

    # Undirected: draw once per logical edge, keyed by the canonical
    # (min, max) orientation, then mirror to both stored directions.
    sources = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), graph.out_degrees()
    )
    low_end = np.minimum(sources, graph.targets)
    high_end = np.maximum(sources, graph.targets)
    keys = low_end * graph.num_vertices + high_end
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    per_logical_edge = rng.uniform(low, high, size=unique_keys.size)
    weights = per_logical_edge[inverse]
    return CSRGraph(
        offsets=graph.offsets.copy(),
        targets=graph.targets.copy(),
        weights=weights,
        edge_types=None if graph.edge_types is None else graph.edge_types.copy(),
        vertex_types=None if graph.vertex_types is None else graph.vertex_types.copy(),
        undirected=True,
    )
