"""Compressed sparse row (CSR) graph storage.

KnightKing stores edges in CSR with all directed edges kept with their
source vertices; undirected edges are stored twice, once per direction
(paper section 6.1).  This module provides the immutable CSR container
used by every engine in this repository.

Adjacency lists are kept sorted by target vertex so that neighbourhood
membership tests (``has_edge``) run in O(log d) via binary search.  This
is what makes node2vec's second-order distance check cheap for a vertex
owner answering a walker-to-vertex state query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError

__all__ = ["CSRGraph", "DegreeStats"]

# Largest vertex count for which the packed (source, target) -> int64
# key used by the batch adjacency fast path cannot overflow:
# (limit - 1) * limit + (limit - 1) must stay below 2**63.
_KEY_VERTEX_LIMIT = 3_037_000_499

# Fibonacci-hashing multiplier (2**64 / golden ratio, odd).
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)
_EMPTY_SLOT = np.int64(-1)


def _hash_slots(keys: np.ndarray, bits: int) -> np.ndarray:
    """Initial probe slot per key: top ``bits`` of a Fibonacci hash."""
    return (keys.astype(np.uint64) * _HASH_MULTIPLIER) >> np.uint64(64 - bits)


def _build_key_hash(sorted_keys: np.ndarray) -> tuple[np.ndarray, int]:
    """Open-addressing hash set over edge keys, built vectorised.

    Linear probing with all pending keys advancing one probe distance
    per round: every round scatters the pending keys into empty slots
    (last write wins) and a gather-back identifies which keys actually
    landed — no per-round sort.  Load factor stays at or below ~0.4.
    """
    if sorted_keys.size:
        # Keys arrive sorted, so a single comparison pass deduplicates.
        unique = sorted_keys[
            np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
        ]
    else:
        unique = sorted_keys
    bits = max(4, int(np.ceil(np.log2(max(unique.size * 2.5, 2)))))
    table = np.full(1 << bits, _EMPTY_SLOT, dtype=np.int64)
    mask = np.uint64(table.size - 1)
    pending = unique
    slots = _hash_slots(unique, bits)
    distance = np.uint64(0)
    while pending.size:
        probe = (slots + distance) & mask
        open_lanes = np.flatnonzero(table[probe] == _EMPTY_SLOT)
        table[probe[open_lanes]] = pending[open_lanes]
        landed = table[probe[open_lanes]] == pending[open_lanes]
        keep = np.ones(pending.size, dtype=bool)
        keep[open_lanes[landed]] = False
        pending = pending[keep]
        slots = slots[keep]
        distance += np.uint64(1)
    return table, bits


def _key_hash_contains(
    table: np.ndarray, bits: int, queries: np.ndarray
) -> np.ndarray:
    """Vectorised membership test against :func:`_build_key_hash`."""
    mask = np.uint64(table.size - 1)
    slots = _hash_slots(queries, bits)
    # First probe on the full batch without lane tracking — at the
    # table's load factor most queries resolve here, so the fancy
    # indexing below only ever touches the collision tail.
    occupants = table[slots]
    found = occupants == queries
    active = np.flatnonzero(~found & (occupants != _EMPTY_SLOT))
    slots = slots[active]
    values = queries[active]
    distance = np.uint64(1)
    while active.size:
        occupants = table[(slots + distance) & mask]
        hit = occupants == values
        found[active[hit]] = True
        unresolved = ~hit & (occupants != _EMPTY_SLOT)
        active = active[unresolved]
        slots = slots[unresolved]
        values = values[unresolved]
        distance += np.uint64(1)
    return found


@dataclass(frozen=True)
class DegreeStats:
    """Summary statistics of a graph's out-degree distribution.

    These are the quantities Table 2 of the paper reports for its
    real-world datasets (degree mean and variance), plus extremes that
    the synthetic generators assert on.
    """

    mean: float
    variance: float
    min: int
    max: int

    def __str__(self) -> str:
        return (
            f"degree mean={self.mean:.1f} variance={self.variance:.3g} "
            f"min={self.min} max={self.max}"
        )


class CSRGraph:
    """An immutable directed graph in compressed sparse row form.

    Parameters
    ----------
    offsets:
        int64 array of length ``|V| + 1``; the out-edges of vertex ``v``
        occupy ``targets[offsets[v]:offsets[v + 1]]``.
    targets:
        int64 array of length ``|E|`` holding edge destinations.  Within
        each vertex's slice the targets must be sorted ascending (use
        :class:`repro.graph.builder.GraphBuilder`, which sorts for you).
    weights:
        optional float64 array of per-edge weights (the static
        transition component Ps in the paper's unified definition).
        ``None`` means the graph is unweighted (every weight is 1).
    edge_types:
        optional int32 array of per-edge type labels, used by
        heterogeneous-graph algorithms such as Meta-path.
    vertex_types:
        optional int32 array of per-vertex type labels.
    undirected:
        informational flag recording that this CSR was built by storing
        each undirected edge in both directions.
    """

    def __init__(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
        edge_types: np.ndarray | None = None,
        vertex_types: np.ndarray | None = None,
        undirected: bool = False,
    ) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size == 0:
            raise GraphError("offsets must be a 1-D array of length |V|+1")
        if offsets[0] != 0:
            raise GraphError("offsets must start at 0")
        if offsets[-1] != targets.size:
            raise GraphError(
                f"offsets end at {offsets[-1]} but there are {targets.size} edges"
            )
        if np.any(np.diff(offsets) < 0):
            raise GraphError("offsets must be non-decreasing")

        num_vertices = offsets.size - 1
        if targets.size and (targets.min() < 0 or targets.max() >= num_vertices):
            raise GraphError("edge target out of range")

        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != targets.shape:
                raise GraphError("weights must align with targets")
            if targets.size and weights.min() < 0:
                raise GraphError("edge weights must be non-negative")
        if edge_types is not None:
            edge_types = np.asarray(edge_types, dtype=np.int32)
            if edge_types.shape != targets.shape:
                raise GraphError("edge_types must align with targets")
        if vertex_types is not None:
            vertex_types = np.asarray(vertex_types, dtype=np.int32)
            if vertex_types.size != num_vertices:
                raise GraphError("vertex_types must have one entry per vertex")

        self._offsets = offsets
        self._targets = targets
        self._weights = weights
        self._edge_types = edge_types
        self._vertex_types = vertex_types
        self._undirected = bool(undirected)
        # Sorted (source, target) keys for O(1)-dispatch adjacency
        # queries, plus a hash set over them for O(1)-probe membership
        # tests; both built lazily on the first batch lookup.
        self._edge_keys: np.ndarray | None = None
        self._key_hash: tuple[np.ndarray, int] | None = None
        for array in (offsets, targets, weights, edge_types, vertex_types):
            if array is not None:
                array.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices, |V|."""
        return self._offsets.size - 1

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges, |E| (undirected edges count
        twice, matching the paper's storage scheme)."""
        return self._targets.size

    @property
    def offsets(self) -> np.ndarray:
        """The CSR offset array (read-only view)."""
        return self._offsets

    @property
    def targets(self) -> np.ndarray:
        """The CSR target array (read-only view)."""
        return self._targets

    @property
    def weights(self) -> np.ndarray | None:
        """Per-edge weights, or ``None`` for unweighted graphs."""
        return self._weights

    @property
    def edge_types(self) -> np.ndarray | None:
        """Per-edge type labels, or ``None`` for homogeneous graphs."""
        return self._edge_types

    @property
    def vertex_types(self) -> np.ndarray | None:
        """Per-vertex type labels, or ``None`` for homogeneous graphs."""
        return self._vertex_types

    @property
    def is_weighted(self) -> bool:
        return self._weights is not None

    @property
    def is_heterogeneous(self) -> bool:
        return self._edge_types is not None

    @property
    def is_undirected(self) -> bool:
        """True if built by mirroring every edge (storage is still CSR)."""
        return self._undirected

    # ------------------------------------------------------------------
    # Per-vertex access
    # ------------------------------------------------------------------
    def edge_range(self, vertex: int) -> tuple[int, int]:
        """Return the half-open edge-index range ``[start, end)`` of
        ``vertex``'s out-edges in the flat arrays."""
        return int(self._offsets[vertex]), int(self._offsets[vertex + 1])

    def out_degree(self, vertex: int) -> int:
        """Out-degree of a single vertex."""
        return int(self._offsets[vertex + 1] - self._offsets[vertex])

    def out_degrees(self) -> np.ndarray:
        """Out-degrees of all vertices as an int64 array."""
        return np.diff(self._offsets)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Targets of ``vertex``'s out-edges (read-only view, sorted)."""
        start, end = self.edge_range(vertex)
        return self._targets[start:end]

    def edge_weights(self, vertex: int) -> np.ndarray:
        """Weights of ``vertex``'s out-edges; all-ones for unweighted."""
        start, end = self.edge_range(vertex)
        if self._weights is None:
            return np.ones(end - start, dtype=np.float64)
        return self._weights[start:end]

    def edge_types_of(self, vertex: int) -> np.ndarray:
        """Edge-type labels of ``vertex``'s out-edges."""
        if self._edge_types is None:
            raise GraphError("graph has no edge types")
        start, end = self.edge_range(vertex)
        return self._edge_types[start:end]

    def weight_of_edge(self, edge_index: int) -> float:
        """Weight of a single edge by flat index (1.0 if unweighted)."""
        if self._weights is None:
            return 1.0
        return float(self._weights[edge_index])

    def total_out_weight(self, vertex: int) -> float:
        """Sum of the out-edge weights of ``vertex`` (its out-degree if
        the graph is unweighted)."""
        if self._weights is None:
            return float(self.out_degree(vertex))
        start, end = self.edge_range(vertex)
        return float(self._weights[start:end].sum())

    # ------------------------------------------------------------------
    # Membership queries
    # ------------------------------------------------------------------
    def has_edge(self, source: int, target: int) -> bool:
        """True if the directed edge ``source -> target`` exists.

        O(log d) binary search over the sorted adjacency slice.  This is
        the primitive behind ``postNeighbourQuery`` in the paper's
        node2vec sample code (Figure 4).
        """
        return self.edge_index(source, target) >= 0

    def edge_index(self, source: int, target: int) -> int:
        """Flat index of edge ``source -> target``, or -1 if absent.

        If parallel edges exist, the index of the first one is returned.
        """
        start, end = self.edge_range(source)
        position = int(np.searchsorted(self._targets[start:end], target))
        index = start + position
        if index < end and self._targets[index] == target:
            return index
        return -1

    def _edge_key_array(self) -> np.ndarray | None:
        """Sorted int64 keys ``source * |V| + target``, one per edge.

        CSR stores targets sorted within each source slice, so the key
        array is globally non-decreasing and a single C-level
        ``np.searchsorted`` answers thousands of adjacency queries at
        once — replacing the lane-stepped Python binary search that
        dominated the dynamic-walk hot path.  Returns ``None`` when the
        key would overflow int64 (|V| >= ~3e9), in which case callers
        fall back to :meth:`_bound_batch`.
        """
        if self.num_vertices >= _KEY_VERTEX_LIMIT:
            return None
        if self._edge_keys is None:
            degrees = np.diff(self._offsets)
            sources = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), degrees
            )
            keys = sources * np.int64(self.num_vertices) + self._targets
            keys.setflags(write=False)
            self._edge_keys = keys
        return self._edge_keys

    def has_edges_batch(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Vectorised ``has_edge`` over aligned source/target arrays.

        Used by the vectorised node2vec kernel to answer many state
        queries at once.
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise GraphError("sources and targets must align")
        if sources.size == 0:
            return np.zeros(sources.shape, dtype=bool)
        keys = self._edge_key_array()
        if keys is None:
            first, _count = self.edge_span_batch(sources, targets)
            return first >= 0
        if self._key_hash is None:
            self._key_hash = _build_key_hash(keys)
        table, bits = self._key_hash
        queries = sources * np.int64(self.num_vertices) + targets
        return _key_hash_contains(table, bits, queries)

    def edge_span_batch(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """For each (source, target) pair, the flat index of the first
        matching edge (-1 if absent) and the number of parallel copies.

        node2vec's outlier folding uses this to locate the return edge
        and its exact static mass, even when parallel edges exist.
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise GraphError("sources and targets must align")
        if sources.size == 0:
            empty = np.zeros(sources.shape, dtype=np.int64)
            return empty - 1, empty.copy()
        keys = self._edge_key_array()
        if keys is None:
            lower = self._bound_batch(sources, targets, strict=True)
            upper = self._bound_batch(sources, targets, strict=False)
        else:
            queries = sources * np.int64(self.num_vertices) + targets
            lower = np.searchsorted(keys, queries, side="left")
            upper = np.searchsorted(keys, queries, side="right")
        counts = upper - lower
        first = np.where(counts > 0, lower, -1)
        return first, counts

    def _bound_batch(
        self, sources: np.ndarray, targets: np.ndarray, strict: bool
    ) -> np.ndarray:
        """Lane-stepped binary search over each source's adjacency slice.

        ``strict=True`` gives lower_bound (first index with value >=
        target), ``strict=False`` gives upper_bound (first index with
        value > target).  Kept as the fallback for graphs too large for
        the packed-key fast path (and as the reference the key-based
        implementation is tested against).
        """
        low = self._offsets[sources].copy()
        high = self._offsets[sources + 1].copy()
        clamp = max(self.num_edges - 1, 0)
        adjacency = self._targets
        active = low < high
        while active.any():
            mid = (low + high) >> 1
            probe = adjacency[np.minimum(mid, clamp)]
            go_right = active & (
                (probe < targets) if strict else (probe <= targets)
            )
            low = np.where(go_right, mid + 1, low)
            high = np.where(active & ~go_right, mid, high)
            active = low < high
        return low

    # ------------------------------------------------------------------
    # Statistics and validation
    # ------------------------------------------------------------------
    def degree_stats(self) -> DegreeStats:
        """Mean/variance/min/max of the out-degree distribution."""
        degrees = self.out_degrees()
        if degrees.size == 0:
            return DegreeStats(0.0, 0.0, 0, 0)
        return DegreeStats(
            mean=float(degrees.mean()),
            variance=float(degrees.var()),
            min=int(degrees.min()),
            max=int(degrees.max()),
        )

    def max_out_degree(self) -> int:
        degrees = self.out_degrees()
        return int(degrees.max()) if degrees.size else 0

    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphError`.

        Verifies per-vertex target sorting and, for graphs flagged
        undirected, that every edge has its reverse stored too.
        """
        for vertex in range(self.num_vertices):
            start, end = self.edge_range(vertex)
            slice_ = self._targets[start:end]
            if slice_.size > 1 and np.any(np.diff(slice_) < 0):
                raise GraphError(f"adjacency of vertex {vertex} is not sorted")
        if self._undirected:
            for vertex in range(self.num_vertices):
                for target in self.neighbors(vertex):
                    if not self.has_edge(int(target), vertex):
                        raise GraphError(
                            f"undirected graph missing reverse edge "
                            f"{target} -> {vertex}"
                        )

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        kind = "undirected" if self._undirected else "directed"
        extras = []
        if self.is_weighted:
            extras.append("weighted")
        if self.is_heterogeneous:
            extras.append("typed")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return (
            f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"{kind}{suffix})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if not (
            np.array_equal(self._offsets, other._offsets)
            and np.array_equal(self._targets, other._targets)
        ):
            return False
        for mine, theirs in (
            (self._weights, other._weights),
            (self._edge_types, other._edge_types),
            (self._vertex_types, other._vertex_types),
        ):
            if (mine is None) != (theirs is None):
                return False
            if mine is not None and not np.array_equal(mine, theirs):
                return False
        return self._undirected == other._undirected

    def __hash__(self) -> int:  # pragma: no cover - identity hash is fine
        return id(self)
