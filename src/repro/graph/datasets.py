"""Scaled-down stand-ins for the paper's real-world datasets.

The paper evaluates on LiveJournal (4.85M vertices / 86.7M undirected
edges), Friendster (70.2M / 3.61B), Twitter (41.7M / 2.93B) and
UK-Union (134M / 9.39B) — Table 2.  Those graphs cannot be used here
(multi-GB downloads, no network; and a pure-Python engine could not
walk billions of edges in bench time anyway), so each dataset is
replaced by a synthetic graph that matches the property every reported
effect actually depends on: the *shape* of the degree distribution.

Table 2's story is one of increasing skew: LiveJournal and Friendster
have moderate degree variance (2.7e3 and 1.6e4), while Twitter and
UK-Union are extremely skewed (6.4e6 and 3.0e6) despite similar means.
The stand-ins preserve that ordering — tests in
``tests/test_datasets.py`` assert it — so full-scan sampling blows up
on the Twitter/UK stand-ins exactly as in the paper, while rejection
sampling stays flat.

All stand-ins are undirected (the paper uses undirected versions of all
four graphs) and take a ``scale`` knob so benchmarks can trade fidelity
for runtime.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import assign_random_weights, from_arrays
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    sample_truncated_power_law,
    truncated_power_law_graph,
)

__all__ = [
    "livejournal_like",
    "friendster_like",
    "twitter_like",
    "ukunion_like",
    "DATASETS",
    "load_dataset",
]


def _sized(base: int, scale: float) -> int:
    value = int(round(base * scale))
    if value < 100:
        raise GraphError("scale too small; need at least 100 vertices")
    return value


def _power_law_with_hotspots(
    num_vertices: int,
    exponent: float,
    min_degree: int,
    max_degree: int,
    num_hotspots: int,
    hotspot_degree: int,
    seed: int,
) -> CSRGraph:
    """Truncated power-law base plus a few celebrity hubs, mirrored.

    Real Twitter-scale skew (degree variance ~1300x the squared mean)
    cannot be reached by a truncated power law at simulator scale: the
    hubs that dominate E[d^2] have millions of followers.  Injecting a
    handful of vertices of degree ~n/2 recreates the same *mechanism*
    (a celebrity is adjacent to a constant fraction of the graph) at
    any n.
    """
    rng = np.random.default_rng(seed)
    degrees = sample_truncated_power_law(
        rng, num_vertices, exponent, min_degree, max_degree
    )
    sources = np.repeat(np.arange(num_vertices, dtype=np.int64), degrees)
    targets = rng.integers(0, num_vertices, size=sources.size, dtype=np.int64)
    collisions = targets == sources
    targets[collisions] = (targets[collisions] + 1) % num_vertices

    plain = num_vertices - num_hotspots
    extra_sources = []
    extra_targets = []
    for hotspot in range(plain, num_vertices):
        attached = rng.integers(0, plain, size=hotspot_degree, dtype=np.int64)
        extra_sources.append(np.full(hotspot_degree, hotspot, dtype=np.int64))
        extra_targets.append(attached)
    sources = np.concatenate([sources, *extra_sources])
    targets = np.concatenate([targets, *extra_targets])
    return from_arrays(num_vertices, sources, targets, undirected=True)


def livejournal_like(scale: float = 1.0, seed: int = 7, weighted: bool = False) -> CSRGraph:
    """LiveJournal stand-in: smallest graph, mild skew.

    Paper profile: mean degree 17.9, variance 2.7e3 (variance/mean^2
    around 8.5).
    """
    graph = truncated_power_law_graph(
        num_vertices=_sized(12_000, scale),
        exponent=2.1,
        min_degree=3,
        max_degree=max(12, int(300 * scale**0.5)),
        seed=seed,
        undirected=True,
    )
    return assign_random_weights(graph, seed=seed + 1) if weighted else graph


def friendster_like(scale: float = 1.0, seed: int = 11, weighted: bool = False) -> CSRGraph:
    """Friendster stand-in: large, moderate skew.

    Paper profile: mean degree 51.4, variance 1.6e4 — the "well
    behaved" big graph of Table 1, where full-scan node2vec costs only
    about 7x the mean degree per step.
    """
    graph = truncated_power_law_graph(
        num_vertices=_sized(20_000, scale),
        exponent=1.8,
        min_degree=4,
        max_degree=max(60, int(2500 * scale**0.5)),
        seed=seed,
        undirected=True,
    )
    return assign_random_weights(graph, seed=seed + 1) if weighted else graph


def twitter_like(scale: float = 1.0, seed: int = 13, weighted: bool = False) -> CSRGraph:
    """Twitter stand-in: extreme skew (the paper's stress case).

    Paper profile: mean degree 70.4, variance 6.4e6 — 395x the variance
    of Friendster at a similar mean.  A low power-law exponent with a
    truncation bound that grows with the vertex count reproduces the
    handful of celebrity hubs that make full-scan sampling examine
    about 92,000 edges per step (Table 1).
    """
    num_vertices = _sized(16_000, scale)
    graph = _power_law_with_hotspots(
        num_vertices=num_vertices,
        exponent=2.2,
        min_degree=2,
        max_degree=max(40, num_vertices // 64),
        num_hotspots=max(2, num_vertices // 2000),
        hotspot_degree=num_vertices // 2,
        seed=seed,
    )
    return assign_random_weights(graph, seed=seed + 1) if weighted else graph


def ukunion_like(scale: float = 1.0, seed: int = 17, weighted: bool = False) -> CSRGraph:
    """UK-Union stand-in: the largest graph, heavily skewed.

    Paper profile: mean degree 70.3, variance 3.0e6.
    """
    num_vertices = _sized(28_000, scale)
    graph = _power_law_with_hotspots(
        num_vertices=num_vertices,
        exponent=2.2,
        min_degree=3,
        max_degree=max(60, num_vertices // 70),
        num_hotspots=max(2, num_vertices // 3500),
        hotspot_degree=int(num_vertices * 0.4),
        seed=seed,
    )
    return assign_random_weights(graph, seed=seed + 1) if weighted else graph


DATASETS: dict[str, Callable[..., CSRGraph]] = {
    "livejournal": livejournal_like,
    "friendster": friendster_like,
    "twitter": twitter_like,
    "ukunion": ukunion_like,
}


def load_dataset(
    name: str, scale: float = 1.0, weighted: bool = False, seed: int | None = None
) -> CSRGraph:
    """Load a stand-in dataset by (case-insensitive) paper name."""
    factory = DATASETS.get(name.lower())
    if factory is None:
        raise GraphError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    kwargs: dict[str, object] = {"scale": scale, "weighted": weighted}
    if seed is not None:
        kwargs["seed"] = seed
    return factory(**kwargs)
