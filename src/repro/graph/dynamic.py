"""Dynamic graphs: epoch-snapshot isolation over the immutable CSR.

KnightKing's engines assume a static :class:`~repro.graph.csr.CSRGraph`
whose arrays never move under a running walk.  This module keeps that
invariant while supporting live edge streams, by separating *mutation*
from *visibility*:

* a :class:`DynamicGraph` wraps a base CSR with a per-vertex **delta
  buffer** (copy-on-write adjacency overlays);
* :meth:`DynamicGraph.commit` applies one
  :class:`UpdateBatch` (insert / delete / reweight) and advances a
  monotonically numbered **epoch**;
* :meth:`DynamicGraph.snapshot` materialises the current epoch into an
  immutable :class:`EpochSnapshot` — a real ``CSRGraph`` plus
  incrementally maintained sampler state — that running walks pin and
  later commits can never perturb (snapshot isolation by
  immutability);
* :meth:`DynamicGraph.compact` folds the delta buffer back into the
  base CSR, bounding overlay growth.

Durability comes from a write-ahead log
(:class:`~repro.graph.wal.WriteAheadLog`): every batch is logged and
flushed *before* it is applied, so :meth:`DynamicGraph.recover` lands
exactly on the last committed epoch after a crash — a torn tail (the
partial record of the batch being written when the process died) is
truncated and reported, never replayed.  A durably compacted base
(:meth:`DynamicGraph.save_compacted`) carries its epoch id, and
recovery skips WAL records the base already folded in, which makes the
base-write and log-truncate steps individually crash-safe without
needing cross-file atomicity.

Sampler maintenance is incremental and **self-verifying**: per epoch,
only touched vertices' alias / ITS / Q(v) entries are rebuilt (see
:mod:`repro.sampling.incremental` for why that is bit-exact), and an
optional verification mode re-derives sampled vertices from scratch,
counts any mismatch, and falls back to a full rebuild — the tables a
walk sees are never silently wrong.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError, WalError
from repro.graph.csr import CSRGraph
from repro.graph.wal import WalRecoveryReport, WriteAheadLog
from repro.sampling.incremental import (
    MaintenanceStats,
    default_static_weights,
    incremental_alias_tables,
    incremental_its_tables,
    slice_gather_map,
    verify_alias_tables,
    verify_its_tables,
)

__all__ = [
    "DynamicGraph",
    "DynamicGraphStats",
    "EdgeUpdate",
    "EpochSnapshot",
    "UpdateBatch",
    "generate_churn_batches",
    "parse_update_stream",
]

INSERT, DELETE, REWEIGHT = 0, 1, 2
_KIND_NAMES = {INSERT: "insert", DELETE: "delete", REWEIGHT: "reweight"}
_KIND_CODES = {name: code for code, name in _KIND_NAMES.items()}

_BATCH_HEADER = struct.Struct("<I")


@dataclass(frozen=True)
class EdgeUpdate:
    """One logical edge mutation.

    ``kind`` is ``"insert"``, ``"delete"``, or ``"reweight"``; on
    undirected graphs the mutation applies to both stored directions,
    matching :class:`~repro.graph.builder.GraphBuilder` semantics.
    """

    kind: str
    source: int
    target: int
    weight: float = 1.0
    edge_type: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KIND_CODES:
            raise GraphError(f"unknown update kind {self.kind!r}")


@dataclass(frozen=True)
class UpdateBatch:
    """A batch of edge updates committed as one epoch.

    Stored as parallel arrays so batches serialize to the write-ahead
    log and apply without per-edge Python objects.
    """

    kinds: np.ndarray
    sources: np.ndarray
    targets: np.ndarray
    weights: np.ndarray
    edge_types: np.ndarray

    def __len__(self) -> int:
        return int(self.kinds.size)

    @classmethod
    def from_updates(cls, updates: list[EdgeUpdate] | tuple) -> "UpdateBatch":
        updates = list(updates)
        return cls(
            kinds=np.asarray(
                [_KIND_CODES[u.kind] for u in updates], dtype=np.uint8
            ),
            sources=np.asarray([u.source for u in updates], dtype=np.int64),
            targets=np.asarray([u.target for u in updates], dtype=np.int64),
            weights=np.asarray([u.weight for u in updates], dtype=np.float64),
            edge_types=np.asarray(
                [u.edge_type for u in updates], dtype=np.int32
            ),
        )

    def updates(self) -> list[EdgeUpdate]:
        return [
            EdgeUpdate(
                kind=_KIND_NAMES[int(self.kinds[i])],
                source=int(self.sources[i]),
                target=int(self.targets[i]),
                weight=float(self.weights[i]),
                edge_type=int(self.edge_types[i]),
            )
            for i in range(len(self))
        ]

    def to_bytes(self) -> bytes:
        return b"".join(
            [
                _BATCH_HEADER.pack(len(self)),
                np.ascontiguousarray(self.kinds).tobytes(),
                np.ascontiguousarray(self.sources).tobytes(),
                np.ascontiguousarray(self.targets).tobytes(),
                np.ascontiguousarray(self.weights).tobytes(),
                np.ascontiguousarray(self.edge_types).tobytes(),
            ]
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "UpdateBatch":
        if len(blob) < _BATCH_HEADER.size:
            raise WalError("truncated update-batch payload")
        (count,) = _BATCH_HEADER.unpack_from(blob)
        sizes = [count, count * 8, count * 8, count * 8, count * 4]
        if len(blob) != _BATCH_HEADER.size + sum(sizes):
            raise WalError("update-batch payload has the wrong length")
        cursor = _BATCH_HEADER.size
        parts = []
        for size, dtype in zip(
            sizes, (np.uint8, np.int64, np.int64, np.float64, np.int32)
        ):
            parts.append(
                np.frombuffer(blob, dtype=dtype, count=count, offset=cursor)
            )
            cursor += size
        return cls(*parts)


@dataclass
class DynamicGraphStats:
    """Accounting of one dynamic graph's lifetime.

    The conservation law the chaos tests pin: every update submitted
    through a committed batch is applied exactly once —
    ``updates_submitted == inserts_applied + deletes_applied +
    reweights_applied`` (counting logical updates; the undirected
    mirror is bookkeeping, not a second update).
    """

    epochs_committed: int = 0
    updates_submitted: int = 0
    inserts_applied: int = 0
    deletes_applied: int = 0
    reweights_applied: int = 0
    compactions: int = 0
    wal_records_written: int = 0
    wal_bytes_written: int = 0
    recovery: WalRecoveryReport | None = None

    def conservation_balanced(self) -> bool:
        return self.updates_submitted == (
            self.inserts_applied
            + self.deletes_applied
            + self.reweights_applied
        )


class EpochSnapshot:
    """An immutable view of one committed epoch.

    ``graph`` is a real read-only :class:`CSRGraph` — every engine runs
    on it unchanged — and the snapshot lazily carries the epoch's
    sampler state (incrementally maintained by the owning
    :class:`DynamicGraph`).  Snapshots stay valid after further
    commits: later epochs build new arrays, they never mutate old ones.
    """

    def __init__(
        self,
        owner: "DynamicGraph",
        epoch: int,
        graph: CSRGraph,
        touched: np.ndarray,
    ) -> None:
        self._owner = owner
        self.epoch = epoch
        self.graph = graph
        #: vertices whose adjacency changed relative to the previous epoch
        self.touched = touched
        self._tables: dict[str, object] = {}

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def maintenance(self) -> MaintenanceStats:
        """The owner's cumulative incremental-maintenance counters."""
        return self._owner.maintenance

    def tables(self, kind: str):
        """This epoch's sampler tables (``"alias"`` or ``"its"``)."""
        if kind not in self._tables:
            self._tables[kind] = self._owner._tables_for(self, kind)
        return self._tables[kind]

    def bounds_for(
        self, program, use_lower_bound: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Incrementally maintained Q(v) / L(v) arrays for ``program``."""
        return self._owner._bounds_for(self, program, use_lower_bound)


class _Adjacency:
    """Mutable copy of one vertex's edge slice (the delta buffer unit)."""

    __slots__ = ("targets", "weights", "edge_types")

    def __init__(
        self,
        targets: np.ndarray,
        weights: np.ndarray,
        edge_types: np.ndarray,
    ) -> None:
        self.targets = targets
        self.weights = weights
        self.edge_types = edge_types

    def copy(self) -> "_Adjacency":
        return _Adjacency(
            self.targets.copy(), self.weights.copy(), self.edge_types.copy()
        )


class DynamicGraph:
    """A CSR graph accepting committed update batches in epochs.

    Parameters
    ----------
    base:
        the starting graph (epoch ``base_epoch``, normally 0).
    wal_path:
        when given, every committed batch is appended (and flushed) to
        a write-ahead log at this path *before* being applied.
    verify:
        self-verification of incremental sampler maintenance:
        ``"off"`` (default), ``"sample"`` (probe ``verify_samples``
        touched vertices plus a couple of untouched ones per table
        build), or ``"full"`` (probe every vertex).  A failed probe is
        counted and triggers a from-scratch rebuild.
    verify_samples, seed:
        probe count and the deterministic seed the probes derive from.
    compact_every:
        auto-compact after this many commits (0 = manual only).
    retain_epochs:
        how many recent :class:`EpochSnapshot` objects to keep
        addressable through :meth:`snapshot_at`.
    """

    def __init__(
        self,
        base: CSRGraph,
        wal_path: str | os.PathLike | None = None,
        verify: str = "off",
        verify_samples: int = 8,
        seed: int = 0,
        compact_every: int = 0,
        retain_epochs: int = 8,
        base_epoch: int = 0,
    ) -> None:
        if verify not in ("off", "sample", "full"):
            raise GraphError(f"unknown verify mode {verify!r}")
        self._base = base
        self._base_epoch = int(base_epoch)
        self._epoch = int(base_epoch)
        self._overlay: dict[int, _Adjacency] = {}
        self._touched_by_epoch: dict[int, np.ndarray] = {}
        self._snapshots: dict[int, EpochSnapshot] = {}
        self._table_cache: dict[str, tuple[int, object]] = {}
        self._bounds_cache: dict[str, tuple[int, np.ndarray, np.ndarray]] = {}
        self._weighted = base.weights is not None
        self._typed = base.edge_types is not None
        self._verify = verify
        self._verify_samples = int(verify_samples)
        self._seed = int(seed)
        self._compact_every = int(compact_every)
        self._commits_since_compaction = 0
        self._retain_epochs = max(1, int(retain_epochs))
        self.stats = DynamicGraphStats()
        self.maintenance = MaintenanceStats()
        self._wal = (
            WriteAheadLog.create(str(wal_path)) if wal_path is not None else None
        )
        # Test-only hooks: corrupt one incrementally maintained entry
        # (to exercise the verification fallback) / crash between the
        # two steps of a durable compaction.
        self._test_corrupt_incremental = False
        self._test_crash_in_compaction = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"DynamicGraph(epoch={self._epoch}, "
            f"|V|={self._base.num_vertices}, "
            f"delta_vertices={len(self._overlay)}, "
            f"wal={'on' if self._wal is not None else 'off'})"
        )

    @property
    def epoch(self) -> int:
        """The last committed epoch (the one snapshots pin)."""
        return self._epoch

    @property
    def base(self) -> CSRGraph:
        return self._base

    @property
    def num_vertices(self) -> int:
        return self._base.num_vertices

    @property
    def wal(self) -> WriteAheadLog | None:
        return self._wal

    def delta_vertices(self) -> int:
        """Vertices currently held in the delta buffer."""
        return len(self._overlay)

    # ------------------------------------------------------------------
    # Committing updates
    # ------------------------------------------------------------------
    def commit(self, updates: UpdateBatch | list[EdgeUpdate]) -> int:
        """Apply one batch as the next epoch; returns the new epoch id.

        The batch is validated and fully staged first, then logged to
        the WAL (write-ahead: a batch is either durably logged and
        applied, or rejected untouched), then installed.  A staging
        error — e.g. deleting an edge that does not exist — leaves the
        graph and the log exactly as they were.
        """
        batch = (
            updates
            if isinstance(updates, UpdateBatch)
            else UpdateBatch.from_updates(updates)
        )
        staged, counts = self._stage_batch(batch)
        if self._wal is not None:
            self._wal.append(self._epoch + 1, batch.to_bytes())
            self.stats.wal_records_written = self._wal.records_written
            self.stats.wal_bytes_written = self._wal.bytes_written
        self._install(batch, staged, counts)
        if (
            self._compact_every > 0
            and self._commits_since_compaction >= self._compact_every
        ):
            self.compact()
        return self._epoch

    def _install(
        self,
        batch: UpdateBatch,
        staged: dict[int, _Adjacency],
        counts: tuple[int, int, int],
    ) -> None:
        self._overlay.update(staged)
        self._epoch += 1
        self._commits_since_compaction += 1
        touched = np.asarray(sorted(staged), dtype=np.int64)
        self._touched_by_epoch[self._epoch] = touched
        inserts, deletes, reweights = counts
        self.stats.epochs_committed += 1
        self.stats.updates_submitted += len(batch)
        self.stats.inserts_applied += inserts
        self.stats.deletes_applied += deletes
        self.stats.reweights_applied += reweights

    def _stage_batch(
        self, batch: UpdateBatch
    ) -> tuple[dict[int, _Adjacency], tuple[int, int, int]]:
        """Apply ``batch`` to copies of the touched adjacencies.

        Pure with respect to ``self``: nothing is installed, so any
        validation error aborts the commit with no side effects.
        """
        staged: dict[int, _Adjacency] = {}
        counts = [0, 0, 0]
        mirror = self._base.is_undirected
        num_vertices = self._base.num_vertices
        for i in range(len(batch)):
            kind = int(batch.kinds[i])
            source = int(batch.sources[i])
            target = int(batch.targets[i])
            weight = float(batch.weights[i])
            edge_type = int(batch.edge_types[i])
            for vertex in (source, target):
                if not 0 <= vertex < num_vertices:
                    raise GraphError(
                        f"update endpoint {vertex} out of range "
                        f"[0, {num_vertices})"
                    )
            if kind != DELETE and (weight < 0 or not np.isfinite(weight)):
                raise GraphError(
                    f"update weight must be finite and non-negative, "
                    f"got {weight!r}"
                )
            self._stage_one(staged, kind, source, target, weight, edge_type)
            if mirror:
                self._stage_one(staged, kind, target, source, weight, edge_type)
            counts[kind] += 1
        return staged, tuple(counts)

    def _stage_one(
        self,
        staged: dict[int, _Adjacency],
        kind: int,
        source: int,
        target: int,
        weight: float,
        edge_type: int,
    ) -> None:
        adj = staged.get(source)
        if adj is None:
            existing = self._overlay.get(source)
            adj = existing.copy() if existing is not None else self._slice(source)
            staged[source] = adj
        if kind == INSERT:
            # After any existing edges to the same target: matches the
            # stable (source, target) lexsort of GraphBuilder, where
            # newly added parallel edges follow previously added ones.
            position = int(np.searchsorted(adj.targets, target, side="right"))
            adj.targets = np.insert(adj.targets, position, target)
            adj.weights = np.insert(adj.weights, position, weight)
            adj.edge_types = np.insert(adj.edge_types, position, edge_type)
            if weight != 1.0:
                self._weighted = True
            if edge_type != 0:
                self._typed = True
            return
        position = int(np.searchsorted(adj.targets, target, side="left"))
        if position >= adj.targets.size or adj.targets[position] != target:
            verb = _KIND_NAMES[kind]
            raise GraphError(
                f"{verb} of missing edge {source}->{target} "
                f"(epoch {self._epoch})"
            )
        if kind == DELETE:
            adj.targets = np.delete(adj.targets, position)
            adj.weights = np.delete(adj.weights, position)
            adj.edge_types = np.delete(adj.edge_types, position)
        else:  # REWEIGHT
            adj.weights[position] = weight
            self._weighted = True

    def _slice(self, vertex: int) -> _Adjacency:
        start, end = self._base.edge_range(vertex)
        targets = self._base.targets[start:end].copy()
        weights = (
            self._base.weights[start:end].copy()
            if self._base.weights is not None
            else np.ones(end - start, dtype=np.float64)
        )
        edge_types = (
            self._base.edge_types[start:end].copy()
            if self._base.edge_types is not None
            else np.zeros(end - start, dtype=np.int32)
        )
        return _Adjacency(targets, weights, edge_types)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> EpochSnapshot:
        """The current epoch as an immutable view (cached per epoch)."""
        cached = self._snapshots.get(self._epoch)
        if cached is not None:
            return cached
        graph = self._materialize()
        touched = self._touched_by_epoch.get(
            self._epoch, np.zeros(0, dtype=np.int64)
        )
        snap = EpochSnapshot(self, self._epoch, graph, touched)
        self._snapshots[self._epoch] = snap
        while len(self._snapshots) > self._retain_epochs:
            del self._snapshots[min(self._snapshots)]
        return snap

    def snapshot_at(self, epoch: int) -> EpochSnapshot:
        """A retained snapshot by epoch id.

        Only epochs still in the retention window are addressable in
        memory; older ones must be reconstructed by
        :meth:`recover`\\ ``(..., replay_to=epoch)`` from the WAL.
        """
        if epoch == self._epoch:
            return self.snapshot()
        snap = self._snapshots.get(epoch)
        if snap is None:
            raise GraphError(
                f"epoch {epoch} is not retained (current {self._epoch}); "
                "recover from the write-ahead log with replay_to"
            )
        return snap

    def _materialize(self) -> CSRGraph:
        base = self._base
        if not self._overlay:
            return base
        degrees = np.diff(base.offsets).copy()
        for vertex, adj in self._overlay.items():
            degrees[vertex] = adj.targets.size
        offsets = np.zeros(base.num_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        num_edges = int(offsets[-1])

        targets = np.empty(num_edges, dtype=np.int64)
        weights = np.empty(num_edges, dtype=np.float64) if self._weighted else None
        edge_types = np.empty(num_edges, dtype=np.int32) if self._typed else None

        overlay_vertices = np.asarray(sorted(self._overlay), dtype=np.int64)
        mask = np.ones(base.num_vertices, dtype=bool)
        mask[overlay_vertices] = False
        untouched = np.nonzero(mask)[0]
        src, dst = slice_gather_map(base.offsets, offsets, untouched)
        targets[dst] = base.targets[src]
        if weights is not None:
            weights[dst] = (
                base.weights[src] if base.weights is not None else 1.0
            )
        if edge_types is not None:
            edge_types[dst] = (
                base.edge_types[src] if base.edge_types is not None else 0
            )
        for vertex in overlay_vertices:
            adj = self._overlay[int(vertex)]
            start = offsets[vertex]
            end = start + adj.targets.size
            targets[start:end] = adj.targets
            if weights is not None:
                weights[start:end] = adj.weights
            if edge_types is not None:
                edge_types[start:end] = adj.edge_types
        return CSRGraph(
            offsets=offsets,
            targets=targets,
            weights=weights,
            edge_types=edge_types,
            vertex_types=base.vertex_types,
            undirected=base.is_undirected,
        )

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Fold the delta buffer into the base CSR (in memory).

        The current epoch's materialised graph *becomes* the base;
        retained snapshots stay valid (their arrays are unshared).
        Durability is unchanged — the WAL still holds every record
        since the last durable base — so a crash mid-compaction simply
        recovers by replaying onto the old base.
        """
        snap = self.snapshot()
        self._base = snap.graph
        self._base_epoch = self._epoch
        self._overlay.clear()
        self._commits_since_compaction = 0
        self.stats.compactions += 1

    def save_compacted(
        self,
        base_path: str | os.PathLike,
        truncate_wal: bool = True,
    ) -> None:
        """Durable compaction: persist the base, then drop folded WAL
        records.

        Two independently atomic steps (write-then-rename for each
        file), ordered so every crash point recovers to the last
        committed epoch: records carry epoch ids and the base carries
        its fold epoch, so replaying a stale log over a newer base
        skips the already-folded prefix instead of double-applying it.
        """
        from repro.graph.io import save_binary

        self.compact()
        # np.savez appends ".npz" to foreign suffixes; keep it last so
        # the sidecar lands where the rename expects it.
        tmp = str(base_path) + ".tmp.npz"
        save_binary(self._base, tmp, epoch=self._base_epoch)
        os.replace(tmp, str(base_path))
        if self._test_crash_in_compaction:
            from repro.graph.wal import _InjectedCrash

            raise _InjectedCrash("injected crash between base write and "
                                 "WAL truncation")
        if truncate_wal and self._wal is not None:
            self._wal.rewrite([])
            self.stats.wal_records_written = self._wal.records_written
            self.stats.wal_bytes_written = self._wal.bytes_written

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        base: CSRGraph,
        wal_path: str | os.PathLike,
        replay_to: int | None = None,
        base_epoch: int = 0,
        **kwargs,
    ) -> "DynamicGraph":
        """Rebuild from ``base`` plus the write-ahead log.

        Torn tails are truncated and reported
        (``stats.recovery``); records with epochs the base already
        folded in (``<= base_epoch``) are skipped.  ``replay_to`` stops
        at a specific epoch — the checkpoint-restore path — in which
        case the WAL is left untouched and detached (the instance is a
        read-only view of history; committing to it would fork the
        log).  A full replay reattaches the log for further appends.
        """
        log, records, report = WriteAheadLog.open(str(wal_path))
        dynamic = cls(base, base_epoch=base_epoch, **kwargs)
        report.records_replayed = 0
        partial = False
        for epoch, payload in records:
            if epoch <= base_epoch:
                report.records_skipped += 1
                continue
            if replay_to is not None and epoch > replay_to:
                partial = True
                break
            if epoch != dynamic._epoch + 1:
                log.close()
                raise WalError(
                    f"{wal_path}: epoch gap in log (expected "
                    f"{dynamic._epoch + 1}, found {epoch})"
                )
            batch = UpdateBatch.from_bytes(payload)
            staged, counts = dynamic._stage_batch(batch)
            dynamic._install(batch, staged, counts)
            report.records_replayed += 1
        if partial:
            log.close()
        else:
            dynamic._wal = log
            dynamic.stats.wal_records_written = log.records_written
            dynamic.stats.wal_bytes_written = log.bytes_written
        report.last_epoch = dynamic._epoch
        dynamic.stats.recovery = report
        return dynamic

    @classmethod
    def load_compacted(
        cls,
        base_path: str | os.PathLike,
        wal_path: str | os.PathLike,
        **kwargs,
    ) -> "DynamicGraph":
        """Recover from a durably compacted base plus its WAL."""
        from repro.graph.io import load_binary

        base, epoch = load_binary(base_path, with_epoch=True)
        return cls.recover(
            base, wal_path, base_epoch=0 if epoch is None else epoch, **kwargs
        )

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()

    # ------------------------------------------------------------------
    # Incremental sampler maintenance
    # ------------------------------------------------------------------
    def _touched_between(self, old: int, new: int) -> np.ndarray | None:
        """Union of touched vertices over epochs ``(old, new]``.

        ``None`` when any epoch in the range is no longer tracked
        (recovered instances only track replayed epochs) — the caller
        must fall back to a full rebuild.
        """
        parts = []
        for epoch in range(old + 1, new + 1):
            touched = self._touched_by_epoch.get(epoch)
            if touched is None:
                return None
            parts.append(touched)
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def _tables_for(self, snap: EpochSnapshot, kind: str):
        from repro.sampling.alias import VertexAliasTables
        from repro.sampling.its import VertexITSTables

        if kind not in ("alias", "its"):
            raise GraphError(f"unknown sampler-table kind {kind!r}")
        build_full = VertexAliasTables if kind == "alias" else VertexITSTables
        build_incremental = (
            incremental_alias_tables if kind == "alias" else incremental_its_tables
        )
        verify = verify_alias_tables if kind == "alias" else verify_its_tables

        static = default_static_weights(snap.graph)
        cached = self._table_cache.get(kind)
        touched = (
            self._touched_between(cached[0], snap.epoch)
            if cached is not None and cached[0] < snap.epoch
            else None
        )
        if cached is not None and cached[0] == snap.epoch:
            return cached[1]
        if touched is None:
            tables = build_full(snap.graph)
            self.maintenance.full_rebuilds += 1
        else:
            tables = build_incremental(cached[1], snap.graph, static, touched)
            self.maintenance.epochs_maintained += 1
            self.maintenance.vertices_rebuilt += int(touched.size)
            self.maintenance.vertices_copied += (
                snap.graph.num_vertices - int(touched.size)
            )
            if self._test_corrupt_incremental and touched.size:
                self._corrupt_one_entry(tables, kind, int(touched[0]))
            if self._verify != "off":
                probes = self._probe_vertices(snap, touched)
                self.maintenance.verify_checks += int(probes.size)
                bad = verify(tables, probes)
                if bad:
                    self.maintenance.verify_mismatches += len(bad)
                    self.maintenance.verify_fallbacks += 1
                    self.maintenance.full_rebuilds += 1
                    tables = build_full(snap.graph)
        self._table_cache[kind] = (snap.epoch, tables)
        return tables

    def _probe_vertices(
        self, snap: EpochSnapshot, touched: np.ndarray
    ) -> np.ndarray:
        if self._verify == "full":
            return np.arange(snap.graph.num_vertices, dtype=np.int64)
        from repro.sampling.rng import derive_rng

        rng = derive_rng(self._seed, snap.epoch)
        picks = []
        if touched.size:
            count = min(self._verify_samples, int(touched.size))
            picks.append(rng.choice(touched, size=count, replace=False))
        mask = np.ones(snap.graph.num_vertices, dtype=bool)
        mask[touched] = False
        untouched = np.nonzero(mask)[0]
        if untouched.size:
            count = min(2, int(untouched.size))
            picks.append(rng.choice(untouched, size=count, replace=False))
        if not picks:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(picks))

    @staticmethod
    def _corrupt_one_entry(tables, kind: str, vertex: int) -> None:
        start, end = tables.graph.edge_range(vertex)
        if start == end:
            tables._totals[vertex] = tables._totals[vertex] + 1.0
        elif kind == "alias":
            tables._prob[start] = tables._prob[start] * 0.5 + 0.25
        else:
            tables._cdf[start] = tables._cdf[start] + 0.125

    # ------------------------------------------------------------------
    # Incremental Q(v) / L(v) maintenance
    # ------------------------------------------------------------------
    def _bounds_for(
        self, snap: EpochSnapshot, program, use_lower_bound: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        from repro.core.program import WalkerProgram

        overrides_arrays = (
            type(program).upper_bound_array is not WalkerProgram.upper_bound_array
            or type(program).lower_bound_array
            is not WalkerProgram.lower_bound_array
        )
        if overrides_arrays:
            # The program computes its arrays wholesale (usually a
            # constant fill); per-vertex maintenance could diverge from
            # a global formula, so just call the override — it is the
            # from-scratch semantics by definition.
            upper = np.asarray(
                program.upper_bound_array(snap.graph), dtype=np.float64
            )
            lower = (
                np.asarray(program.lower_bound_array(snap.graph), np.float64)
                if use_lower_bound
                else np.zeros(snap.graph.num_vertices, dtype=np.float64)
            )
            return upper, lower

        key = self._program_signature(program, use_lower_bound)
        cached = self._bounds_cache.get(key)
        touched = (
            self._touched_between(cached[0], snap.epoch)
            if cached is not None and cached[0] < snap.epoch
            else None
        )
        if cached is not None and cached[0] == snap.epoch:
            return cached[1], cached[2]
        if touched is None:
            upper = np.asarray(
                program.upper_bound_array(snap.graph), dtype=np.float64
            )
            lower = (
                np.asarray(program.lower_bound_array(snap.graph), np.float64)
                if use_lower_bound
                else np.zeros(snap.graph.num_vertices, dtype=np.float64)
            )
            self.maintenance.full_rebuilds += 1
        else:
            upper = cached[1].copy()
            lower = cached[2].copy()
            for vertex in touched:
                vertex = int(vertex)
                upper[vertex] = program.dynamic_upper_bound(snap.graph, vertex)
                if use_lower_bound:
                    lower[vertex] = program.dynamic_lower_bound(
                        snap.graph, vertex
                    )
            self.maintenance.vertices_rebuilt += int(touched.size)
            if self._verify != "off":
                probes = self._probe_vertices(snap, touched)
                self.maintenance.verify_checks += int(probes.size)
                bad = [
                    int(v)
                    for v in probes
                    if upper[int(v)]
                    != program.dynamic_upper_bound(snap.graph, int(v))
                    or (
                        use_lower_bound
                        and lower[int(v)]
                        != program.dynamic_lower_bound(snap.graph, int(v))
                    )
                ]
                if bad:
                    self.maintenance.verify_mismatches += len(bad)
                    self.maintenance.verify_fallbacks += 1
                    self.maintenance.full_rebuilds += 1
                    upper = np.asarray(
                        program.upper_bound_array(snap.graph), dtype=np.float64
                    )
                    lower = (
                        np.asarray(
                            program.lower_bound_array(snap.graph), np.float64
                        )
                        if use_lower_bound
                        else np.zeros(snap.graph.num_vertices, np.float64)
                    )
        self._bounds_cache[key] = (snap.epoch, upper, lower)
        return upper, lower

    @staticmethod
    def _program_signature(program, use_lower_bound: bool) -> str:
        scalars = {
            name: value
            for name, value in sorted(vars(program).items())
            if isinstance(value, (bool, int, float, str))
        }
        return (
            f"{type(program).__module__}.{type(program).__qualname__}"
            f"|{scalars!r}|lower={use_lower_bound}"
        )


def parse_update_stream(source) -> list[UpdateBatch]:
    """Parse a textual update stream into per-epoch batches.

    ``source`` is a path or an iterable of lines.  Directives, one per
    line (``#`` comments and blanks ignored)::

        insert SRC DST [WEIGHT] [TYPE]
        delete SRC DST
        reweight SRC DST WEIGHT
        commit

    ``commit`` closes the current batch (one epoch); trailing updates
    without a final ``commit`` form a last batch.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source, "r", encoding="ascii") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    batches: list[UpdateBatch] = []
    pending: list[EdgeUpdate] = []
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        verb = fields[0].lower()
        try:
            if verb == "commit":
                if len(fields) != 1:
                    raise GraphError("commit takes no arguments")
                batches.append(UpdateBatch.from_updates(pending))
                pending = []
            elif verb == "insert":
                if not 3 <= len(fields) <= 5:
                    raise GraphError("insert takes 2-4 arguments")
                pending.append(
                    EdgeUpdate(
                        "insert",
                        int(fields[1]),
                        int(fields[2]),
                        float(fields[3]) if len(fields) > 3 else 1.0,
                        int(fields[4]) if len(fields) > 4 else 0,
                    )
                )
            elif verb == "delete":
                if len(fields) != 3:
                    raise GraphError("delete takes 2 arguments")
                pending.append(
                    EdgeUpdate("delete", int(fields[1]), int(fields[2]))
                )
            elif verb == "reweight":
                if len(fields) != 4:
                    raise GraphError("reweight takes 3 arguments")
                pending.append(
                    EdgeUpdate(
                        "reweight",
                        int(fields[1]),
                        int(fields[2]),
                        float(fields[3]),
                    )
                )
            else:
                raise GraphError(f"unknown directive {verb!r}")
        except (ValueError, GraphError) as exc:
            raise GraphError(
                f"update stream line {number}: {line!r}: {exc}"
            ) from exc
    if pending:
        batches.append(UpdateBatch.from_updates(pending))
    return batches


def generate_churn_batches(
    graph: CSRGraph,
    num_epochs: int,
    updates_per_epoch: int,
    seed: int,
    weight_low: float = 1.0,
    weight_high: float = 5.0,
) -> list[UpdateBatch]:
    """Synthetic follow/unfollow churn against ``graph``.

    Each epoch mixes inserts of fresh edges (follows), deletes of
    edges known to exist (unfollows), and reweights — all derived from
    a seeded RNG, so the same ``(graph, seed)`` yields the same stream
    on every run.  On undirected graphs updates use the canonical
    ``min->max`` orientation (the commit path mirrors them).
    """
    rng = np.random.default_rng(seed)
    num_vertices = graph.num_vertices
    # Track the evolving logical edge set (canonical orientation for
    # undirected graphs) so deletes always hit and inserts never
    # create unintended parallel edges.
    sources = np.repeat(
        np.arange(num_vertices, dtype=np.int64), graph.out_degrees()
    )
    if graph.is_undirected:
        pairs = set(
            zip(
                np.minimum(sources, graph.targets).tolist(),
                np.maximum(sources, graph.targets).tolist(),
            )
        )
    else:
        pairs = set(zip(sources.tolist(), graph.targets.tolist()))
    batches: list[UpdateBatch] = []
    for _ in range(num_epochs):
        updates: list[EdgeUpdate] = []
        for _ in range(updates_per_epoch):
            action = rng.random()
            if action < 0.4 or not pairs:
                for _ in range(32):
                    u = int(rng.integers(num_vertices))
                    v = int(rng.integers(num_vertices))
                    if graph.is_undirected:
                        u, v = min(u, v), max(u, v)
                    if u != v and (u, v) not in pairs:
                        break
                else:
                    continue
                pairs.add((u, v))
                weight = float(rng.uniform(weight_low, weight_high))
                updates.append(EdgeUpdate("insert", u, v, weight))
            elif action < 0.7:
                u, v = sorted(pairs)[int(rng.integers(len(pairs)))]
                pairs.remove((u, v))
                updates.append(EdgeUpdate("delete", u, v))
            else:
                u, v = sorted(pairs)[int(rng.integers(len(pairs)))]
                weight = float(rng.uniform(weight_low, weight_high))
                updates.append(EdgeUpdate("reweight", u, v, weight))
        batches.append(UpdateBatch.from_updates(updates))
    return batches
