"""Synthetic graph generators.

The paper's topology-sensitivity study (section 7.3, Figure 6) uses
three families of synthetic graphs, all reproduced here:

* uniform-degree graphs (Figure 6a, density sweep);
* truncated power-law graphs (Figure 6b, skewness sweep); and
* hotspot-injected graphs (Figure 6c, a uniform graph plus a few very
  high-degree vertices).

In addition, :func:`rmat_graph` and :func:`erdos_renyi_graph` provide
generic skewed/unskewed topologies used by the dataset stand-ins in
:mod:`repro.graph.datasets`.

All generators are deterministic given a seed and return
:class:`~repro.graph.csr.CSRGraph` instances built through the
vectorised fast path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_arrays
from repro.graph.csr import CSRGraph

__all__ = [
    "uniform_degree_graph",
    "truncated_power_law_graph",
    "hotspot_graph",
    "erdos_renyi_graph",
    "rmat_graph",
    "ring_graph",
    "complete_graph",
    "star_graph",
    "sample_truncated_power_law",
]


def _random_targets(
    rng: np.random.Generator, sources: np.ndarray, num_vertices: int
) -> np.ndarray:
    """Uniform random edge targets avoiding self loops.

    Self loops would make node2vec's ``d_tx = 0`` return-edge case
    ambiguous, so we shift any collision by one (mod n), which keeps the
    target distribution effectively uniform.
    """
    targets = rng.integers(0, num_vertices, size=sources.size, dtype=np.int64)
    collisions = targets == sources
    targets[collisions] = (targets[collisions] + 1) % num_vertices
    return targets


def uniform_degree_graph(
    num_vertices: int,
    degree: int,
    seed: int,
    undirected: bool = False,
) -> CSRGraph:
    """Graph where every vertex has exactly ``degree`` out-edges.

    Targets are uniform random (no self loops; parallel edges possible
    but rare for degree << n).  With ``undirected=True``, edges are
    mirrored, so the mean out-degree becomes ``2 * degree`` while the
    distribution stays tightly concentrated.

    This is the Figure 6a workload: traditional full-scan sampling
    costs O(degree) per step on it, rejection sampling O(1).
    """
    if degree <= 0:
        raise GraphError("degree must be positive")
    if num_vertices < 2:
        raise GraphError("need at least two vertices")
    rng = np.random.default_rng(seed)
    sources = np.repeat(np.arange(num_vertices, dtype=np.int64), degree)
    targets = _random_targets(rng, sources, num_vertices)
    return from_arrays(num_vertices, sources, targets, undirected=undirected)


def sample_truncated_power_law(
    rng: np.random.Generator,
    size: int,
    exponent: float,
    min_value: int,
    max_value: int,
) -> np.ndarray:
    """Draw ``size`` integers from a truncated power law.

    ``P(d) proportional to d ** -exponent`` on ``[min_value, max_value]``,
    zero outside — the paper's "truncated" degree distribution where the
    upper bound controls skewness (section 7.3).  Uses inverse-CDF
    sampling of the continuous analogue, then floors to integers.
    """
    if not min_value >= 1:
        raise GraphError("min_value must be >= 1")
    if max_value < min_value:
        raise GraphError("max_value must be >= min_value")
    if exponent == 1.0:
        # The general formula divides by (1 - exponent); handle the
        # logarithmic special case explicitly.
        uniforms = rng.random(size)
        values = min_value * np.exp(
            uniforms * np.log((max_value + 1) / min_value)
        )
    else:
        power = 1.0 - exponent
        low = float(min_value) ** power
        high = float(max_value + 1) ** power
        uniforms = rng.random(size)
        values = (low + uniforms * (high - low)) ** (1.0 / power)
    return np.clip(values.astype(np.int64), min_value, max_value)


def truncated_power_law_graph(
    num_vertices: int,
    exponent: float,
    min_degree: int,
    max_degree: int,
    seed: int,
    undirected: bool = False,
) -> CSRGraph:
    """Graph with out-degrees drawn from a truncated power law.

    Raising ``max_degree`` (the truncation bound) with everything else
    fixed increases degree variance much faster than the mean — the
    Figure 6b experiment raises it from 100 to 25600 and watches
    full-scan sampling cost blow up 67x while the mean grows 3.9x.
    """
    rng = np.random.default_rng(seed)
    degrees = sample_truncated_power_law(
        rng, num_vertices, exponent, min_degree, max_degree
    )
    sources = np.repeat(np.arange(num_vertices, dtype=np.int64), degrees)
    targets = _random_targets(rng, sources, num_vertices)
    return from_arrays(num_vertices, sources, targets, undirected=undirected)


def hotspot_graph(
    num_vertices: int,
    base_degree: int,
    num_hotspots: int,
    hotspot_degree: int,
    seed: int,
) -> CSRGraph:
    """A uniform-degree graph with a few very high-degree "hotspots".

    Reproduces the Figure 6c construction: start from a uniform graph
    of ``base_degree`` and add ``num_hotspots`` vertices each incident
    to ``hotspot_degree`` edges.  Hotspot edges are stored in both
    directions so hotspots both attract walkers (high in-degree) and
    are expensive to leave under full-scan sampling (high out-degree).

    The base uniform edges stay directed, matching
    :func:`uniform_degree_graph`'s exact-degree construction; only the
    hotspot attachments are mirrored.
    """
    if num_hotspots < 0:
        raise GraphError("num_hotspots must be non-negative")
    if num_hotspots and hotspot_degree <= 0:
        raise GraphError("hotspot_degree must be positive")
    if num_hotspots >= num_vertices:
        raise GraphError("more hotspots than vertices")
    rng = np.random.default_rng(seed)

    sources = np.repeat(np.arange(num_vertices, dtype=np.int64), base_degree)
    targets = _random_targets(rng, sources, num_vertices)

    # Hotspots are the last ``num_hotspots`` vertex ids; they attach to
    # uniform random non-hotspot vertices, mirrored in both directions.
    hotspot_ids = np.arange(
        num_vertices - num_hotspots, num_vertices, dtype=np.int64
    )
    extra_sources = []
    extra_targets = []
    for hotspot in hotspot_ids:
        attached = rng.integers(
            0, num_vertices - num_hotspots, size=hotspot_degree, dtype=np.int64
        )
        extra_sources.append(np.full(hotspot_degree, hotspot, dtype=np.int64))
        extra_targets.append(attached)
        extra_sources.append(attached)
        extra_targets.append(np.full(hotspot_degree, hotspot, dtype=np.int64))
    if extra_sources:
        sources = np.concatenate([sources, *extra_sources])
        targets = np.concatenate([targets, *extra_targets])
    return from_arrays(num_vertices, sources, targets)


def erdos_renyi_graph(
    num_vertices: int,
    mean_degree: float,
    seed: int,
    undirected: bool = False,
) -> CSRGraph:
    """G(n, m)-style random graph with the given mean out-degree."""
    if mean_degree <= 0:
        raise GraphError("mean_degree must be positive")
    rng = np.random.default_rng(seed)
    num_edges = int(round(num_vertices * mean_degree))
    sources = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    targets = _random_targets(rng, sources, num_vertices)
    return from_arrays(num_vertices, sources, targets, undirected=undirected)


def rmat_graph(
    scale: int,
    edge_factor: int,
    seed: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    undirected: bool = False,
) -> CSRGraph:
    """Recursive-matrix (R-MAT) graph with ``2**scale`` vertices.

    R-MAT produces the heavy-tailed, hub-dominated degree distributions
    characteristic of social/web graphs; it is our stand-in topology for
    Twitter-like and UK-Union-like skew.  Probabilities ``(a, b, c, d)``
    follow the Graph500 convention (``d = 1 - a - b - c``).
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphError("R-MAT probabilities must be a partition of 1")
    num_vertices = 1 << scale
    num_edges = num_vertices * edge_factor
    rng = np.random.default_rng(seed)

    sources = np.zeros(num_edges, dtype=np.int64)
    targets = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        quadrant = rng.random(num_edges)
        go_down = quadrant >= a + b  # rows c/d: source bit set
        go_right = ((quadrant >= a) & (quadrant < a + b)) | (quadrant >= a + b + c)
        bit = np.int64(1) << np.int64(scale - 1 - level)
        sources += bit * go_down
        targets += bit * go_right
    collisions = sources == targets
    targets[collisions] = (targets[collisions] + 1) % num_vertices
    # Scramble ids so hubs are not clustered at low vertex numbers,
    # which would bias contiguous 1-D partitions unrealistically.
    permutation = rng.permutation(num_vertices).astype(np.int64)
    return from_arrays(
        num_vertices,
        permutation[sources],
        permutation[targets],
        undirected=undirected,
    )


def ring_graph(num_vertices: int, undirected: bool = False) -> CSRGraph:
    """Simple cycle 0 -> 1 -> ... -> n-1 -> 0; handy in tests."""
    if num_vertices < 2:
        raise GraphError("ring needs at least two vertices")
    sources = np.arange(num_vertices, dtype=np.int64)
    targets = (sources + 1) % num_vertices
    return from_arrays(num_vertices, sources, targets, undirected=undirected)


def complete_graph(num_vertices: int) -> CSRGraph:
    """All ordered pairs (u, v), u != v; used as an oracle in tests."""
    if num_vertices < 2:
        raise GraphError("complete graph needs at least two vertices")
    grid_source, grid_target = np.meshgrid(
        np.arange(num_vertices, dtype=np.int64),
        np.arange(num_vertices, dtype=np.int64),
        indexing="ij",
    )
    mask = grid_source != grid_target
    return from_arrays(num_vertices, grid_source[mask], grid_target[mask])


def star_graph(num_leaves: int, undirected: bool = True) -> CSRGraph:
    """Hub vertex 0 connected to ``num_leaves`` leaves; the minimal
    hotspot topology, used to unit-test rejection-vs-full-scan costs."""
    if num_leaves < 1:
        raise GraphError("star needs at least one leaf")
    hub = np.zeros(num_leaves, dtype=np.int64)
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    return from_arrays(num_leaves + 1, hub, leaves, undirected=undirected)
