"""Heterogeneous-graph utilities for Meta-path walks.

Meta-path algorithms (paper section 2.2) constrain each walk step to an
edge *type* prescribed by a cyclic scheme.  The evaluation (section 7.1)
uses graphs with 5 edge types and 10 cyclic schemes of length 5, with
types assigned at random; :func:`assign_random_edge_types` reproduces
that setup on any graph.

:func:`bibliographic_graph` builds a small author/paper network with
semantically meaningful types (the paper's motivating example for
meta-paths: "isAuthor -> citedBy -> authoredBy^-1"), used by the
meta-path example application.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_arrays
from repro.graph.csr import CSRGraph

__all__ = [
    "assign_random_edge_types",
    "bibliographic_graph",
    "BibliographicSchema",
]


def assign_random_edge_types(graph: CSRGraph, num_types: int, seed: int) -> CSRGraph:
    """Return a copy of ``graph`` with uniform-random edge types.

    For undirected graphs both stored directions of a logical edge get
    the same type, keyed on the canonical (min, max) orientation — a
    typed undirected edge is one relation, not two.
    """
    if num_types <= 0:
        raise GraphError("num_types must be positive")
    rng = np.random.default_rng(seed)
    if graph.is_undirected:
        sources = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), graph.out_degrees()
        )
        low_end = np.minimum(sources, graph.targets)
        high_end = np.maximum(sources, graph.targets)
        keys = low_end * graph.num_vertices + high_end
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        per_logical = rng.integers(0, num_types, size=unique_keys.size, dtype=np.int32)
        edge_types = per_logical[inverse]
    else:
        edge_types = rng.integers(0, num_types, size=graph.num_edges, dtype=np.int32)
    return CSRGraph(
        offsets=graph.offsets.copy(),
        targets=graph.targets.copy(),
        weights=None if graph.weights is None else graph.weights.copy(),
        edge_types=edge_types,
        vertex_types=None if graph.vertex_types is None else graph.vertex_types.copy(),
        undirected=graph.is_undirected,
    )


@dataclass(frozen=True)
class BibliographicSchema:
    """Type labels used by :func:`bibliographic_graph`."""

    VERTEX_AUTHOR: int = 0
    VERTEX_PAPER: int = 1
    EDGE_WRITES: int = 0  # author -> paper
    EDGE_WRITTEN_BY: int = 1  # paper -> author
    EDGE_CITES: int = 2  # paper -> paper
    EDGE_CITED_BY: int = 3  # paper -> paper (reverse)


def bibliographic_graph(
    num_authors: int,
    num_papers: int,
    papers_per_author: int,
    citations_per_paper: int,
    seed: int,
) -> CSRGraph:
    """Author/paper heterogeneous graph for meta-path examples.

    Vertices ``0 .. num_authors-1`` are authors, the rest papers.
    Authors write random papers (typed ``WRITES``, reverse
    ``WRITTEN_BY``); papers cite random earlier papers (``CITES``,
    reverse ``CITED_BY``).  The resulting graph supports meta-path
    schemes such as ``WRITES -> CITES -> WRITTEN_BY`` that trace
    citation chains between authors.
    """
    if num_authors < 1 or num_papers < 2:
        raise GraphError("need at least one author and two papers")
    rng = np.random.default_rng(seed)
    schema = BibliographicSchema()
    paper_base = num_authors

    sources: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    types: list[np.ndarray] = []

    authors = np.repeat(
        np.arange(num_authors, dtype=np.int64), papers_per_author
    )
    written = paper_base + rng.integers(
        0, num_papers, size=authors.size, dtype=np.int64
    )
    sources.extend([authors, written])
    targets.extend([written, authors])
    types.append(np.full(authors.size, schema.EDGE_WRITES, dtype=np.int32))
    types.append(np.full(authors.size, schema.EDGE_WRITTEN_BY, dtype=np.int32))

    citing_local = np.repeat(
        np.arange(1, num_papers, dtype=np.int64), citations_per_paper
    )
    cited_local = (
        rng.random(citing_local.size) * citing_local
    ).astype(np.int64)  # cite a strictly earlier paper
    citing = paper_base + citing_local
    cited = paper_base + cited_local
    sources.extend([citing, cited])
    targets.extend([cited, citing])
    types.append(np.full(citing.size, schema.EDGE_CITES, dtype=np.int32))
    types.append(np.full(citing.size, schema.EDGE_CITED_BY, dtype=np.int32))

    vertex_types = np.concatenate(
        [
            np.full(num_authors, schema.VERTEX_AUTHOR, dtype=np.int32),
            np.full(num_papers, schema.VERTEX_PAPER, dtype=np.int32),
        ]
    )
    graph = from_arrays(
        num_authors + num_papers,
        np.concatenate(sources),
        np.concatenate(targets),
        edge_types=np.concatenate(types),
    )
    return CSRGraph(
        offsets=graph.offsets,
        targets=graph.targets,
        weights=None,
        edge_types=graph.edge_types,
        vertex_types=vertex_types,
        undirected=False,
    )
