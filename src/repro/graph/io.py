"""Graph persistence: edge-list text files and a compact binary format.

The text format is the lowest common denominator used by every graph
system (one ``src dst [weight] [type]`` line per edge, ``#`` comments);
the binary format is a plain ``.npz`` of the CSR arrays, loading in
O(read) without a re-sort.
"""

from __future__ import annotations

import os
import struct
import zipfile
import zlib

import numpy as np

from repro.errors import GraphFormatError, SnapshotCorruptError
from repro.graph.builder import from_arrays
from repro.graph.csr import CSRGraph

__all__ = [
    "save_edge_list",
    "load_edge_list",
    "save_binary",
    "load_binary",
]


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write one ``src dst [weight] [type]`` line per stored edge.

    Undirected graphs write both stored directions; loading with
    ``undirected=False`` (the default) round-trips exactly.
    """
    sources = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), graph.out_degrees()
    )
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"# vertices {graph.num_vertices}\n")
        for index in range(graph.num_edges):
            fields = [str(int(sources[index])), str(int(graph.targets[index]))]
            if graph.weights is not None:
                fields.append(repr(float(graph.weights[index])))
            if graph.edge_types is not None:
                if graph.weights is None:
                    fields.append("1.0")
                fields.append(str(int(graph.edge_types[index])))
            handle.write(" ".join(fields) + "\n")


def load_edge_list(
    path: str | os.PathLike,
    num_vertices: int | None = None,
    undirected: bool = False,
) -> CSRGraph:
    """Parse an edge-list text file into a CSR graph.

    Lines are ``src dst``, ``src dst weight`` or ``src dst weight type``;
    blank lines and ``#`` comments are ignored.  A ``# vertices N``
    header (as written by :func:`save_edge_list`) pins the vertex count;
    otherwise it defaults to ``max id + 1`` or the explicit argument.
    """
    sources: list[int] = []
    targets: list[int] = []
    weights: list[float] = []
    edge_types: list[int] = []
    any_weight = False
    any_type = False
    declared_vertices: int | None = None

    with open(path, "r", encoding="ascii") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "vertices":
                    declared_vertices = int(parts[1])
                continue
            fields = line.split()
            if len(fields) < 2 or len(fields) > 4:
                raise GraphFormatError(
                    f"{path}:{line_number}: expected 2-4 fields, got {len(fields)}"
                )
            try:
                sources.append(int(fields[0]))
                targets.append(int(fields[1]))
                if len(fields) >= 3:
                    weights.append(float(fields[2]))
                    any_weight = True
                else:
                    weights.append(1.0)
                if len(fields) == 4:
                    edge_types.append(int(fields[3]))
                    any_type = True
                else:
                    edge_types.append(0)
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{line_number}: cannot parse {line!r}"
                ) from exc

    if num_vertices is None:
        num_vertices = declared_vertices
    if num_vertices is None:
        if not sources:
            raise GraphFormatError(f"{path}: empty graph with no vertex count")
        num_vertices = max(max(sources), max(targets)) + 1

    return from_arrays(
        num_vertices,
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        weights=np.asarray(weights, dtype=np.float64) if any_weight else None,
        edge_types=np.asarray(edge_types, dtype=np.int32) if any_type else None,
        undirected=undirected,
    )


def _payload_checksum(payload: dict[str, np.ndarray]) -> int:
    """CRC32 over key names and array bytes, in sorted-key order."""
    crc = 0
    for key in sorted(payload):
        crc = zlib.crc32(key.encode("ascii"), crc)
        crc = zlib.crc32(np.ascontiguousarray(payload[key]).tobytes(), crc)
    return crc


def save_binary(
    graph: CSRGraph, path: str | os.PathLike, epoch: int | None = None
) -> None:
    """Save the raw CSR arrays as a checksummed, compressed ``.npz``.

    ``epoch`` tags the file with a dynamic-graph epoch id, so a
    compacted base written by :class:`~repro.graph.dynamic.DynamicGraph`
    knows which write-ahead-log records are already folded in.
    """
    payload: dict[str, np.ndarray] = {
        "offsets": graph.offsets,
        "targets": graph.targets,
        "undirected": np.asarray([graph.is_undirected]),
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    if graph.edge_types is not None:
        payload["edge_types"] = graph.edge_types
    if graph.vertex_types is not None:
        payload["vertex_types"] = graph.vertex_types
    if epoch is not None:
        payload["graph_epoch"] = np.asarray([epoch], dtype=np.int64)
    payload["checksum"] = np.asarray(
        [_payload_checksum(payload)], dtype=np.uint32
    )
    np.savez_compressed(path, **payload)


def load_binary(
    path: str | os.PathLike, with_epoch: bool = False
) -> CSRGraph | tuple[CSRGraph, int | None]:
    """Load a graph previously saved by :func:`save_binary`.

    Verifies the payload checksum when present (files written before
    checksumming load unverified) and maps every flavour of torn or
    bit-flipped file onto :class:`~repro.errors.SnapshotCorruptError`
    instead of leaking raw numpy/zip/zlib errors.  ``with_epoch=True``
    additionally returns the stored epoch id (``None`` on untagged
    files).
    """
    try:
        with np.load(path) as data:
            arrays = {key: data[key] for key in data.files}
    except (
        OSError,
        ValueError,
        EOFError,
        zipfile.BadZipFile,
        zlib.error,
        struct.error,
    ) as exc:
        if isinstance(exc, OSError) and not os.path.exists(path):
            raise GraphFormatError(f"{path}: no such file") from exc
        raise SnapshotCorruptError(
            f"{path}: unreadable graph file ({exc})"
        ) from exc

    stored_crc = arrays.pop("checksum", None)
    if stored_crc is not None:
        expected = _payload_checksum(arrays)
        if int(stored_crc[0]) != expected:
            raise SnapshotCorruptError(
                f"{path}: checksum mismatch (stored {int(stored_crc[0])}, "
                f"computed {expected}); the file is damaged"
            )
    epoch_array = arrays.pop("graph_epoch", None)
    epoch = None if epoch_array is None else int(epoch_array[0])
    try:
        graph = CSRGraph(
            offsets=arrays["offsets"],
            targets=arrays["targets"],
            weights=arrays.get("weights"),
            edge_types=arrays.get("edge_types"),
            vertex_types=arrays.get("vertex_types"),
            undirected=bool(arrays["undirected"][0]),
        )
    except KeyError as exc:
        raise GraphFormatError(f"{path}: missing CSR array {exc}") from exc
    return (graph, epoch) if with_epoch else graph
