"""Graph partitioning for distributed execution.

KnightKing (paper section 6.1) uses a 1-D *vertex* partition: every
vertex lives on exactly one node together with **all** of its out-edges
(so a walker can locally inspect any out-edge during rejection
sampling).  Loads are balanced on ``|V_i| + |E_i|`` per node, which
evens out memory consumption.

The Gemini baseline instead uses a chunk-based partition in which a
vertex's out-edges may be spread over multiple nodes via *mirrors*,
forcing its two-phase sampling scheme.  :class:`MirroredPartition`
models that layout for the baseline in :mod:`repro.baselines.gemini`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph

__all__ = ["ContiguousPartition", "MirroredPartition", "partition_graph"]


class ContiguousPartition:
    """1-D contiguous vertex partition (KnightKing's scheme).

    Node ``i`` owns the vertex range ``[boundaries[i], boundaries[i+1])``
    and every out-edge of those vertices.
    """

    def __init__(self, boundaries: np.ndarray, graph: CSRGraph) -> None:
        boundaries = np.asarray(boundaries, dtype=np.int64)
        if boundaries.size < 2 or boundaries[0] != 0:
            raise PartitionError("boundaries must start at 0")
        if boundaries[-1] != graph.num_vertices:
            raise PartitionError("boundaries must end at |V|")
        if np.any(np.diff(boundaries) < 0):
            raise PartitionError("boundaries must be non-decreasing")
        self._boundaries = boundaries
        self._graph = graph

    @property
    def num_parts(self) -> int:
        return self._boundaries.size - 1

    @property
    def boundaries(self) -> np.ndarray:
        return self._boundaries

    def owner_of(self, vertex: int) -> int:
        """The node owning ``vertex``."""
        return int(
            np.searchsorted(self._boundaries, vertex, side="right") - 1
        )

    def owners(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`owner_of`."""
        return (
            np.searchsorted(self._boundaries, np.asarray(vertices), side="right") - 1
        ).astype(np.int64)

    def vertices_of(self, part: int) -> range:
        """The contiguous vertex range owned by ``part``."""
        self._check_part(part)
        return range(int(self._boundaries[part]), int(self._boundaries[part + 1]))

    def load_of(self, part: int) -> tuple[int, int]:
        """(vertex count, edge count) owned by ``part``."""
        self._check_part(part)
        low, high = int(self._boundaries[part]), int(self._boundaries[part + 1])
        vertices = high - low
        edges = int(self._graph.offsets[high] - self._graph.offsets[low])
        return vertices, edges

    def balance_ratio(self) -> float:
        """max / mean of per-part (|V_i| + |E_i|); 1.0 is perfect."""
        loads = [sum(self.load_of(part)) for part in range(self.num_parts)]
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0

    def _check_part(self, part: int) -> None:
        if not 0 <= part < self.num_parts:
            raise PartitionError(f"part {part} out of range")


def partition_graph(graph: CSRGraph, num_parts: int) -> ContiguousPartition:
    """Build the paper's 1-D partition balancing ``|V_i| + |E_i|``.

    A greedy sweep over vertices cuts whenever the running
    vertex-plus-edge load reaches the per-part target — the same simple
    scheme real engines (Gemini, KnightKing) use for contiguous 1-D
    splits.
    """
    if num_parts <= 0:
        raise PartitionError("num_parts must be positive")
    if num_parts > graph.num_vertices:
        raise PartitionError("more parts than vertices")

    # Running load after each vertex: one unit per vertex + its degree.
    cumulative = graph.offsets[1:] + np.arange(
        1, graph.num_vertices + 1, dtype=np.int64
    )
    total = int(cumulative[-1])
    boundaries = np.zeros(num_parts + 1, dtype=np.int64)
    for part in range(1, num_parts):
        target = total * part / num_parts
        cut = int(np.searchsorted(cumulative, target, side="left")) + 1
        # Keep at least one vertex per part even on degenerate inputs.
        cut = max(cut, int(boundaries[part - 1]) + 1)
        cut = min(cut, graph.num_vertices - (num_parts - part))
        boundaries[part] = cut
    boundaries[num_parts] = graph.num_vertices
    return ContiguousPartition(boundaries, graph)


class MirroredPartition:
    """Gemini-style chunked partition with mirror vertices.

    Vertices are split into contiguous chunks as in
    :class:`ContiguousPartition` (each vertex has one *master* node),
    but a vertex's out-edges are assigned to the node owning the edge
    **target**.  A vertex therefore has a *mirror* on every node holding
    at least one of its out-edges, and reading an arbitrary out-edge
    from the master requires a round trip to a mirror — the property
    that forces Gemini's two-phase sampling and rules out rejection
    sampling (paper section 7.1).
    """

    def __init__(self, graph: CSRGraph, num_parts: int) -> None:
        if num_parts <= 0:
            raise PartitionError("num_parts must be positive")
        self._graph = graph
        self._masters = partition_graph(graph, num_parts)
        # Edge -> hosting node, by target ownership.
        self._edge_owner = self._masters.owners(graph.targets)
        # Per (vertex, node): number and total weight of v's out-edges
        # hosted there.  Stored as dense (|V| x P) arrays — fine at the
        # simulator scales used here.
        degrees = graph.out_degrees()
        vertex_of_edge = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), degrees
        )
        flat = vertex_of_edge * num_parts + self._edge_owner
        counts = np.bincount(flat, minlength=graph.num_vertices * num_parts)
        self._edge_counts = counts.reshape(graph.num_vertices, num_parts)
        weights = (
            graph.weights
            if graph.weights is not None
            else np.ones(graph.num_edges, dtype=np.float64)
        )
        sums = np.bincount(
            flat, weights=weights, minlength=graph.num_vertices * num_parts
        )
        self._weight_sums = sums.reshape(graph.num_vertices, num_parts)

    @property
    def num_parts(self) -> int:
        return self._masters.num_parts

    @property
    def masters(self) -> ContiguousPartition:
        return self._masters

    def master_of(self, vertex: int) -> int:
        return self._masters.owner_of(vertex)

    def edge_owner(self, edge_index: int) -> int:
        """Node hosting a given out-edge (the target's master)."""
        return int(self._edge_owner[edge_index])

    @property
    def edge_owners(self) -> np.ndarray:
        """Hosting node per edge (flat |E| array)."""
        return self._edge_owner

    @property
    def mirror_counts(self) -> np.ndarray:
        """Number of nodes hosting each vertex's out-edges (|V| array)."""
        return np.count_nonzero(self._edge_counts, axis=1)

    def hosts_edges(self, vertices: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        """Whether each (vertex, node) pair has local out-edges."""
        return self._edge_counts[vertices, nodes] > 0

    def mirror_nodes(self, vertex: int) -> np.ndarray:
        """Nodes where ``vertex`` has a mirror (hosts >= 1 out-edge)."""
        return np.flatnonzero(self._edge_counts[vertex]).astype(np.int64)

    def mirror_count(self, vertex: int) -> int:
        return int(np.count_nonzero(self._edge_counts[vertex]))

    def per_node_weight(self, vertex: int) -> np.ndarray:
        """Total static weight of ``vertex``'s out-edges per node —
        the phase-1 ITS distribution of Gemini's two-phase sampler."""
        return self._weight_sums[vertex]

    def local_edges(self, vertex: int, part: int) -> np.ndarray:
        """Flat indices of ``vertex``'s out-edges hosted on ``part``."""
        start, end = self._graph.edge_range(vertex)
        local = np.flatnonzero(self._edge_owner[start:end] == part)
        return start + local

    def total_mirrors(self) -> int:
        """Total mirror count across all vertices (replication factor
        numerator) — the broadcast fan-out Gemini pays per push."""
        return int(np.count_nonzero(self._edge_counts))
