"""Graph transformations: reverse, induced subgraph, components.

Pre-processing utilities a walk pipeline routinely needs before the
engine runs — e.g. restricting walks to the largest connected component
so |V| walkers do not start on isolated debris, or reversing a directed
graph to walk citation edges backwards.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_arrays
from repro.graph.csr import CSRGraph
from repro.graph.traversal import UNREACHED, bfs

__all__ = [
    "reverse_graph",
    "induced_subgraph",
    "connected_components",
    "largest_component_subgraph",
]


def _flat_sources(graph: CSRGraph) -> np.ndarray:
    return np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), graph.out_degrees()
    )


def reverse_graph(graph: CSRGraph) -> CSRGraph:
    """The graph with every edge direction flipped.

    Weights and edge types travel with their edge.  Undirected graphs
    are their own reverse (up to edge ordering), so they are returned
    re-built but equal.
    """
    sources = _flat_sources(graph)
    reversed_graph = from_arrays(
        graph.num_vertices,
        graph.targets.copy(),
        sources,
        weights=None if graph.weights is None else graph.weights.copy(),
        edge_types=None if graph.edge_types is None else graph.edge_types.copy(),
        undirected=False,
    )
    if not graph.is_undirected:
        return reversed_graph
    # An undirected graph is its own reverse; re-flag it.
    return CSRGraph(
        reversed_graph.offsets,
        reversed_graph.targets,
        weights=reversed_graph.weights,
        edge_types=reversed_graph.edge_types,
        vertex_types=graph.vertex_types,
        undirected=True,
    )


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices`` with densely relabelled ids.

    Returns ``(subgraph, mapping)`` where ``mapping[new_id]`` is the
    original vertex id.  Edges survive iff both endpoints are kept;
    weights/types travel along.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if vertices.size == 0:
        raise GraphError("cannot induce a subgraph on zero vertices")
    if vertices.min() < 0 or vertices.max() >= graph.num_vertices:
        raise GraphError("subgraph vertex out of range")

    new_id = np.full(graph.num_vertices, -1, dtype=np.int64)
    new_id[vertices] = np.arange(vertices.size, dtype=np.int64)

    sources = _flat_sources(graph)
    keep = (new_id[sources] >= 0) & (new_id[graph.targets] >= 0)
    # The stored edges of an undirected graph already include both
    # directions (and induction keeps them symmetrically), so build
    # without re-mirroring and only re-flag afterwards.
    built = from_arrays(
        vertices.size,
        new_id[sources[keep]],
        new_id[graph.targets[keep]],
        weights=None if graph.weights is None else graph.weights[keep],
        edge_types=None if graph.edge_types is None else graph.edge_types[keep],
        undirected=False,
    )
    subgraph = CSRGraph(
        built.offsets,
        built.targets,
        weights=built.weights,
        edge_types=built.edge_types,
        vertex_types=(
            None if graph.vertex_types is None else graph.vertex_types[vertices]
        ),
        undirected=graph.is_undirected,
    )
    return subgraph, vertices


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex (weakly connected for directed
    graphs), computed by repeated BFS over the symmetrised graph."""
    if graph.is_undirected:
        symmetric = graph
    else:
        sources = _flat_sources(graph)
        symmetric = from_arrays(
            graph.num_vertices,
            np.concatenate([sources, graph.targets]),
            np.concatenate([graph.targets, sources]),
        )
    labels = np.full(graph.num_vertices, -1, dtype=np.int64)
    component = 0
    for vertex in range(graph.num_vertices):
        if labels[vertex] >= 0:
            continue
        reached = bfs(symmetric, vertex).levels != UNREACHED
        labels[reached & (labels < 0)] = component
        component += 1
    return labels


def largest_component_subgraph(
    graph: CSRGraph,
) -> tuple[CSRGraph, np.ndarray]:
    """The induced subgraph of the largest (weak) component."""
    labels = connected_components(graph)
    counts = np.bincount(labels)
    biggest = int(np.argmax(counts))
    return induced_subgraph(graph, np.flatnonzero(labels == biggest))
