"""Graph traversal primitives.

BFS is needed in two places of the reproduction:

* Figure 5 compares the per-iteration active-set size of BFS against a
  random walk's "longer and thinner" tail; and
* the introduction's motivating measurement compares node2vec's vertex
  navigation rate against BFS on the same graph.

Both uses want the per-level frontier sizes, so :func:`bfs` returns
them along with the level array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["BFSResult", "bfs", "largest_reachable_set"]

UNREACHED = -1


@dataclass(frozen=True)
class BFSResult:
    """Outcome of a breadth-first search.

    Attributes
    ----------
    levels:
        int64 array, distance from the source per vertex
        (:data:`UNREACHED` for unreachable vertices).
    frontier_sizes:
        number of vertices first reached at each level, starting with
        the source level (size 1) — the "active vertices" series that
        Figure 5 plots per iteration.
    """

    levels: np.ndarray
    frontier_sizes: list[int]

    @property
    def num_reached(self) -> int:
        return int(np.count_nonzero(self.levels != UNREACHED))

    @property
    def num_iterations(self) -> int:
        return len(self.frontier_sizes)


def bfs(graph: CSRGraph, source: int) -> BFSResult:
    """Level-synchronous BFS from ``source``.

    Frontier expansion is vectorised over the CSR arrays: the next
    frontier is the set of unvisited targets of every current-frontier
    edge, computed with one fancy-indexing pass per level.
    """
    if not 0 <= source < graph.num_vertices:
        raise GraphError(f"source {source} out of range")
    levels = np.full(graph.num_vertices, UNREACHED, dtype=np.int64)
    levels[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    frontier_sizes = [1]
    level = 0

    offsets = graph.offsets
    targets = graph.targets
    while frontier.size:
        level += 1
        starts = offsets[frontier]
        ends = offsets[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Gather all out-edges of the frontier in one shot.
        gather = np.repeat(starts, counts) + (
            np.arange(total, dtype=np.int64)
            - np.repeat(np.cumsum(counts) - counts, counts)
        )
        candidates = targets[gather]
        fresh = candidates[levels[candidates] == UNREACHED]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        levels[fresh] = level
        frontier = fresh
        frontier_sizes.append(int(fresh.size))
    return BFSResult(levels=levels, frontier_sizes=frontier_sizes)


def largest_reachable_set(graph: CSRGraph, num_probes: int = 8, seed: int = 0) -> np.ndarray:
    """Vertices of the largest reachable set found from random probes.

    Used when picking walk start vertices that will not immediately
    dead-end on sparse directed graphs.
    """
    rng = np.random.default_rng(seed)
    best: np.ndarray | None = None
    probes = rng.integers(0, graph.num_vertices, size=min(num_probes, graph.num_vertices))
    for probe in probes:
        result = bfs(graph, int(probe))
        reached = np.flatnonzero(result.levels != UNREACHED)
        if best is None or reached.size > best.size:
            best = reached
    assert best is not None
    return best
