"""Write-ahead log for dynamic-graph update batches.

Every committed epoch's update batch is appended to an on-disk log
*before* it is applied in memory, so a crash at any instant loses at
most the batch being written — never a committed one.  The format is
deliberately minimal and self-verifying:

``header``
    8-byte magic ``b"RKWAL01\\n"`` identifying the file and format
    version.

``record``
    ``u32 length`` (of the body) · ``u32 crc32`` (of the body) ·
    ``body``, where the body starts with a ``u64`` epoch id followed by
    the serialized update batch.  All integers little-endian.

Torn-tail detection falls out of the framing: a crash mid-append
leaves a final record whose length field, body, or checksum is
incomplete or wrong.  :meth:`WriteAheadLog.open` scans records
front-to-back, stops at the first frame that does not verify, truncates
the file back to the last intact record, and reports what it dropped in
a :class:`WalRecoveryReport` — graceful degradation, not an error,
because a torn tail is the *expected* crash artifact.  Only a bad magic
header or out-of-order epochs raise :class:`~repro.errors.WalError`:
those mean the file is not (or no longer) this log.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import WalError

__all__ = ["WriteAheadLog", "WalRecoveryReport", "WAL_MAGIC"]

WAL_MAGIC = b"RKWAL01\n"

_FRAME = struct.Struct("<II")  # length, crc32
_EPOCH = struct.Struct("<Q")


class _InjectedCrash(BaseException):
    """Raised by the test-only torn-write hook.

    Derives from ``BaseException`` so ordinary ``except Exception``
    recovery paths in code under test cannot accidentally swallow the
    simulated kill.
    """


@dataclass
class WalRecoveryReport:
    """What one :meth:`WriteAheadLog.open` scan found.

    The conservation law the chaos tests pin: every byte of the file is
    either part of an intact replayed record, part of a record skipped
    as already folded into the base, or truncated —
    ``bytes_scanned == bytes_intact + bytes_truncated``.
    """

    records_replayed: int = 0
    records_skipped: int = 0
    records_torn: int = 0
    bytes_scanned: int = 0
    bytes_intact: int = 0
    bytes_truncated: int = 0
    last_epoch: int | None = None
    torn_detail: str | None = None
    epochs: list[int] = field(default_factory=list)

    def balanced(self) -> bool:
        return self.bytes_scanned == self.bytes_intact + self.bytes_truncated


class WriteAheadLog:
    """Append-only, checksummed record log.

    Use :meth:`create` for a fresh log and :meth:`open` to recover an
    existing one (returning the intact records alongside the repaired,
    append-ready log).
    """

    def __init__(self, path: str, handle) -> None:
        self.path = str(path)
        self._handle = handle
        self.records_written = 0
        self.bytes_written = 0
        # Test-only fault injection: when set, the next append writes
        # only this many bytes of the frame+body, flushes, and raises —
        # simulating a kill mid-write with a deterministic torn tail.
        self.inject_crash_after_bytes: int | None = None

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str) -> "WriteAheadLog":
        """Start a new empty log, overwriting anything at ``path``."""
        handle = open(path, "wb")
        handle.write(WAL_MAGIC)
        handle.flush()
        return cls(path, handle)

    @classmethod
    def open(
        cls, path: str, repair: bool = True
    ) -> tuple["WriteAheadLog", list[tuple[int, bytes]], WalRecoveryReport]:
        """Scan ``path``, truncate any torn tail, return intact records.

        Returns ``(log, records, report)`` where ``records`` is the
        list of ``(epoch, payload)`` tuples in append order and ``log``
        is positioned for further appends.  With ``repair=False`` the
        torn tail is reported but left in place and the returned log is
        read-only (appending would interleave with the garbage).
        """
        with open(path, "rb") as handle:
            blob = handle.read()
        if len(blob) < len(WAL_MAGIC) or not blob.startswith(WAL_MAGIC):
            raise WalError(f"{path!r} is not a write-ahead log (bad magic)")

        report = WalRecoveryReport(bytes_scanned=len(blob))
        records: list[tuple[int, bytes]] = []
        position = len(WAL_MAGIC)
        good_end = position
        last_epoch: int | None = None
        while position < len(blob):
            frame = blob[position : position + _FRAME.size]
            if len(frame) < _FRAME.size:
                report.torn_detail = "torn frame header"
                break
            length, crc = _FRAME.unpack(frame)
            body = blob[
                position + _FRAME.size : position + _FRAME.size + length
            ]
            if len(body) < length or length < _EPOCH.size:
                report.torn_detail = "torn record body"
                break
            if zlib.crc32(body) != crc:
                report.torn_detail = "record checksum mismatch"
                break
            (epoch,) = _EPOCH.unpack_from(body)
            if last_epoch is not None and epoch <= last_epoch:
                raise WalError(
                    f"{path!r}: record epochs out of order "
                    f"({epoch} after {last_epoch})"
                )
            last_epoch = epoch
            records.append((epoch, body[_EPOCH.size :]))
            report.epochs.append(epoch)
            position += _FRAME.size + length
            good_end = position

        report.records_replayed = len(records)
        report.bytes_intact = good_end
        report.bytes_truncated = len(blob) - good_end
        report.records_torn = 1 if report.bytes_truncated else 0
        report.last_epoch = last_epoch

        if report.bytes_truncated and repair:
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
        handle = open(path, "ab") if repair else None
        log = cls(path, handle)
        log.records_written = len(records)
        log.bytes_written = good_end - len(WAL_MAGIC)
        return log, records, report

    # ------------------------------------------------------------------
    def append(self, epoch: int, payload: bytes) -> None:
        """Durably frame one record; flush before returning."""
        if self._handle is None:
            raise WalError(f"{self.path!r} opened read-only (repair=False)")
        body = _EPOCH.pack(epoch) + payload
        frame = _FRAME.pack(len(body), zlib.crc32(body)) + body
        if self.inject_crash_after_bytes is not None:
            cut = self.inject_crash_after_bytes
            self.inject_crash_after_bytes = None
            self._handle.write(frame[:cut])
            self._handle.flush()
            raise _InjectedCrash(f"injected crash after {cut} bytes")
        self._handle.write(frame)
        self._handle.flush()
        self.records_written += 1
        self.bytes_written += len(frame)

    def rewrite(self, records: list[tuple[int, bytes]]) -> None:
        """Atomically replace the log's contents with ``records``.

        Used after a durable compaction to drop records already folded
        into the persisted base: the replacement is written to a
        sidecar file and renamed over the log, so a crash at any point
        leaves either the old complete log or the new complete log.
        """
        if self._handle is None:
            raise WalError(f"{self.path!r} opened read-only (repair=False)")
        sidecar = self.path + ".rewrite"
        with open(sidecar, "wb") as handle:
            handle.write(WAL_MAGIC)
            for epoch, payload in records:
                body = _EPOCH.pack(epoch) + payload
                handle.write(_FRAME.pack(len(body), zlib.crc32(body)) + body)
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        os.replace(sidecar, self.path)
        self._handle = open(self.path, "ab")
        self.records_written = len(records)
        self.bytes_written = self._handle.tell() - len(WAL_MAGIC)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
