"""``repro.lint`` — determinism & distributed-safety static analysis.

A project-specific, stdlib-only (``ast``-driven) linter enforcing the
invariants this reproduction's correctness rests on:

* **RNG discipline** (RK101-RK103) — every random draw comes from an
  explicitly seeded ``np.random.Generator``; no stdlib ``random``, no
  unseeded ``default_rng()``, no legacy numpy global state.
* **Simulated-time purity** (RK201) — no wall-clock reads inside the
  cluster simulator, so replay stays bit-identical.
* **Cross-process safety** (RK301-RK302) — callables and payloads
  crossing process boundaries must survive pickling everywhere, not
  just under ``fork``.
* **Generic hygiene** (RK401-RK403) — mutable defaults, bare
  ``except:``, and unsorted set iteration.
* **Whole-program flow rules** (RK106/RK110/RK210/RK310) — the
  interprocedural layer in :mod:`repro.lint.flow`: RNG escape across
  message/process boundaries, wall-clock taint reaching simulated-time
  code through helpers, epoch-snapshot views outliving their epoch,
  and unpicklable values that *actually* reach spawn call sites.

Findings can be suppressed per line (``# lint: disable=RK101 --
reason``) or absorbed by a checked-in count-based baseline
(``lint-baseline.json``); see :mod:`repro.lint.baseline`.

The *runtime* counterpart — the determinism sanitizer that records a
rolling hash of every RNG draw, message delivery, and walker
transition, and localises the first divergence between two runs —
lives in :mod:`repro.lint.sanitizer`.  It is not imported here because
it needs numpy and the engines; the static analyzer deliberately
imports neither.
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import (
    DEFAULT_RULES,
    Linter,
    LintReport,
    render_rule_catalog_markdown,
    rule_catalog,
)
from repro.lint.findings import Finding, Severity
from repro.lint.flow import FLOW_RULES, FlowCache, FlowSpec, ProjectIndex
from repro.lint.rules import FileContext, Rule

__all__ = [
    "Baseline",
    "DEFAULT_RULES",
    "FLOW_RULES",
    "FileContext",
    "Finding",
    "FlowCache",
    "FlowSpec",
    "LintReport",
    "Linter",
    "ProjectIndex",
    "Rule",
    "Severity",
    "render_rule_catalog_markdown",
    "rule_catalog",
]
