"""``python -m repro.lint`` — the static analyzer without the engines.

This entry point imports only stdlib modules, so source hygiene can be
checked in environments without numpy (pre-commit hooks, slim CI
images).  ``repro lint`` (the main CLI) routes here too.
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.cli import add_lint_arguments, run_lint


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & distributed-safety static analyzer",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
