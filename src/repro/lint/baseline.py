"""Checked-in lint baseline: legacy findings that don't block CI.

The baseline is a JSON file mapping ``path -> rule_id -> count``.  When
the linter runs, up to ``count`` findings of that rule in that file are
marked *baselined* — still reported, never fatal — while the
``count+1``-th finding (someone added a new violation to a grandfathered
file) fails normally.  Counts, not line numbers: the baseline survives
unrelated edits that shift lines, and shrinks monotonically as legacy
findings are fixed (``repro lint --update-baseline`` rewrites it from
the current findings).

Intentional violations should NOT live here — they get an inline
``# lint: disable=RKxxx -- reason`` so the justification sits next to
the code.  The baseline is only for debt scheduled to be paid.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path, PurePosixPath

from repro.errors import LintError
from repro.lint.findings import Finding

__all__ = ["Baseline"]

_FORMAT_VERSION = 1


class Baseline:
    """Count-based (path, rule) absorption of legacy findings."""

    def __init__(self, entries: dict[str, dict[str, int]] | None = None) -> None:
        self.entries: dict[str, dict[str, int]] = entries if entries else {}

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise LintError(f"unreadable baseline {path!r}: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("version") != _FORMAT_VERSION
            or not isinstance(payload.get("entries"), dict)
        ):
            raise LintError(
                f"baseline {path!r} is not a version-{_FORMAT_VERSION} "
                "lint baseline"
            )
        entries: dict[str, dict[str, int]] = {}
        for file_path, rules in payload["entries"].items():
            if not isinstance(rules, dict):
                raise LintError(f"baseline entry for {file_path!r} malformed")
            entries[file_path] = {
                str(rule): int(count) for rule, count in rules.items()
            }
        return cls(entries)

    def save(self, path: str) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": {
                file_path: dict(sorted(rules.items()))
                for file_path, rules in sorted(self.entries.items())
                if rules
            },
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # ------------------------------------------------------------------
    @staticmethod
    def _normalise(path: str) -> str:
        return str(PurePosixPath(path.replace("\\", "/")))

    def apply(self, findings: list[Finding]) -> list[Finding]:
        """Mark absorbed findings; returns the same findings re-built.

        Findings are absorbed in file order (earliest lines first), so
        the ``count+1``-th occurrence — the newly added one, in the
        common append case — is the one that stays fatal.
        """
        budget = {
            (self._normalise(file_path), rule): count
            for file_path, rules in self.entries.items()
            for rule, count in rules.items()
        }
        out: list[Finding] = []
        for finding in sorted(findings, key=lambda f: (f.path, f.line, f.column)):
            key = (self._normalise(finding.path), finding.rule_id)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                out.append(
                    Finding(
                        rule_id=finding.rule_id,
                        path=finding.path,
                        line=finding.line,
                        column=finding.column,
                        message=finding.message,
                        severity=finding.severity,
                        baselined=True,
                    )
                )
            else:
                out.append(finding)
        return out

    def stale_entries(
        self, findings: list[Finding], scanned_paths: set[str]
    ) -> list[tuple[str, str, int]]:
        """Baseline entries whose budget exceeds current findings.

        Returns ``(path, rule_id, leftover_count)`` triples — the drift
        the ``RK002`` meta-finding reports.  Only entries whose file was
        part of this scan (or no longer exists anywhere in it) are
        considered: linting a single file must not declare the rest of
        the baseline stale.
        """
        produced: Counter[tuple[str, str]] = Counter(
            (self._normalise(f.path), f.rule_id) for f in findings
        )
        stale: list[tuple[str, str, int]] = []
        for file_path, rules in sorted(self.entries.items()):
            norm = self._normalise(file_path)
            if norm not in scanned_paths and Path(file_path).exists():
                continue  # outside this scan's scope; can't judge drift
            for rule, count in sorted(rules.items()):
                leftover = count - produced.get((norm, rule), 0)
                if leftover > 0:
                    stale.append((file_path, rule, leftover))
        return stale

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        counts: Counter[tuple[str, str]] = Counter(
            (cls._normalise(f.path), f.rule_id) for f in findings
        )
        entries: dict[str, dict[str, int]] = {}
        for (file_path, rule), count in counts.items():
            entries.setdefault(file_path, {})[rule] = count
        return cls(entries)
