"""Command-line driver for ``repro lint``.

Kept separate from :mod:`repro.cli` so the static analyzer stays
importable without numpy (the main CLI imports the engines at module
load; CI lint jobs shouldn't need a working numerical stack to check
source hygiene).  :func:`run_lint` is the single entry point: it
returns the process exit code — 0 on clean (modulo baseline), 1 on any
blocking finding — so it composes with CI and pre-commit.
"""

from __future__ import annotations

import os
import sys

from repro.errors import LintError
from repro.lint.baseline import Baseline
from repro.lint.engine import DEFAULT_RULES, Linter, rule_catalog

__all__ = ["run_lint", "DEFAULT_BASELINE_NAME", "add_lint_arguments"]

DEFAULT_BASELINE_NAME = "lint-baseline.json"


def add_lint_arguments(parser) -> None:
    """Attach the ``repro lint`` argument set to *parser*."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings and stale suppressions too, not just errors",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; every finding counts",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--exclude", action="append", default=[], metavar="PATH",
        help="skip this file or directory (repeatable; used to carve "
        "the deliberately-bad lint fixtures out of a tests/ scan)",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="print the rule catalog and exit",
    )


def _resolve_baseline_path(args) -> str | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    return DEFAULT_BASELINE_NAME if os.path.exists(DEFAULT_BASELINE_NAME) else None


def run_lint(args, stdout=None) -> int:
    """Execute a lint run described by parsed *args*; returns exit code."""
    out = stdout if stdout is not None else sys.stdout
    if args.rules:
        for rule_id, severity, description in rule_catalog(DEFAULT_RULES):
            print(f"{rule_id} [{severity}] {description}", file=out)
        return 0

    baseline_path = _resolve_baseline_path(args)
    try:
        if args.update_baseline:
            # Build the baseline from a run WITHOUT one, so existing
            # entries don't mask what the update should record.
            linter = Linter(root=os.getcwd(), exclude=tuple(args.exclude))
            report = linter.lint_paths(list(args.paths))
            target = baseline_path if baseline_path else DEFAULT_BASELINE_NAME
            Baseline.from_findings(report.findings).save(target)
            print(
                f"baseline {target} updated with "
                f"{len(report.findings)} finding(s)",
                file=out,
            )
            return 0

        baseline = (
            Baseline.load(baseline_path) if baseline_path is not None else None
        )
        linter = Linter(
            baseline=baseline, root=os.getcwd(), exclude=tuple(args.exclude)
        )
        report = linter.lint_paths(list(args.paths))
    except LintError as exc:
        print(f"lint error: {exc}", file=out)
        return 2
    print(report.format(), file=out)
    code = report.exit_code(strict=args.strict)
    if code:
        blocking = report.blocking(strict=args.strict)
        print(
            f"FAILED: {len(blocking)} blocking finding(s)"
            + (" (strict)" if args.strict else ""),
            file=out,
        )
    return code
