"""Command-line driver for ``repro lint``.

Kept separate from :mod:`repro.cli` so the static analyzer stays
importable without numpy (the main CLI imports the engines at module
load; CI lint jobs shouldn't need a working numerical stack to check
source hygiene).  :func:`run_lint` is the single entry point: it
returns the process exit code — 0 on clean (modulo baseline), 1 on any
blocking finding, 2 on operational errors (unparseable files, busted
baseline, blown ``--flow-budget``) — so it composes with CI and
pre-commit.
"""

from __future__ import annotations

import json
import os
import sys

from repro.errors import LintError
from repro.lint.baseline import Baseline
from repro.lint.engine import DEFAULT_RULES, Linter, rule_catalog

__all__ = ["run_lint", "DEFAULT_BASELINE_NAME", "DEFAULT_CACHE_NAME",
           "add_lint_arguments"]

DEFAULT_BASELINE_NAME = "lint-baseline.json"
DEFAULT_CACHE_NAME = ".repro-lint-cache.json"


def add_lint_arguments(parser) -> None:
    """Attach the ``repro lint`` argument set to *parser*."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings, stale suppressions and baseline drift "
        "too, not just errors",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; every finding counts",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--exclude", action="append", default=[], metavar="PATH",
        help="skip this file or directory (repeatable; used to carve "
        "the deliberately-bad lint fixtures out of a tests/ scan)",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--no-flow", action="store_true",
        help="skip the whole-program flow analysis layer (RK106/RK110/"
        "RK210/RK310); syntactic rules only",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="report findings only for files whose content changed "
        "since the last cached run (the analysis itself stays "
        "whole-program); implies using the flow cache",
    )
    parser.add_argument(
        "--cache", default=None, metavar="FILE",
        help="flow-analysis cache file (default: "
        f"./{DEFAULT_CACHE_NAME}); summaries are keyed on content "
        "hashes, so warm runs skip unchanged files",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the flow cache",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="output_format",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report there instead of stdout",
    )
    parser.add_argument(
        "--flow-budget", type=float, default=None, metavar="SECONDS",
        help="fail (exit 2) if the flow pass exceeds this wall-time "
        "budget — CI's guard against analysis-time regressions",
    )


def _resolve_baseline_path(args) -> str | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    return DEFAULT_BASELINE_NAME if os.path.exists(DEFAULT_BASELINE_NAME) else None


def _resolve_cache_path(args) -> str | None:
    if getattr(args, "no_cache", False):
        return None
    cache = getattr(args, "cache", None)
    return cache if cache is not None else DEFAULT_CACHE_NAME


def _emit(report, args, out) -> None:
    fmt = getattr(args, "output_format", "text")
    if fmt == "json":
        text = json.dumps(report.to_json_obj(), indent=2, sort_keys=True)
    elif fmt == "sarif":
        text = json.dumps(report.to_sarif_obj(), indent=2, sort_keys=True)
    else:
        text = report.format()
    target = getattr(args, "output", None)
    if target is not None:
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"report written to {target}", file=out)
    else:
        print(text, file=out)


def run_lint(args, stdout=None) -> int:
    """Execute a lint run described by parsed *args*; returns exit code."""
    out = stdout if stdout is not None else sys.stdout
    if args.rules:
        for rule_id, severity, description in rule_catalog(DEFAULT_RULES):
            print(f"{rule_id} [{severity}] {description}", file=out)
        return 0

    baseline_path = _resolve_baseline_path(args)
    cache_path = _resolve_cache_path(args)
    flow = not getattr(args, "no_flow", False)
    try:
        if args.update_baseline:
            # Build the baseline from a run WITHOUT one, so existing
            # entries don't mask what the update should record.
            linter = Linter(
                root=os.getcwd(), exclude=tuple(args.exclude), flow=flow,
                cache_path=cache_path,
            )
            report = linter.lint_paths(list(args.paths))
            target = baseline_path if baseline_path else DEFAULT_BASELINE_NAME
            Baseline.from_findings(report.findings).save(target)
            print(
                f"baseline {target} updated with "
                f"{len(report.findings)} finding(s)",
                file=out,
            )
            return 0

        baseline = (
            Baseline.load(baseline_path) if baseline_path is not None else None
        )
        linter = Linter(
            baseline=baseline, root=os.getcwd(), exclude=tuple(args.exclude),
            flow=flow, cache_path=cache_path,
            changed_only=getattr(args, "changed_only", False),
        )
        report = linter.lint_paths(list(args.paths))
    except LintError as exc:
        print(f"lint error: {exc}", file=out)
        return 2
    _emit(report, args, out)
    budget = getattr(args, "flow_budget", None)
    if (
        budget is not None
        and report.flow_seconds is not None
        and report.flow_seconds > budget
    ):
        print(
            f"FAILED: flow pass took {report.flow_seconds:.2f}s, over the "
            f"{budget:.2f}s budget",
            file=out,
        )
        return 2
    code = report.exit_code(strict=args.strict)
    if code:
        blocking = report.blocking(strict=args.strict)
        print(
            f"FAILED: {len(blocking)} blocking finding(s)"
            + (" (strict)" if args.strict else ""),
            file=out,
        )
    return code
