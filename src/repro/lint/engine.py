"""The lint driver: file discovery, suppressions, baseline, reporting.

:class:`Linter` runs every registered rule over every Python file under
the given paths and post-processes raw findings through two filters:

1. inline suppressions — ``# lint: disable=RK101,RK201 -- reason``
   on the offending line removes those findings (and an *unused*
   suppression is itself reported as ``RK001``, so stale disables
   can't accumulate);
2. the checked-in :class:`~repro.lint.baseline.Baseline`, which marks
   grandfathered findings non-fatal without hiding them.

The result is a :class:`LintReport` whose :meth:`LintReport.exit_code`
encodes the CI contract: non-zero iff a non-baselined finding blocks at
the requested strictness.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import LintError
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule
from repro.lint.rules_generic import (
    BareExceptRule,
    MutableDefaultRule,
    SetIterationRule,
)
from repro.lint.rules_csr import CsrMutationRule
from repro.lint.rules_process import NonModuleCallableRule, UnpicklablePayloadRule
from repro.lint.rules_retry import FixedRetryBackoffRule
from repro.lint.rules_rng import (
    LegacyNumpyRandomRule,
    StdlibRandomRule,
    UnseededGeneratorRule,
)
from repro.lint.rules_time import WallClockRule

__all__ = ["Linter", "LintReport", "DEFAULT_RULES", "rule_catalog"]

DEFAULT_RULES: tuple[type[Rule], ...] = (
    StdlibRandomRule,
    UnseededGeneratorRule,
    LegacyNumpyRandomRule,
    WallClockRule,
    CsrMutationRule,
    FixedRetryBackoffRule,
    NonModuleCallableRule,
    UnpicklablePayloadRule,
    MutableDefaultRule,
    BareExceptRule,
    SetIterationRule,
)

# RK001 is reserved for the meta-finding "this suppression suppresses
# nothing"; it is not a rule class because it falls out of the
# suppression bookkeeping rather than an AST pass.
_UNUSED_SUPPRESSION_ID = "RK001"

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+?)(?:\s*--\s*(.*))?\s*$"
)


def rule_catalog(rules: tuple[type[Rule], ...] = DEFAULT_RULES) -> list[tuple[str, str, str]]:
    """(id, severity, description) rows, for ``repro lint --rules``."""
    rows = [(r.rule_id, r.severity.label, r.description) for r in rules]
    rows.append(
        (
            _UNUSED_SUPPRESSION_ID,
            Severity.INFO.label,
            "suppression comment that suppresses nothing (stale disable)",
        )
    )
    return sorted(rows)


@dataclass
class LintReport:
    """Findings of one lint run plus the exit-code policy."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    def blocking(self, strict: bool = False) -> list[Finding]:
        """Findings that should fail the run.

        Non-baselined ``ERROR`` findings always block; ``--strict``
        additionally blocks warnings and infos (CI mode: nothing new
        gets in at any severity).
        """
        floor = Severity.INFO if strict else Severity.ERROR
        return [
            f
            for f in self.findings
            if not f.baselined and f.severity >= floor
        ]

    def exit_code(self, strict: bool = False) -> int:
        return 1 if self.blocking(strict) else 0

    def format(self) -> str:
        lines = [f.format() for f in self.findings]
        baselined = sum(1 for f in self.findings if f.baselined)
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files_checked} "
            f"file(s), {baselined} baselined"
        )
        return "\n".join(lines)


class Linter:
    """Run the rule set over files, apply suppressions and baseline."""

    def __init__(
        self,
        rules: tuple[type[Rule], ...] = DEFAULT_RULES,
        baseline: Baseline | None = None,
        root: str | None = None,
        exclude: tuple[str, ...] = (),
    ) -> None:
        self.rules = rules
        self.baseline = baseline
        self.root = Path(root) if root is not None else None
        self.exclude = tuple(Path(e).resolve() for e in exclude)
        known = {rule.rule_id for rule in rules}
        known.add(_UNUSED_SUPPRESSION_ID)
        self._known_ids = known

    # ------------------------------------------------------------------
    def lint_paths(self, paths: list[str]) -> LintReport:
        report = LintReport()
        for path in self._discover(paths):
            report.findings.extend(self.lint_file(str(path)))
            report.files_checked += 1
        if self.baseline is not None:
            report.findings = self.baseline.apply(report.findings)
        report.findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))
        return report

    def _discover(self, paths: list[str]) -> list[Path]:
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(
                    p for p in sorted(path.rglob("*.py"))
                    if not self._excluded(p)
                )
            elif path.suffix == ".py":
                if not self._excluded(path):
                    files.append(path)
            else:
                raise LintError(f"not a Python file or directory: {raw!r}")
        return files

    def _excluded(self, path: Path) -> bool:
        resolved = path.resolve()
        return any(
            resolved == ex or ex in resolved.parents for ex in self.exclude
        )

    def _rel_path(self, path: str) -> str:
        candidate = Path(path)
        if self.root is not None:
            try:
                candidate = candidate.resolve().relative_to(self.root.resolve())
            except ValueError:
                pass
        return candidate.as_posix()

    # ------------------------------------------------------------------
    def lint_file(self, path: str) -> list[Finding]:
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"unreadable source file {path!r}: {exc}") from exc
        return self.lint_source(source, path, rel_path=self._rel_path(path))

    def lint_source(
        self, source: str, path: str, rel_path: str | None = None
    ) -> list[Finding]:
        """Lint one source string (tests use this with virtual paths)."""
        try:
            context = FileContext.parse(
                path, rel_path if rel_path is not None else path, source
            )
        except SyntaxError as exc:
            raise LintError(f"cannot parse {path!r}: {exc}") from exc
        findings: list[Finding] = []
        for rule_class in self.rules:
            findings.extend(rule_class(context).run())
        return self._apply_suppressions(source, path, findings)

    # ------------------------------------------------------------------
    def _apply_suppressions(
        self, source: str, path: str, findings: list[Finding]
    ) -> list[Finding]:
        suppressions = self._parse_suppressions(source, path)
        if not suppressions:
            return findings
        used: set[tuple[int, str]] = set()
        kept: list[Finding] = []
        for finding in findings:
            ids = suppressions.get(finding.line)
            if ids is not None and finding.rule_id in ids:
                used.add((finding.line, finding.rule_id))
            else:
                kept.append(finding)
        for line, ids in suppressions.items():
            for rule_id in ids:
                if (line, rule_id) not in used:
                    kept.append(
                        Finding(
                            rule_id=_UNUSED_SUPPRESSION_ID,
                            path=path,
                            line=line,
                            column=0,
                            message=(
                                f"suppression of {rule_id} matches no "
                                "finding on this line; remove the stale "
                                "disable comment"
                            ),
                            severity=Severity.INFO,
                        )
                    )
        return kept

    def _parse_suppressions(
        self, source: str, path: str
    ) -> dict[int, tuple[str, ...]]:
        # Real COMMENT tokens only: a '# lint: disable' inside a string
        # (docstring examples, generated text) must not register.
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except tokenize.TokenError as exc:  # pragma: no cover - parse ok'd above
            raise LintError(f"cannot tokenize {path!r}: {exc}") from exc
        suppressions: dict[int, tuple[str, ...]] = {}
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            lineno, line = token.start[0], token.string
            match = _SUPPRESS_RE.search(line)
            if match is None:
                if re.search(r"lint:\s*disable=", line):
                    raise LintError(
                        f"{path}:{lineno}: malformed suppression comment; "
                        "expected '# lint: disable=RKxxx[,RKyyy] -- reason'"
                    )
                continue
            ids = tuple(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            unknown = [i for i in ids if i not in self._known_ids]
            if unknown:
                raise LintError(
                    f"{path}:{lineno}: suppression names unknown rule(s) "
                    f"{', '.join(unknown)}"
                )
            suppressions[lineno] = ids
        return suppressions
