"""The lint driver: file discovery, suppressions, baseline, reporting.

:class:`Linter` runs two analysis layers and post-processes their raw
findings through shared filters:

1. the **syntactic rules** — every registered :class:`Rule` visits
   every file independently (RK101…RK403);
2. the **flow rules** — :mod:`repro.lint.flow` builds a
   :class:`~repro.lint.flow.index.ProjectIndex` over *all* scanned
   files and runs the interprocedural taint engine (RK106/RK110/
   RK210/RK310), so indirection through helper calls, class
   hierarchies, and other modules cannot hide a violation.  Extracted
   module summaries are cached on content hashes
   (:class:`~repro.lint.flow.cache.FlowCache`), keeping warm runs fast.

Post-processing applies, in order: inline suppressions
(``# lint: disable=RK101,RK201 -- reason`` — anchored to the whole
*logical* statement, so a trailing comment on a continuation line or a
comment above a decorated function attaches correctly; an unused
suppression is itself reported as ``RK001``); the checked-in
:class:`~repro.lint.baseline.Baseline`, which marks grandfathered
findings non-fatal without hiding them and reports entries that no
longer match anything as ``RK002`` (baseline drift).

The result is a :class:`LintReport` whose :meth:`LintReport.exit_code`
encodes the CI contract: non-zero iff a non-baselined finding blocks at
the requested strictness.
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import LintError
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, Severity
from repro.lint.flow.cache import FlowCache, content_hash
from repro.lint.flow.index import ProjectIndex
from repro.lint.flow.ir import extract_module, module_name_for
from repro.lint.flow.specs import FLOW_RULES, FlowSpec
from repro.lint.flow.taint import run_flow_rules
from repro.lint.rules import FileContext, Rule
from repro.lint.rules_generic import (
    BareExceptRule,
    MutableDefaultRule,
    SetIterationRule,
)
from repro.lint.rules_csr import CsrMutationRule
from repro.lint.rules_obs import SimClockTracerRule
from repro.lint.rules_process import NonModuleCallableRule, UnpicklablePayloadRule
from repro.lint.rules_retry import FixedRetryBackoffRule
from repro.lint.rules_rng import (
    LegacyNumpyRandomRule,
    StdlibRandomRule,
    UnseededGeneratorRule,
)
from repro.lint.rules_time import WallClockRule

__all__ = ["Linter", "LintReport", "DEFAULT_RULES", "rule_catalog"]

DEFAULT_RULES: tuple[type[Rule], ...] = (
    StdlibRandomRule,
    UnseededGeneratorRule,
    LegacyNumpyRandomRule,
    WallClockRule,
    SimClockTracerRule,
    CsrMutationRule,
    FixedRetryBackoffRule,
    NonModuleCallableRule,
    UnpicklablePayloadRule,
    MutableDefaultRule,
    BareExceptRule,
    SetIterationRule,
)

# RK001/RK002 are meta-findings that fall out of suppression and
# baseline bookkeeping rather than an analysis pass.
_UNUSED_SUPPRESSION_ID = "RK001"
_STALE_BASELINE_ID = "RK002"

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+?)(?:\s*--\s*(.*))?\s*$"
)

# Statements whose multi-line span forms one suppression anchor group:
# a disable comment on any physical line of the statement attaches to
# findings anywhere in the statement.  Compound statements (def/for/
# if/...) are excluded — their span covers a whole body, which would
# over-suppress.
_SIMPLE_STMTS = (
    ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr, ast.Return,
    ast.Raise, ast.Assert, ast.Delete, ast.Import, ast.ImportFrom,
    ast.Global, ast.Nonlocal, ast.Pass, ast.Break, ast.Continue,
)


def rule_catalog(
    rules: tuple[type[Rule], ...] = DEFAULT_RULES,
    flow_rules: tuple[FlowSpec, ...] = FLOW_RULES,
) -> list[tuple[str, str, str]]:
    """(id, severity, description) rows, for ``repro lint --rules``."""
    rows = [(r.rule_id, r.severity.label, r.description) for r in rules]
    rows.extend(
        (spec.rule_id, spec.severity.label, spec.description)
        for spec in flow_rules
    )
    rows.append(
        (
            _UNUSED_SUPPRESSION_ID,
            Severity.INFO.label,
            "suppression comment that suppresses nothing (stale disable)",
        )
    )
    rows.append(
        (
            _STALE_BASELINE_ID,
            Severity.INFO.label,
            "baseline entry that no longer matches any finding (drift); "
            "run --update-baseline",
        )
    )
    return sorted(rows)


def render_rule_catalog_markdown(
    rules: tuple[type[Rule], ...] = DEFAULT_RULES,
    flow_rules: tuple[FlowSpec, ...] = FLOW_RULES,
) -> str:
    """The rule catalog as a GitHub-flavoured markdown table.

    The README embeds this output between ``rule-catalog`` markers and
    a test asserts the two stay in sync, so the published table can
    never drift from the live catalog.
    """
    lines = ["| ID | Severity | Contract |", "|----|----------|----------|"]
    for rule_id, severity, description in rule_catalog(rules, flow_rules):
        lines.append(f"| {rule_id} | {severity} | {description} |")
    return "\n".join(lines) + "\n"


@dataclass
class LintReport:
    """Findings of one lint run plus the exit-code policy."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    flow_seconds: float | None = None
    flow_cache_hits: int = 0
    flow_cache_misses: int = 0

    def blocking(self, strict: bool = False) -> list[Finding]:
        """Findings that should fail the run.

        Non-baselined ``ERROR`` findings always block; ``--strict``
        additionally blocks warnings and infos (CI mode: nothing new
        gets in at any severity).
        """
        floor = Severity.INFO if strict else Severity.ERROR
        return [
            f
            for f in self.findings
            if not f.baselined and f.severity >= floor
        ]

    def exit_code(self, strict: bool = False) -> int:
        return 1 if self.blocking(strict) else 0

    def format(self) -> str:
        lines = [f.format() for f in self.findings]
        baselined = sum(1 for f in self.findings if f.baselined)
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_checked} "
            f"file(s), {baselined} baselined"
        )
        if self.flow_seconds is not None:
            summary += (
                f"; flow pass {self.flow_seconds:.2f}s "
                f"({self.flow_cache_hits} cached / "
                f"{self.flow_cache_misses} extracted)"
            )
        lines.append(summary)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_json_obj(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "flow_seconds": self.flow_seconds,
            "flow_cache": {
                "hits": self.flow_cache_hits,
                "misses": self.flow_cache_misses,
            },
            "findings": [
                {
                    "rule_id": f.rule_id,
                    "path": f.path,
                    "line": f.line,
                    "column": f.column + 1,
                    "severity": f.severity.label,
                    "message": f.message,
                    "baselined": f.baselined,
                }
                for f in self.findings
            ],
        }

    def to_sarif_obj(self) -> dict:
        """Minimal SARIF 2.1.0 document (CI artifact / code-scanning)."""
        levels = {
            Severity.ERROR: "error",
            Severity.WARNING: "warning",
            Severity.INFO: "note",
        }
        rules = [
            {
                "id": rule_id,
                "shortDescription": {"text": description},
                "defaultConfiguration": {
                    "level": {"error": "error", "warning": "warning",
                              "info": "note"}[severity],
                },
            }
            for rule_id, severity, description in rule_catalog()
        ]
        results = [
            {
                "ruleId": f.rule_id,
                "level": levels[f.severity],
                "message": {"text": f.message},
                "suppressions": (
                    [{"kind": "external", "justification": "lint baseline"}]
                    if f.baselined
                    else []
                ),
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path.replace("\\", "/"),
                            },
                            "region": {
                                "startLine": f.line,
                                "startColumn": f.column + 1,
                            },
                        }
                    }
                ],
            }
            for f in self.findings
        ]
        return {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri": (
                                "https://example.invalid/repro-lint"
                            ),
                            "rules": rules,
                        }
                    },
                    "results": results,
                }
            ],
        }


class Linter:
    """Run both rule layers over files, apply suppressions and baseline."""

    def __init__(
        self,
        rules: tuple[type[Rule], ...] = DEFAULT_RULES,
        baseline: Baseline | None = None,
        root: str | None = None,
        exclude: tuple[str, ...] = (),
        flow: bool = True,
        flow_rules: tuple[FlowSpec, ...] = FLOW_RULES,
        cache_path: str | None = None,
        changed_only: bool = False,
    ) -> None:
        self.rules = rules
        self.baseline = baseline
        self.root = Path(root) if root is not None else None
        self.exclude = tuple(Path(e).resolve() for e in exclude)
        self.flow = flow
        self.flow_rules = flow_rules
        self.cache_path = cache_path
        self.changed_only = changed_only
        known = {rule.rule_id for rule in rules}
        known.update(spec.rule_id for spec in flow_rules)
        known.add(_UNUSED_SUPPRESSION_ID)
        known.add(_STALE_BASELINE_ID)
        self._known_ids = known

    # ------------------------------------------------------------------
    def lint_paths(self, paths: list[str]) -> LintReport:
        report = LintReport()
        files = self._discover(paths)
        contexts: list[FileContext] = []
        raw: dict[str, list[Finding]] = {}
        for path in files:
            context = self._parse_file(str(path))
            contexts.append(context)
            raw[context.path] = self._run_syntactic(context)
            report.files_checked += 1

        changed_paths: set[str] | None = None
        if self.flow and self.flow_rules:
            flow_findings, changed_paths = self._run_flow(contexts, report)
            for finding in flow_findings:
                raw.setdefault(finding.path, []).append(finding)

        findings: list[Finding] = []
        for context in contexts:
            findings.extend(
                self._apply_suppressions(
                    context.source, context.path, raw.get(context.path, []),
                    tree=context.tree,
                )
            )

        if self.baseline is not None:
            findings = self.baseline.apply(findings)
            findings.extend(self._baseline_drift(findings, files))
        if self.changed_only and changed_paths is not None:
            findings = [
                f
                for f in findings
                if f.path in changed_paths or f.rule_id == _STALE_BASELINE_ID
            ]
        findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))
        report.findings = findings
        return report

    def _discover(self, paths: list[str]) -> list[Path]:
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(
                    p for p in sorted(path.rglob("*.py"))
                    if not self._excluded(p)
                )
            elif path.suffix == ".py":
                if not self._excluded(path):
                    files.append(path)
            else:
                raise LintError(f"not a Python file or directory: {raw!r}")
        return files

    def _excluded(self, path: Path) -> bool:
        resolved = path.resolve()
        return any(
            resolved == ex or ex in resolved.parents for ex in self.exclude
        )

    def _rel_path(self, path: str) -> str:
        candidate = Path(path)
        if self.root is not None:
            try:
                candidate = candidate.resolve().relative_to(self.root.resolve())
            except ValueError:
                pass
        return candidate.as_posix()

    # ------------------------------------------------------------------
    def _parse_file(self, path: str) -> FileContext:
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"unreadable source file {path!r}: {exc}") from exc
        return self._parse_source(source, path, rel_path=self._rel_path(path))

    def _parse_source(
        self, source: str, path: str, rel_path: str | None = None
    ) -> FileContext:
        try:
            return FileContext.parse(
                path, rel_path if rel_path is not None else path, source
            )
        except SyntaxError as exc:
            raise LintError(f"cannot parse {path!r}: {exc}") from exc

    def _run_syntactic(self, context: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for rule_class in self.rules:
            findings.extend(rule_class(context).run())
        return findings

    # ------------------------------------------------------------------
    def _run_flow(
        self, contexts: list[FileContext], report: LintReport
    ) -> tuple[list[Finding], set[str]]:
        """Whole-program pass; returns (findings, changed file paths)."""
        start = time.perf_counter()
        cache = (
            FlowCache.load(self.cache_path)
            if self.cache_path is not None
            else FlowCache()
        )
        cached_summaries: dict[str, dict] = {}
        changed: set[str] = set()
        for context in contexts:
            digest = content_hash(context.source)
            if cache.previous_hash(context.path) != digest:
                changed.add(context.path)
            summary = cache.get_summary(context.path, digest)
            if summary is not None and summary.get("rel_path") == context.rel_path:
                cached_summaries[context.path] = summary
            else:
                module, is_package = module_name_for(context.path)
                summary = extract_module(
                    context.tree, module, context.rel_path, context.path,
                    is_package,
                )
                cache.put_summary(context.path, digest, summary)
        index = ProjectIndex.build(
            [
                (ctx.path, ctx.rel_path, ctx.source, ctx.tree)
                for ctx in contexts
            ],
            cached={
                path: cache.entries[path]["summary"]
                for path in cache.entries
                if path in {ctx.path for ctx in contexts}
            },
        )
        findings = run_flow_rules(index, self.flow_rules)
        cache.prune({ctx.path for ctx in contexts})
        cache.save()
        report.flow_seconds = time.perf_counter() - start
        report.flow_cache_hits = cache.hits
        report.flow_cache_misses = cache.misses
        return findings, changed

    # ------------------------------------------------------------------
    def _baseline_drift(
        self, findings: list[Finding], files: list[Path]
    ) -> list[Finding]:
        """RK002 meta-findings for baseline entries that absorb nothing."""
        assert self.baseline is not None
        scanned = {Baseline._normalise(str(p)) for p in files}
        drift: list[Finding] = []
        for path, rule_id, leftover in self.baseline.stale_entries(
            findings, scanned
        ):
            drift.append(
                Finding(
                    rule_id=_STALE_BASELINE_ID,
                    path=path,
                    line=1,
                    column=0,
                    message=(
                        f"baseline allows {leftover} more {rule_id} "
                        "finding(s) here than the code still produces; "
                        "run `repro lint --update-baseline` so fixed "
                        "debt cannot silently return"
                    ),
                    severity=Severity.INFO,
                )
            )
        return drift

    # ------------------------------------------------------------------
    def lint_file(self, path: str) -> list[Finding]:
        context = self._parse_file(path)
        return self._apply_suppressions(
            context.source, context.path, self._run_syntactic(context),
            tree=context.tree,
        )

    def lint_source(
        self, source: str, path: str, rel_path: str | None = None
    ) -> list[Finding]:
        """Lint one source string with the syntactic layer only.

        Tests use this with virtual paths; the flow layer needs real
        project context and runs from :meth:`lint_paths`.
        """
        context = self._parse_source(source, path, rel_path=rel_path)
        return self._apply_suppressions(
            source, path, self._run_syntactic(context), tree=context.tree
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _line_groups(tree: ast.AST) -> dict[int, set[int]]:
        """Physical line → other lines of the same suppression anchor.

        Two cases widen a suppression's reach beyond its own line:
        every line of a multi-line *simple* statement anchors the whole
        statement (a trailing disable on the closing-paren line catches
        a finding reported at the statement head, and vice versa), and
        the decorator block of a decorated ``def``/``class`` — plus the
        line directly above it — anchors the definition line.
        """
        groups: dict[int, set[int]] = {}
        for node in ast.walk(tree):
            if isinstance(node, _SIMPLE_STMTS):
                end = getattr(node, "end_lineno", None) or node.lineno
                if end > node.lineno:
                    span = set(range(node.lineno, end + 1))
                    for line in span:
                        groups.setdefault(line, set()).update(span)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if node.decorator_list:
                    first = min(d.lineno for d in node.decorator_list)
                    for line in range(first - 1, node.lineno):
                        groups.setdefault(line, set()).add(node.lineno)
        return groups

    def _apply_suppressions(
        self,
        source: str,
        path: str,
        findings: list[Finding],
        tree: ast.AST | None = None,
    ) -> list[Finding]:
        suppressions = self._parse_suppressions(source, path)
        if not suppressions:
            return findings
        groups = (
            self._line_groups(tree)
            if tree is not None
            else {}
        )
        # line covered -> [(anchor line, ids)] for every suppression
        cover: dict[int, list[tuple[int, tuple[str, ...]]]] = {}
        for line, ids in suppressions.items():
            covered = {line} | groups.get(line, set())
            for target in covered:
                cover.setdefault(target, []).append((line, ids))
        used: set[tuple[int, str]] = set()
        kept: list[Finding] = []
        for finding in findings:
            absorbed = False
            for anchor, ids in cover.get(finding.line, ()):
                if finding.rule_id in ids:
                    used.add((anchor, finding.rule_id))
                    absorbed = True
                    break
            if not absorbed:
                kept.append(finding)
        for line, ids in suppressions.items():
            for rule_id in ids:
                if (line, rule_id) not in used:
                    kept.append(
                        Finding(
                            rule_id=_UNUSED_SUPPRESSION_ID,
                            path=path,
                            line=line,
                            column=0,
                            message=(
                                f"suppression of {rule_id} matches no "
                                "finding on this statement; remove the "
                                "stale disable comment"
                            ),
                            severity=Severity.INFO,
                        )
                    )
        return kept

    def _parse_suppressions(
        self, source: str, path: str
    ) -> dict[int, tuple[str, ...]]:
        # Real COMMENT tokens only: a '# lint: disable' inside a string
        # (docstring examples, generated text) must not register.
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except tokenize.TokenError as exc:  # pragma: no cover - parse ok'd above
            raise LintError(f"cannot tokenize {path!r}: {exc}") from exc
        suppressions: dict[int, tuple[str, ...]] = {}
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            lineno, line = token.start[0], token.string
            match = _SUPPRESS_RE.search(line)
            if match is None:
                if re.search(r"lint:\s*disable=", line):
                    raise LintError(
                        f"{path}:{lineno}: malformed suppression comment; "
                        "expected '# lint: disable=RKxxx[,RKyyy] -- reason'"
                    )
                continue
            ids = tuple(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            unknown = [i for i in ids if i not in self._known_ids]
            if unknown:
                raise LintError(
                    f"{path}:{lineno}: suppression names unknown rule(s) "
                    f"{', '.join(unknown)}"
                )
            suppressions[lineno] = ids
        return suppressions
