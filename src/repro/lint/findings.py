"""Finding and severity types shared by every lint rule.

A :class:`Finding` is one rule violation at one source location.  It is
deliberately a plain frozen dataclass — rules produce them, the engine
filters them (suppressions, baseline), and the CLI formats them — so
the three layers stay decoupled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """How bad a finding is.

    ``ERROR`` findings break determinism or distributed safety outright
    and always fail the lint run; ``WARNING`` findings are risky
    patterns that fail only under ``--strict``; ``INFO`` findings are
    hygiene notes (e.g. an unused suppression) reported but never
    fatal outside ``--strict``.
    """

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes
    ----------
    rule_id:
        the ``RKxxx`` identifier of the rule that fired.
    path:
        the path of the offending file, as handed to the linter.
    line, column:
        1-based line and 0-based column of the offending node.
    message:
        human-readable description of what is wrong and how to fix it.
    severity:
        see :class:`Severity`.
    baselined:
        set by the engine when a checked-in baseline entry absorbs this
        finding; baselined findings are reported but never fatal.
    """

    rule_id: str
    path: str
    line: int
    column: int
    message: str
    severity: Severity = Severity.ERROR
    baselined: bool = field(default=False, compare=False)

    def format(self) -> str:
        tag = " [baselined]" if self.baselined else ""
        return (
            f"{self.path}:{self.line}:{self.column + 1}: "
            f"{self.rule_id} [{self.severity.label}]{tag} {self.message}"
        )

    def baseline_key(self) -> tuple[str, str]:
        """The (path, rule) bucket this finding counts against."""
        return (self.path, self.rule_id)
