"""``repro.lint.flow`` — whole-program dataflow analysis for the linter.

The syntactic rules in :mod:`repro.lint.rules_*` see one file at a
time, so a single helper-function hop of indirection defeats them:
``rng = make_rng(); pool.run(step, rng)`` is invisible to RK101-RK103
because the creation and the escape sit in different statements (or
different modules).  This subpackage closes that gap with a small,
stdlib-only interprocedural taint analysis:

1. :class:`~repro.lint.flow.index.ProjectIndex` parses every module
   once, resolves import aliases project-wide (including relative
   imports and re-exports through ``__init__``), and records per-module
   symbol tables plus class hierarchies;
2. :mod:`~repro.lint.flow.callgraph` resolves call sites — dotted
   names, ``self.method()`` through the engine/cluster class
   hierarchies, and locally-constructed instances — into graph edges;
3. :mod:`~repro.lint.flow.taint` runs a fixed-point taint engine over
   per-function summaries (which parameters reach which sinks, what
   the return value carries), so taint crosses any number of helper
   frames;
4. :mod:`~repro.lint.flow.specs` declares the four flow rules as
   source/sink/sanitizer data: **RK110** (RNG escape), **RK210**
   (interprocedural wall-clock taint into simulated time), **RK106**
   (epoch-snapshot escape), **RK310** (flow-based spawn-payload
   purity).

:class:`~repro.lint.flow.cache.FlowCache` keys extracted module
summaries on file content hashes so repeated runs (CI, pre-commit)
skip re-extraction of unchanged files.
"""

from repro.lint.flow.cache import FlowCache
from repro.lint.flow.callgraph import CallResolver, build_call_graph
from repro.lint.flow.index import ProjectIndex
from repro.lint.flow.specs import FLOW_RULES, FlowSpec
from repro.lint.flow.taint import TaintAnalysis, run_flow_rules

__all__ = [
    "FLOW_RULES",
    "CallResolver",
    "FlowCache",
    "FlowSpec",
    "ProjectIndex",
    "TaintAnalysis",
    "build_call_graph",
    "run_flow_rules",
]
