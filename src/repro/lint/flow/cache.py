"""Incremental flow cache keyed on file content hashes.

The flow analyzer's per-file work — lowering the AST into the module
summary IR — dominates a warm run, and its output depends only on the
file's bytes and scan-relative path.  :class:`FlowCache` persists those
summaries as JSON keyed by SHA-256 content hash, so a CI run (or a
pre-commit hook) re-extracts only the files that actually changed; the
cross-module taint fixed point always re-runs, because its result
depends on every file.

The cache also remembers each file's hash from the previous run, which
is what ``repro lint --changed-only`` uses to scope *reporting* to
files whose content moved (the analysis itself stays whole-program, so
an unchanged file whose callee changed still reports correctly on a
full run).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any

__all__ = ["FlowCache", "content_hash"]

_FORMAT_VERSION = 1


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class FlowCache:
    """Content-hash keyed store of extracted module summaries."""

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self.entries: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "FlowCache":
        cache = cls(path)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, ValueError):
            return cache  # cold or corrupt cache: start fresh
        if (
            isinstance(payload, dict)
            and payload.get("version") == _FORMAT_VERSION
            and isinstance(payload.get("files"), dict)
        ):
            cache.entries = payload["files"]
        return cache

    def save(self, path: str | None = None) -> None:
        target = path if path is not None else self.path
        if target is None or not self._dirty:
            return
        payload = {"version": _FORMAT_VERSION, "files": self.entries}
        tmp = f"{target}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, target)
        except OSError:
            pass  # a read-only checkout must not fail the lint run

    # ------------------------------------------------------------------
    def get_summary(self, key: str, file_hash: str) -> dict | None:
        entry = self.entries.get(key)
        if entry is not None and entry.get("hash") == file_hash:
            self.hits += 1
            return entry.get("summary")
        self.misses += 1
        return None

    def put_summary(self, key: str, file_hash: str, summary: dict) -> None:
        self.entries[key] = {"hash": file_hash, "summary": summary}
        self._dirty = True

    def previous_hash(self, key: str) -> str | None:
        entry = self.entries.get(key)
        return entry.get("hash") if entry is not None else None

    def prune(self, live_keys: set[str]) -> None:
        """Drop entries for files no longer part of the scan."""
        dead = [key for key in self.entries if key not in live_keys]
        for key in dead:
            del self.entries[key]
            self._dirty = True
