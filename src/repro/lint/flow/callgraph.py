"""Call-site resolution and the project call graph.

:class:`CallResolver` turns a call's ``fn`` IR expression into the
callee's function id, handling the three shapes that matter in this
codebase:

* **dotted calls** — ``helpers.make_rng()`` resolved through the
  project-wide alias tables (imports of imports, ``__init__``
  re-exports);
* **method calls on ``self``/``cls``** — resolved through the class
  hierarchy (``DistributedWalkEngine._superstep`` calling a
  ``WalkEngine`` helper defined two modules away);
* **method calls on locally-constructed instances** — a light
  per-function type pass maps ``engine = WalkEngine(...)`` so
  ``engine.run()`` resolves; parameter type annotations
  (``graph: DynamicGraph``) feed the same map.

:func:`build_call_graph` applies the resolver to every fact of every
function and returns the edge set — used directly by tests and
indirectly by the taint engine (which resolves lazily with the same
logic so taint and edges can never disagree).
"""

from __future__ import annotations

from typing import Any

from repro.lint.flow.index import ClassRef, ProjectIndex

__all__ = ["CallResolver", "build_call_graph"]


def _dotted_of(expr: dict[str, Any]) -> tuple[str | None, list[str]]:
    """(root name, attribute chain) of a Name/Attribute IR expression."""
    chain: list[str] = []
    while expr.get("k") == "attr":
        chain.append(expr["attr"])
        expr = expr["base"]
    if expr.get("k") != "name":
        return None, []
    chain.reverse()
    return expr["id"], chain


class CallResolver:
    """Resolve call-site ``fn`` expressions against a project index."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index

    # ------------------------------------------------------------------
    def local_types(self, func: dict[str, Any]) -> dict[str, ClassRef]:
        """name → class ref, from annotations and local constructor calls."""
        types: dict[str, ClassRef] = {}
        module = self.index.modules.get(func["module"], {})
        if func.get("cls") and func["params"]:
            ref = (func["module"], func["cls"])
            types[func["params"][0]] = ref
        for param, annotation in func.get("annotations", {}).items():
            resolved = self.index.resolve(annotation)
            if resolved is not None and resolved[0] == "class":
                types[param] = resolved[1]
        for fact in func["facts"]:
            if fact["f"] != "assign":
                continue
            value = fact["value"]
            if value.get("k") != "call":
                continue
            target = self._resolve_dotted_fn(value["fn"], module)
            if target is not None and target[0] == "class":
                for name in fact["targets"]:
                    types[name] = target[1]
        return types

    def _resolve_dotted_fn(self, fn: dict[str, Any], module: dict[str, Any]):
        root, chain = _dotted_of(fn)
        if root is None:
            return None
        aliases = module.get("aliases", {})
        toplevel = module.get("toplevel_funcs", {})
        classes = module.get("classes", {})
        if not chain:
            if root in toplevel:
                return ("func", toplevel[root])
            if root in classes:
                return ("class", (module["module"], root))
        dotted = ".".join([aliases.get(root, root)] + chain)
        if root not in aliases:
            # A bare in-module reference like `Helper.build` or a
            # fully-qualified name typed out without an import.
            local = ".".join([module.get("module", "")] + [root] + chain)
            resolved = self.index.resolve(local)
            if resolved is not None:
                return resolved
        return self.index.resolve(dotted)

    # ------------------------------------------------------------------
    def resolve_call(
        self,
        fn: dict[str, Any],
        func: dict[str, Any],
        types: dict[str, ClassRef] | None = None,
    ):
        """Resolve a call-site fn expression.

        Returns ``("func", func_id, bound)`` for a resolved callable
        (``bound`` true when the first parameter is an implicit
        ``self``), ``("class", ref)`` for a constructor call, or
        ``None``.  Local-variable shadowing is respected: a name bound
        inside the function never resolves through the import table.
        """
        if fn.get("k") == "localfunc":
            return ("func", fn["id"], False)
        module = self.index.modules.get(func["module"], {})
        types = types if types is not None else {}
        root, chain = _dotted_of(fn)
        if root is None:
            return None
        local_names = self._local_names(func)
        if chain and root in types:
            # Method call on a typed local (incl. `self`): resolve the
            # full attribute chain through the class hierarchy.
            if len(chain) == 1:
                method = self.index.find_method(types[root], chain[0])
                if method is not None:
                    return ("func", method, True)
            return None
        if root in local_names and root not in types:
            return None  # call through an untyped local variable
        target = self._resolve_dotted_fn(fn, module)
        if target is None:
            return None
        if target[0] == "func":
            fn_rec = self.index.functions.get(target[1])
            bound = bool(fn_rec and fn_rec.get("cls"))
            if bound and chain and not self._is_instance_chain(root, types):
                # `ClassName.method(obj, ...)`: explicit self argument.
                bound = False
            return ("func", target[1], bound)
        if target[0] == "class":
            return ("class", target[1])
        return None

    @staticmethod
    def _is_instance_chain(root: str, types: dict[str, ClassRef]) -> bool:
        return root in types

    @staticmethod
    def _local_names(func: dict[str, Any]) -> set[str]:
        names = set(func["params"]) | set(func.get("kwonly", ()))
        for fact in func["facts"]:
            if fact["f"] == "assign":
                names.update(fact["targets"])
        names.update(func.get("localfuncs", {}))
        return names


def _walk_exprs(expr: dict[str, Any]):
    yield expr
    kind = expr.get("k")
    if kind == "call":
        yield from _walk_exprs(expr["fn"])
        for arg in expr["args"]:
            yield from _walk_exprs(arg)
        for _, value in expr["kws"]:
            yield from _walk_exprs(value)
    elif kind == "attr":
        yield from _walk_exprs(expr["base"])
    elif kind == "many":
        for item in expr["items"]:
            yield from _walk_exprs(item)


def iter_fact_exprs(fact: dict[str, Any]):
    """Every IR expression reachable from one fact."""
    for key in ("value", "base"):
        sub = fact.get(key)
        if isinstance(sub, dict):
            yield from _walk_exprs(sub)


def build_call_graph(index: ProjectIndex) -> dict[str, set[str]]:
    """caller function id → set of resolved callee function ids."""
    resolver = CallResolver(index)
    edges: dict[str, set[str]] = {}
    for func_id, func in index.functions.items():
        types = resolver.local_types(func)
        out: set[str] = set()
        for fact in func["facts"]:
            for expr in iter_fact_exprs(fact):
                if expr.get("k") != "call":
                    continue
                resolved = resolver.resolve_call(expr["fn"], func, types)
                if resolved is None:
                    continue
                if resolved[0] == "func":
                    out.add(resolved[1])
                elif resolved[0] == "class":
                    init = index.find_method(resolved[1], "__init__")
                    if init is not None:
                        out.add(init)
        edges[func_id] = out
    return edges
