"""Whole-program index: modules, symbols, aliases, class hierarchies.

:class:`ProjectIndex` owns the lowered summaries of every file in the
lint run and answers the resolution questions the call graph and taint
engine ask:

* ``resolve("repro.Walker")`` follows import aliases *across modules*
  — including re-exports through package ``__init__`` files — to the
  defining symbol ``("class", ("repro.core.walker", "Walker"))``;
* ``find_method(class_ref, "run")`` walks the class hierarchy
  (depth-first over resolved base classes, the method-resolution order
  approximation that matches how the engine/cluster classes are laid
  out) to the defining method's function id.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable

from repro.lint.flow.ir import extract_module, module_name_for

__all__ = ["ProjectIndex"]

ClassRef = tuple[str, str]  # (module, class name)


class ProjectIndex:
    """Symbol tables and summaries for every module in the project."""

    def __init__(self) -> None:
        self.modules: dict[str, dict[str, Any]] = {}
        self.functions: dict[str, dict[str, Any]] = {}
        self._by_rel_path: dict[str, str] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        files: Iterable[tuple[str, str, str, ast.AST | None]],
        cached: dict[str, dict] | None = None,
    ) -> "ProjectIndex":
        """Index ``(path, rel_path, source, tree)`` tuples.

        ``cached`` maps *path* to a previously extracted module summary
        (content-hash validated by the caller); cache hits skip
        re-extraction entirely.  ``tree`` may be ``None`` for cache
        hits; otherwise the already-parsed AST is reused so no file is
        parsed twice in one lint run.
        """
        index = cls()
        for path, rel_path, source, tree in files:
            summary = cached.get(path) if cached else None
            if summary is None:
                module, is_package = module_name_for(path)
                if tree is None:
                    tree = ast.parse(source, filename=path)
                summary = extract_module(tree, module, rel_path, path,
                                         is_package)
            index.add_module(summary)
        return index

    def add_module(self, summary: dict[str, Any]) -> None:
        self.modules[summary["module"]] = summary
        self._by_rel_path[summary["rel_path"]] = summary["module"]
        self.functions.update(summary["functions"])

    # ------------------------------------------------------------------
    def module_of(self, func_id: str) -> str:
        return func_id.split(":", 1)[0]

    def rel_path_of(self, func_id: str) -> str:
        mod = self.modules.get(self.module_of(func_id))
        return mod["rel_path"] if mod else ""

    def path_of(self, func_id: str) -> str:
        mod = self.modules.get(self.module_of(func_id))
        return mod["path"] if mod else ""

    def get_class(self, ref: ClassRef) -> dict[str, Any] | None:
        mod = self.modules.get(ref[0])
        if mod is None:
            return None
        return mod["classes"].get(ref[1])

    # ------------------------------------------------------------------
    def resolve(self, dotted: str, _seen: frozenset[str] = frozenset()):
        """Resolve a canonical dotted name to its defining symbol.

        Returns one of ``("func", func_id)``, ``("class", (module,
        name))``, ``("module", module_name)``, ``("global", (module,
        name))`` or ``None``; alias chains (imports of imports,
        ``__init__`` re-exports) are followed with a cycle guard.
        """
        if dotted in _seen:
            return None
        _seen = _seen | {dotted}
        parts = dotted.split(".")
        # Longest module prefix first, so `a.b.c` prefers module `a.b`
        # defining symbol `c` over module `a` re-exporting `b`.
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            mod = self.modules.get(prefix)
            if mod is None:
                continue
            rest = parts[cut:]
            if not rest:
                return ("module", prefix)
            found = self._resolve_in_module(mod, rest, _seen)
            if found is not None:
                return found
        return None

    def _resolve_in_module(self, mod, rest: list[str], _seen):
        head, tail = rest[0], rest[1:]
        if head in mod["toplevel_funcs"] and not tail:
            return ("func", mod["toplevel_funcs"][head])
        if head in mod["classes"]:
            ref = (mod["module"], head)
            if not tail:
                return ("class", ref)
            if len(tail) == 1:
                method = self.find_method(ref, tail[0])
                if method is not None:
                    return ("func", method)
            return None
        if head in mod["aliases"]:
            target = mod["aliases"][head]
            if tail:
                target = target + "." + ".".join(tail)
            return self.resolve(target, _seen)
        if head in mod["globals"] and not tail:
            return ("global", (mod["module"], head))
        return None

    # ------------------------------------------------------------------
    def _resolve_base(self, module: str, base: str):
        """Resolve a base-class expression as written *inside* ``module``.

        Bases are stored verbatim from the ``class`` statement, so a
        bare name refers to a symbol in the defining module's scope —
        qualify it there before falling back to treating it as an
        absolute dotted path.
        """
        mod = self.modules.get(module)
        if mod is not None:
            found = self._resolve_in_module(mod, base.split("."),
                                            frozenset({base}))
            if found is not None:
                return found
        return self.resolve(base)

    def find_method(self, ref: ClassRef, name: str,
                    _seen: frozenset[ClassRef] = frozenset()) -> str | None:
        """Function id of ``name`` resolved through *ref*'s hierarchy."""
        if ref in _seen:
            return None
        _seen = _seen | {ref}
        cls = self.get_class(ref)
        if cls is None:
            return None
        if name in cls["methods"]:
            return cls["methods"][name]
        for base in cls["bases"]:
            resolved = self._resolve_base(ref[0], base)
            if resolved is not None and resolved[0] == "class":
                found = self.find_method(resolved[1], name, _seen)
                if found is not None:
                    return found
        return None

    def class_mro(self, ref: ClassRef,
                  _seen: frozenset[ClassRef] = frozenset()) -> list[ClassRef]:
        """Depth-first base-class chain (self first), cycle-guarded."""
        if ref in _seen or self.get_class(ref) is None:
            return []
        _seen = _seen | {ref}
        order = [ref]
        for base in self.get_class(ref)["bases"]:
            resolved = self._resolve_base(ref[0], base)
            if resolved is not None and resolved[0] == "class":
                order.extend(self.class_mro(resolved[1], _seen))
        return order

    def is_subclass(self, ref: ClassRef, dotted_base: str) -> bool:
        resolved = self.resolve(dotted_base)
        if resolved is None or resolved[0] != "class":
            return False
        return resolved[1] in self.class_mro(ref)
