"""AST → flow IR extraction: one JSON-serializable summary per module.

The taint engine never touches ``ast`` nodes: each module is lowered
once into a small dict-based IR (so summaries can be cached on file
content hashes, see :mod:`repro.lint.flow.cache`).  Expressions become
tagged dicts::

    {"k": "name", "id": "rng"}
    {"k": "attr", "base": <expr>, "attr": "bit_generator"}
    {"k": "call", "fn": <expr>, "args": [...], "kws": [[name, <expr>]],
     "line": 12, "col": 4}
    {"k": "many", "items": [...]}          # containers, operators, ...
    {"k": "lambda" | "genexp", "captures": [...], "line": .., "col": ..}
    {"k": "localfunc", "name": "inner", "id": <func id>, ...}
    {"k": "none"}                          # constants and opaque nodes

and every function body becomes an ordered list of *facts*::

    {"f": "assign",      "targets": [...], "value": <expr>, ...}
    {"f": "attrstore",   "attr": .., "self": bool, "base": <expr>, ...}
    {"f": "globalstore", "name": .., "value": <expr>, ...}
    {"f": "itemstore",   "base": <expr>, "value": <expr>, ...}
    {"f": "return",      "value": <expr>, ...}
    {"f": "expr",        "value": <expr>}

Module-level code is lowered into a pseudo-function named
``<module>`` whose assignments become ``globalstore`` facts.

Control flow (loops, branches, ``try``) is flattened: the taint engine
is flow-insensitive within a function, iterating the fact list to a
local fixed point, which is the standard soundness/precision trade for
a lint-grade analysis.
"""

from __future__ import annotations

import ast
from typing import Any

__all__ = ["extract_module", "module_name_for", "collect_aliases"]

Expr = dict[str, Any]
Fact = dict[str, Any]

_NONE: Expr = {"k": "none"}


def module_name_for(path: str, exists=None) -> tuple[str, bool]:
    """Dotted module name for *path*, by walking up ``__init__.py`` dirs.

    Returns ``(module_name, is_package)``.  *exists* is an injectable
    ``path -> bool`` predicate (tests); defaults to the filesystem.
    """
    import os

    if exists is None:
        exists = os.path.exists
    path = path.replace("\\", "/")
    directory, filename = os.path.split(path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: list[str] = []
    is_package = stem == "__init__"
    if not is_package:
        parts.append(stem)
    while directory and exists(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        if not pkg:
            break
        parts.append(pkg)
    return ".".join(reversed(parts)) or stem, is_package


def collect_aliases(
    tree: ast.AST, module: str, is_package: bool
) -> dict[str, str]:
    """Local name → canonical dotted name, with relative imports resolved.

    Extends the per-file alias map of :mod:`repro.lint.rules` with
    package-aware relative imports: inside ``repro.cluster.engine``,
    ``from .network import Network`` maps ``Network`` to
    ``repro.cluster.network.Network``.
    """
    package_parts = module.split(".") if module else []
    if not is_package and package_parts:
        package_parts = package_parts[:-1]
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                aliases[local] = name.name if name.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts
                if node.level > 1:
                    base_parts = base_parts[: len(base_parts) - (node.level - 1)]
                base = ".".join(base_parts)
                target = f"{base}.{node.module}" if node.module else base
            else:
                target = node.module or ""
            if not target:
                continue
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{target}.{name.name}"
    return aliases


def _free_names(node: ast.AST, bound: set[str]) -> list[str]:
    """Names loaded inside *node* that aren't locally bound (captures)."""
    seen: list[str] = []
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Name)
            and isinstance(sub.ctx, ast.Load)
            and sub.id not in bound
            and sub.id not in seen
        ):
            seen.append(sub.id)
    return seen


def _lambda_bound(node: ast.Lambda) -> set[str]:
    args = node.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _comp_bound(node: ast.AST) -> set[str]:
    bound: set[str] = set()
    for gen in getattr(node, "generators", []):
        for sub in ast.walk(gen.target):
            if isinstance(sub, ast.Name):
                bound.add(sub.id)
    return bound


class _FunctionLowerer:
    """Lowers one function body (or the module body) into facts."""

    def __init__(self, extractor: "_ModuleExtractor", func_id: str,
                 local_funcs: dict[str, str]) -> None:
        self.extractor = extractor
        self.func_id = func_id
        self.local_funcs = local_funcs  # name -> func id of nested defs
        self.global_names: set[str] = set()
        self.facts: list[Fact] = []
        self.is_module = func_id.endswith(":<module>")

    # -- expressions ---------------------------------------------------
    def expr(self, node: ast.AST | None) -> Expr:
        if node is None:
            return _NONE
        if isinstance(node, ast.Name):
            if node.id in self.local_funcs:
                return {
                    "k": "localfunc",
                    "name": node.id,
                    "id": self.local_funcs[node.id],
                    "line": node.lineno,
                    "col": node.col_offset,
                }
            return {"k": "name", "id": node.id}
        if isinstance(node, ast.Attribute):
            return {"k": "attr", "base": self.expr(node.value),
                    "attr": node.attr}
        if isinstance(node, ast.Call):
            return {
                "k": "call",
                "fn": self.expr(node.func),
                "args": [self.expr(a) for a in node.args],
                "kws": [
                    [kw.arg, self.expr(kw.value)] for kw in node.keywords
                ],
                "line": node.lineno,
                "col": node.col_offset,
            }
        if isinstance(node, ast.Lambda):
            return {
                "k": "lambda",
                "captures": _free_names(node.body, _lambda_bound(node)),
                "line": node.lineno,
                "col": node.col_offset,
            }
        if isinstance(node, ast.GeneratorExp):
            return {
                "k": "genexp",
                "captures": _free_names(node, _comp_bound(node)),
                "line": node.lineno,
                "col": node.col_offset,
            }
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            # Bind comprehension variables to their iterables (as
            # assign facts), then take only the *element* expression as
            # the comprehension's value: `[f(x) for x in xs]` carries
            # f's result labels, not xs's.  The variable bindings leak
            # into the function env — a sound over-approximation.
            for gen in node.generators:
                self._store_target(gen.target, self.expr(gen.iter),
                                   node.lineno)
                for cond in gen.ifs:
                    self.facts.append({"f": "expr", "value": self.expr(cond)})
            items = []
            for field in ("elt", "key", "value"):
                sub = getattr(node, field, None)
                if sub is not None:
                    items.append(self.expr(sub))
            return {"k": "many", "items": items}
        if isinstance(node, ast.BoolOp):
            return {"k": "many", "items": [self.expr(v) for v in node.values]}
        if isinstance(node, ast.BinOp):
            return {"k": "many",
                    "items": [self.expr(node.left), self.expr(node.right)]}
        if isinstance(node, ast.UnaryOp):
            return self.expr(node.operand)
        if isinstance(node, ast.Compare):
            return {"k": "many", "items": [self.expr(node.left)]
                    + [self.expr(c) for c in node.comparators]}
        if isinstance(node, ast.IfExp):
            return {"k": "many", "items": [self.expr(node.body),
                                           self.expr(node.orelse)]}
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return {"k": "many", "items": [self.expr(e) for e in node.elts]}
        if isinstance(node, ast.Dict):
            return {"k": "many",
                    "items": [self.expr(v) for v in node.values]
                    + [self.expr(k) for k in node.keys if k is not None]}
        if isinstance(node, ast.Subscript):
            return {"k": "many", "items": [self.expr(node.value)]}
        if isinstance(node, ast.Starred):
            return self.expr(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.expr(node.value)  # type: ignore[arg-type]
        if isinstance(node, ast.Yield):
            return self.expr(node.value) if node.value else _NONE
        if isinstance(node, ast.JoinedStr):
            return _NONE  # f-string renders to text; taint does not survive
        if isinstance(node, ast.NamedExpr):
            value = self.expr(node.value)
            if isinstance(node.target, ast.Name):
                self.facts.append(self._assign([node.target.id], value,
                                               node.lineno))
            return value
        return _NONE

    # -- statements ----------------------------------------------------
    def _assign(self, targets: list[str], value: Expr, line: int) -> Fact:
        return {"f": "assign", "targets": targets, "value": value,
                "line": line}

    def _store_target(self, target: ast.AST, value: Expr, line: int) -> None:
        if isinstance(target, ast.Name):
            if self.is_module or target.id in self.global_names:
                self.facts.append({
                    "f": "globalstore", "name": target.id, "value": value,
                    "line": target.lineno, "col": target.col_offset,
                })
            else:
                self.facts.append(self._assign([target.id], value, line))
        elif isinstance(target, ast.Attribute):
            base = self.expr(target.value)
            self.facts.append({
                "f": "attrstore",
                "attr": target.attr,
                "self": base.get("k") == "name" and base.get("id") == "self",
                "base": base,
                "value": value,
                "line": target.lineno,
                "col": target.col_offset,
            })
        elif isinstance(target, ast.Subscript):
            self.facts.append({
                "f": "itemstore",
                "base": self.expr(target.value),
                "value": value,
                "line": target.lineno,
                "col": target.col_offset,
            })
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._store_target(inner, value, line)

    def lower(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            value = self.expr(node.value)
            for target in node.targets:
                self._store_target(target, value, node.lineno)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._store_target(node.target, self.expr(node.value),
                                   node.lineno)
        elif isinstance(node, ast.AugAssign):
            value = {"k": "many",
                     "items": [self.expr(node.target), self.expr(node.value)]}
            self._store_target(node.target, value, node.lineno)
        elif isinstance(node, ast.Return):
            self.facts.append({"f": "return", "value": self.expr(node.value),
                               "line": node.lineno, "col": node.col_offset})
        elif isinstance(node, ast.Expr):
            self.facts.append({"f": "expr", "value": self.expr(node.value)})
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iter_expr = {"k": "many", "items": [self.expr(node.iter)]}
            self._store_target(node.target, iter_expr, node.lineno)
            self.lower(node.body)
            self.lower(node.orelse)
        elif isinstance(node, ast.While):
            self.facts.append({"f": "expr", "value": self.expr(node.test)})
            self.lower(node.body)
            self.lower(node.orelse)
        elif isinstance(node, ast.If):
            self.facts.append({"f": "expr", "value": self.expr(node.test)})
            self.lower(node.body)
            self.lower(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                ctx = self.expr(item.context_expr)
                if item.optional_vars is not None:
                    self._store_target(item.optional_vars, ctx, node.lineno)
                else:
                    self.facts.append({"f": "expr", "value": ctx})
            self.lower(node.body)
        elif isinstance(node, ast.Try):
            self.lower(node.body)
            for handler in node.handlers:
                self.lower(handler.body)
            self.lower(node.orelse)
            self.lower(node.finalbody)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for sub in (getattr(node, "exc", None), getattr(node, "test", None),
                        getattr(node, "msg", None), getattr(node, "cause", None)):
                if sub is not None:
                    self.facts.append({"f": "expr", "value": self.expr(sub)})
        elif isinstance(node, ast.Global):
            self.global_names.update(node.names)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested_id = self.extractor.extract_function(
                node, parent_qual=self.func_id.split(":", 1)[1], cls=None
            )
            self.local_funcs[node.name] = nested_id
        elif isinstance(node, ast.ClassDef):
            if self.is_module:
                self.extractor.extract_class(node)
            else:
                self.lower(node.body)
        # Import/Pass/Break/Continue/Delete/Nonlocal: no dataflow.


class _ModuleExtractor:
    def __init__(self, tree: ast.AST, module: str, rel_path: str,
                 path: str, is_package: bool) -> None:
        self.tree = tree
        self.module = module
        self.rel_path = rel_path
        self.path = path
        self.aliases = collect_aliases(tree, module, is_package)
        self.functions: dict[str, dict] = {}
        self.classes: dict[str, dict] = {}
        self.toplevel_funcs: dict[str, str] = {}
        self.globals: list[str] = []

    def _resolve_annotation(self, node: ast.AST | None) -> str | None:
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value.strip().split("[")[0]
        else:
            parts: list[str] = []
            cur = node
            while isinstance(cur, ast.Attribute):
                parts.append(cur.attr)
                cur = cur.value
            if not isinstance(cur, ast.Name):
                return None
            parts.append(cur.id)
            name = ".".join(reversed(parts))
        root, _, rest = name.partition(".")
        root = self.aliases.get(root, root)
        return f"{root}.{rest}" if rest else root

    def extract_function(self, node, parent_qual: str | None = None,
                         cls: str | None = None) -> str:
        qual = node.name
        if cls is not None:
            qual = f"{cls}.{node.name}"
        elif parent_qual is not None and parent_qual != "<module>":
            qual = f"{parent_qual}.<locals>.{node.name}"
        func_id = f"{self.module}:{qual}"
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args]
        annotations = {}
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            resolved = self._resolve_annotation(a.annotation)
            if resolved:
                annotations[a.arg] = resolved
        kwonly = [a.arg for a in args.kwonlyargs]
        local_funcs: dict[str, str] = {}
        lowerer = _FunctionLowerer(self, func_id, local_funcs)
        lowerer.lower(node.body)
        self.functions[func_id] = {
            "id": func_id,
            "module": self.module,
            "qualname": qual,
            "name": node.name,
            "cls": cls,
            "params": params,
            "kwonly": kwonly,
            "annotations": annotations,
            "line": node.lineno,
            "facts": lowerer.facts,
            "localfuncs": local_funcs,
        }
        return func_id

    def extract_class(self, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            resolved = self._resolve_annotation(base)
            if resolved:
                bases.append(resolved)
        methods: dict[str, str] = {}
        class_body_lowerer = _FunctionLowerer(
            self, f"{self.module}:<module>", {}
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods[stmt.name] = self.extract_function(stmt, cls=node.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                # Class attributes with dataflow-relevant values are
                # rare; lower them as module-level expressions so calls
                # inside them are still sink-checked.
                value = getattr(stmt, "value", None)
                if value is not None:
                    class_body_lowerer.facts.append(
                        {"f": "expr", "value": class_body_lowerer.expr(value)}
                    )
        if class_body_lowerer.facts:
            mod_fn = self.functions.get(f"{self.module}:<module>")
            if mod_fn is not None:
                mod_fn["facts"].extend(class_body_lowerer.facts)
            else:
                self._pending_class_facts.extend(class_body_lowerer.facts)
        self.classes[node.name] = {
            "name": node.name,
            "module": self.module,
            "bases": bases,
            "methods": methods,
            "line": node.lineno,
        }

    def extract(self) -> dict:
        self._pending_class_facts: list[Fact] = []
        module_id = f"{self.module}:<module>"
        local_funcs: dict[str, str] = {}
        lowerer = _FunctionLowerer(self, module_id, local_funcs)
        body = list(getattr(self.tree, "body", []))
        # Register top-level defs/classes first so forward references
        # inside earlier statements still resolve.
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.toplevel_funcs[stmt.name] = f"{self.module}:{stmt.name}"
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.extract_function(stmt, parent_qual="<module>")
            elif isinstance(stmt, ast.ClassDef):
                self.extract_class(stmt)
            else:
                lowerer.stmt(stmt)
                for fact in lowerer.facts:
                    if fact["f"] == "globalstore":
                        if fact["name"] not in self.globals:
                            self.globals.append(fact["name"])
        lowerer.facts.extend(self._pending_class_facts)
        self.functions[module_id] = {
            "id": module_id,
            "module": self.module,
            "qualname": "<module>",
            "name": "<module>",
            "cls": None,
            "params": [],
            "kwonly": [],
            "annotations": {},
            "line": 1,
            "facts": lowerer.facts,
            "localfuncs": local_funcs,
        }
        return {
            "module": self.module,
            "rel_path": self.rel_path,
            "path": self.path,
            "aliases": self.aliases,
            "functions": self.functions,
            "classes": self.classes,
            "toplevel_funcs": self.toplevel_funcs,
            "globals": self.globals,
        }


def extract_module(tree: ast.AST, module: str, rel_path: str, path: str,
                   is_package: bool) -> dict:
    """Lower one parsed module into its JSON-serializable flow summary."""
    return _ModuleExtractor(tree, module, rel_path, path, is_package).extract()
