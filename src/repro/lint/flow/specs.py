"""Flow-rule specifications: sources, sinks, sanitizers per rule.

Each :class:`FlowSpec` is pure data — the taint engine interprets it,
so adding a flow rule means declaring what *creates* taint, what
*clears* it, and where tainted values must never *arrive*.  The four
rules shipped here are the interprocedural versions of invariants the
syntactic rules can only check one statement at a time:

* **RK110** — an ``np.random.Generator`` / ``TracedRNG`` must stay in
  the walker/node context that created it.  Serializing one
  (checkpoint, message payload) or handing one across a
  ``SupervisedPool`` / ``multiprocessing`` boundary forks the stream
  and breaks replay determinism.  The sanctioned way to move RNG state
  is ``rng.bit_generator.state`` (plain picklable dict) or a derived
  seed — both sanitize the taint.
* **RK210** — the flow version of RK201: a wall-clock reading may not
  *flow* into simulated-time (``cluster/``) code, no matter how many
  helper frames it crosses.  The RK201 allowlist exempts only the
  *read* (host-side profiling in ``cluster/engine.py``); the moment
  such a value flows into non-allowlisted cluster code, RK210 fires.
* **RK106** — a ``DynamicGraph.snapshot()`` epoch view must not
  outlive its epoch: storing one on ``self``/a module global (or
  capturing it in a closure that is stored) keeps serving stale
  topology after the next ``commit()``.  The engine's constructor
  (``core/engine.py``) is the sanctioned pinning point and is
  allowlisted, mirroring RK201's allowlist idiom.
* **RK310** — the flow version of RK302: what *actually* reaches a
  process-boundary call site must be picklable.  Lambdas, generator
  expressions, nested functions, and open file handles are tainted at
  creation; materializing (``list(...)``) sanitizes.  Same-statement
  violations are left to RK301/RK302 so the two layers never
  double-report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.findings import Severity
from repro.lint.rules_time import (
    SIMULATED_TIME_PACKAGES,
    WALL_CLOCK_ALLOWLIST,
    _WALL_CLOCK_CALLS,
)

__all__ = ["FlowSpec", "FLOW_RULES", "flow_rule_ids"]

# Methods whose first positional argument (and everything after it)
# crosses a process boundary — shared with rules_process.py's
# syntactic RK301/RK302.
CROSS_PROCESS_METHODS = frozenset(
    {"run", "map", "starmap", "imap", "imap_unordered", "apply",
     "apply_async", "submit"}
)
PARENT_SIDE_KWARGS = frozenset({"describe"})

# Container-mutating method names: `msgs.append(rng)` taints `msgs`.
CONTAINER_MUTATORS = frozenset(
    {"append", "add", "extend", "insert", "appendleft", "update",
     "setdefault"}
)

_SCALAR_SANITIZERS = frozenset(
    {"int", "float", "str", "bool", "len", "hash", "repr", "round",
     "bytes", "format", "id"}
)


@dataclass(frozen=True)
class FlowSpec:
    """Declarative source/sink/sanitizer description of one flow rule."""

    rule_id: str
    description: str
    severity: Severity = Severity.ERROR

    # -- sources -------------------------------------------------------
    source_calls: frozenset[str] = frozenset()       # canonical dotted names
    source_methods: frozenset[str] = frozenset()     # method names, any recv
    lambda_source: bool = False
    genexp_source: bool = False
    localfunc_source: bool = False

    # -- propagation / sanitizers --------------------------------------
    sanitize_calls: frozenset[str] = _SCALAR_SANITIZERS
    sanitize_attrs: frozenset[str] = frozenset()
    # Whether `x.attr` keeps x's taint.  True for value-like taint
    # (wall-clock numbers, RNG streams); False when only the *object
    # itself* is hazardous (a snapshot view: arrays copied off it at
    # build time are the sanctioned per-epoch pattern).
    propagate_attrs: bool = True
    # Method call on a tainted receiver: "clean" (drawing data off the
    # object) or "taint" (the object's essence survives the call).
    receiver_default: str = "clean"
    tainting_methods: frozenset[str] = frozenset()
    propagate_unknown_calls: bool = True

    # -- sinks ---------------------------------------------------------
    # None: process boundaries are not sinks; "payload": args after the
    # callable (RK110); "all": callable position included (RK310).
    process_boundary: str | None = None
    sink_calls: dict = field(default_factory=dict)    # dotted -> positions|None
    sink_methods: dict = field(default_factory=dict)  # attr name -> positions|None
    escape_sinks: bool = False                        # self/global stores (RK106)
    # (packages, allowlist): tainted values may not flow into functions
    # of these packages (RK210).
    region: tuple[tuple[str, ...], tuple[str, ...]] | None = None
    # rel_path suffixes where this rule's sinks are sanctioned.
    allow_paths: tuple[str, ...] = ()
    # Skip findings whose only source sits on the sink's own line
    # (covered by the syntactic twin rule).
    skip_same_line: bool = False

    sink_message: str = ""

    def sanctioned(self, rel_path: str) -> bool:
        return any(rel_path.endswith(suffix) for suffix in self.allow_paths)


RK110 = FlowSpec(
    rule_id="RK110",
    description=(
        "RNG escape (flow): a Generator/TracedRNG crosses a message, "
        "snapshot, or process boundary — possibly through helper calls; "
        "move seeds or bit_generator.state instead, and re-derive the "
        "stream node-locally"
    ),
    source_calls=frozenset(
        {
            "numpy.random.default_rng",
            "numpy.random.Generator",
            "repro.sampling.rng.derive_rng",
            "repro.sampling.rng.spawn_rngs",
            "repro.lint.sanitizer.TracedRNG",
        }
    ),
    sanitize_attrs=frozenset({"bit_generator", "state", "entropy",
                              "spawn_key"}),
    tainting_methods=frozenset({"spawn"}),
    receiver_default="clean",
    process_boundary="payload",
    sink_calls={
        "pickle.dump": (0,), "pickle.dumps": (0,),
        "json.dump": (0,), "json.dumps": (0,),
        "marshal.dump": (0,), "marshal.dumps": (0,),
        "copyreg.pickle": None,
    },
    sink_methods={
        "send": None, "send_message": None, "post": None,
        "post_message": None, "publish": None, "enqueue": None,
        "put": None, "put_nowait": None,
    },
    sink_message=(
        "np.random.Generator created in walker/node context reaches a "
        "cross-boundary sink here{trace}; pass a seed or "
        "bit_generator.state and re-derive the stream on the other side"
    ),
)

RK210 = FlowSpec(
    rule_id="RK210",
    description=(
        "wall-clock taint (flow): a host-clock reading flows — through "
        "any number of helpers — into simulated-time cluster code; "
        "simulation decisions must derive from the cost model "
        "(supersedes RK201's per-file allowlist for indirect flows)"
    ),
    source_calls=frozenset(_WALL_CLOCK_CALLS),
    sanitize_calls=frozenset(),  # int(time.time()) is still wall clock
    receiver_default="taint",
    region=(SIMULATED_TIME_PACKAGES, WALL_CLOCK_ALLOWLIST),
    sink_message=(
        "wall-clock value{trace} flows into simulated-time code here; "
        "derive it from the cost model's simulated seconds instead"
    ),
)

RK106 = FlowSpec(
    rule_id="RK106",
    description=(
        "epoch-snapshot escape (flow): a DynamicGraph.snapshot() view is "
        "stored on self/a global or captured by a stored closure, so it "
        "can outlive its epoch and serve stale topology after the next "
        "commit; take a fresh snapshot per walk (core/engine.py's "
        "constructor pinning is the sanctioned exception)"
    ),
    source_methods=frozenset({"snapshot", "snapshot_at"}),
    propagate_attrs=False,
    receiver_default="clean",
    escape_sinks=True,
    allow_paths=("core/engine.py",),
    sink_message=(
        "epoch-snapshot view{trace} is stored somewhere that can outlive "
        "its epoch; hold it in a local and re-snapshot after commits"
    ),
)

RK310 = FlowSpec(
    rule_id="RK310",
    description=(
        "spawn-payload purity (flow): a value that actually reaches a "
        "process-boundary call site is unpicklable (lambda, generator "
        "expression, nested function, open file) even though the call "
        "site itself looks clean; build payloads from module-level "
        "callables and materialized data"
    ),
    lambda_source=True,
    genexp_source=True,
    localfunc_source=True,
    source_calls=frozenset({"open"}),
    sanitize_calls=_SCALAR_SANITIZERS
    | frozenset({"list", "tuple", "set", "dict", "sorted", "frozenset"}),
    receiver_default="clean",
    process_boundary="all",
    skip_same_line=True,
    sink_message=(
        "unpicklable value{trace} reaches this process-boundary call "
        "site; it dies at pickling time under spawn start methods"
    ),
)

FLOW_RULES: tuple[FlowSpec, ...] = (RK106, RK110, RK210, RK310)


def flow_rule_ids() -> frozenset[str]:
    return frozenset(spec.rule_id for spec in FLOW_RULES)
