"""Fixed-point interprocedural taint engine over function summaries.

Labels are either ``"P<i>"`` (flows from the function's i-th
parameter) or ``("SRC", rel_path, line)`` (created by a rule source at
that location).  Every function gets a summary:

* ``ret`` — the labels its return value carries;
* ``param_sinks`` — ``(param index, sink site)`` pairs: a value
  flowing into that parameter reaches that sink somewhere below.

Summaries reference callee summaries, so the engine iterates all
functions to a global fixed point (the lattice is finite and all
transfer functions are monotone — taint sets only grow).  A two-frame
helper chain needs two propagation rounds: round one learns that
``helper2`` forwards its parameter into a sink, round two that
``helper1`` forwards into ``helper2``, after which the call site in
the walker context reports with the full source location attached.

Within a function the analysis is flow-insensitive (facts iterate to a
local fixed point), which soundly over-approximates loops and
reassignment at lint-grade precision.
"""

from __future__ import annotations

from typing import Any

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallResolver
from repro.lint.flow.index import ProjectIndex
from repro.lint.flow.specs import (
    CONTAINER_MUTATORS,
    CROSS_PROCESS_METHODS,
    PARENT_SIDE_KWARGS,
    FlowSpec,
)

__all__ = ["TaintAnalysis", "run_flow_rules"]

Label = Any  # "P<i>" | ("SRC", rel_path, line)
Site = tuple[str, str, int, int, str]  # path, rel_path, line, col, kind

_MAX_SRC_LABELS = 6
_MAX_GLOBAL_ROUNDS = 40
_MAX_LOCAL_ROUNDS = 4


def _srcs(labels: set[Label]) -> frozenset[Label]:
    chosen = sorted((lb for lb in labels if isinstance(lb, tuple)),
                    key=lambda lb: (lb[1], lb[2]))
    return frozenset(chosen[:_MAX_SRC_LABELS])


def _params(labels: set[Label]) -> list[int]:
    return sorted(int(lb[1:]) for lb in labels if isinstance(lb, str))


class _Out:
    """Per-pass accumulator: concrete hits and parameter-mediated sinks."""

    __slots__ = ("hits", "psinks")

    def __init__(self) -> None:
        self.hits: dict[Site, set[Label]] = {}
        self.psinks: set[tuple[int, Site]] = set()


class TaintAnalysis:
    """Run one :class:`FlowSpec` over a :class:`ProjectIndex`."""

    def __init__(
        self,
        index: ProjectIndex,
        spec: FlowSpec,
        resolver: CallResolver | None = None,
        types_cache: dict[str, dict] | None = None,
    ) -> None:
        self.index = index
        self.spec = spec
        self.resolver = resolver if resolver is not None else CallResolver(index)
        if types_cache is None:
            types_cache = {
                fid: self.resolver.local_types(fn)
                for fid, fn in index.functions.items()
            }
        self.types = types_cache
        empty: tuple[frozenset, frozenset] = (frozenset(), frozenset())
        self.summaries: dict[str, tuple[frozenset, frozenset]] = {
            fid: empty for fid in index.functions
        }
        self.class_attrs: dict[tuple[str, str, str], frozenset] = {}
        self.globals_taint: dict[tuple[str, str], frozenset] = {}
        self._changed = False

    # ------------------------------------------------------------------
    def run(self) -> list[Finding]:
        order = sorted(self.index.functions)
        hits: dict[Site, set[Label]] = {}
        for _ in range(_MAX_GLOBAL_ROUNDS):
            self._changed = False
            hits = {}
            for fid in order:
                func = self.index.functions[fid]
                out = _Out()
                ret, psinks = self._pass(func, out)
                if (ret, psinks) != self.summaries[fid]:
                    self.summaries[fid] = (ret, psinks)
                    self._changed = True
                for site, labels in out.hits.items():
                    hits.setdefault(site, set()).update(labels)
            if not self._changed:
                break
        return self._findings(hits)

    def _findings(self, hits: dict[Site, set[Label]]) -> list[Finding]:
        findings: list[Finding] = []
        for site in sorted(hits):
            path, rel_path, line, col, _kind = site
            sources = sorted(
                (lb for lb in hits[site] if isinstance(lb, tuple)),
                key=lambda lb: (lb[1], lb[2]),
            )
            if not sources:
                continue
            if self.spec.skip_same_line and all(
                src[1] == rel_path and src[2] == line for src in sources
            ):
                continue
            origins = ", ".join(
                f"{src[1]}:{src[2]}" for src in sources[:2]
            )
            trace = f" (origin: {origins})" if origins else ""
            findings.append(
                Finding(
                    rule_id=self.spec.rule_id,
                    path=path,
                    line=line,
                    column=col,
                    message=self.spec.sink_message.format(trace=trace),
                    severity=self.spec.severity,
                )
            )
        return findings

    # ------------------------------------------------------------------
    def _pass(self, func: dict, out: _Out):
        params = list(func["params"]) + list(func.get("kwonly", ()))
        env: dict[str, set[Label]] = {
            name: {f"P{i}"} for i, name in enumerate(params)
        }
        ret: set[Label] = set()
        for _ in range(_MAX_LOCAL_ROUNDS):
            before = {name: len(labels) for name, labels in env.items()}
            ret_before = len(ret)
            for fact in func["facts"]:
                self._fact(fact, func, env, ret, out)
            if (
                len(ret) == ret_before
                and all(
                    len(env[name]) == count
                    for name, count in before.items()
                )
                and len(env) == len(before)
            ):
                break
        psinks = frozenset(out.psinks)
        ret_labels = frozenset(
            lb for lb in ret if isinstance(lb, str)
        ) | _srcs(ret)
        return ret_labels, psinks

    # ------------------------------------------------------------------
    def _fact(self, fact: dict, func: dict, env, ret: set[Label],
              out: _Out) -> None:
        kind = fact["f"]
        spec = self.spec
        rel_path = self.index.rel_path_of(func["id"])
        if kind == "assign":
            labels = self._expr(fact["value"], func, env, out)
            for target in fact["targets"]:
                env.setdefault(target, set()).update(labels)
        elif kind == "attrstore":
            labels = self._expr(fact["value"], func, env, out)
            self._expr(fact["base"], func, env, out)
            if fact["self"] and func.get("cls"):
                key = (func["module"], func["cls"], fact["attr"])
                merged = self.class_attrs.get(key, frozenset()) | _srcs(labels)
                if merged != self.class_attrs.get(key, frozenset()):
                    self.class_attrs[key] = merged
                    self._changed = True
            if labels and spec.escape_sinks and not spec.sanctioned(rel_path):
                site = (func_path(self.index, func), rel_path,
                        fact["line"], fact["col"], "escape")
                self._record(labels, site, out)
        elif kind == "globalstore":
            labels = self._expr(fact["value"], func, env, out)
            key = (func["module"], fact["name"])
            merged = self.globals_taint.get(key, frozenset()) | _srcs(labels)
            if merged != self.globals_taint.get(key, frozenset()):
                self.globals_taint[key] = merged
                self._changed = True
            if labels and spec.escape_sinks and not spec.sanctioned(rel_path):
                site = (func_path(self.index, func), rel_path,
                        fact["line"], fact["col"], "escape")
                self._record(labels, site, out)
        elif kind == "itemstore":
            labels = self._expr(fact["value"], func, env, out)
            base = fact["base"]
            if base.get("k") == "name":
                env.setdefault(base["id"], set()).update(labels)
            elif (
                labels
                and spec.escape_sinks
                and not spec.sanctioned(rel_path)
                and base.get("k") == "attr"
                and base.get("base", {}).get("k") == "name"
                and base["base"].get("id") == "self"
            ):
                site = (func_path(self.index, func), rel_path,
                        fact["line"], fact["col"], "escape")
                self._record(labels, site, out)
        elif kind == "return":
            ret.update(self._expr(fact["value"], func, env, out))
        elif kind == "expr":
            self._expr(fact["value"], func, env, out)

    # ------------------------------------------------------------------
    def _record(self, labels: set[Label], site: Site, out: _Out) -> None:
        src_labels = {lb for lb in labels if isinstance(lb, tuple)}
        if src_labels:
            out.hits.setdefault(site, set()).update(src_labels)
        for i in _params(labels):
            out.psinks.add((i, site))

    # ------------------------------------------------------------------
    def _expr(self, expr: dict, func: dict, env, out: _Out) -> set[Label]:
        kind = expr.get("k")
        spec = self.spec
        if kind == "name":
            return self._name_labels(expr["id"], func, env)
        if kind == "attr":
            return self._attr_labels(expr, func, env, out)
        if kind == "call":
            return self._call(expr, func, env, out)
        if kind == "many":
            labels: set[Label] = set()
            for item in expr["items"]:
                labels |= self._expr(item, func, env, out)
            return labels
        if kind in ("lambda", "genexp", "localfunc"):
            labels = set()
            for captured in expr.get("captures", ()):
                labels |= self._name_labels(captured, func, env)
            is_source = (
                (kind == "lambda" and spec.lambda_source)
                or (kind == "genexp" and spec.genexp_source)
                or (kind == "localfunc" and spec.localfunc_source)
            )
            if is_source:
                labels.add(
                    ("SRC", self.index.rel_path_of(func["id"]), expr["line"])
                )
            return labels
        return set()

    def _name_labels(self, name: str, func: dict, env) -> set[Label]:
        labels = set(env.get(name, ()))
        if name not in env:
            module = self.index.modules.get(func["module"], {})
            key = (func["module"], name)
            labels |= self.globals_taint.get(key, frozenset())
            alias = module.get("aliases", {}).get(name)
            if alias is not None:
                resolved = self.index.resolve(alias)
                if resolved is not None and resolved[0] == "global":
                    labels |= self.globals_taint.get(resolved[1], frozenset())
        return labels

    def _attr_labels(self, expr: dict, func: dict, env, out: _Out):
        spec = self.spec
        labels: set[Label] = set()
        base = expr["base"]
        # self.attr reads pick up class-attribute taint through the MRO.
        if (
            base.get("k") == "name"
            and base.get("id") == "self"
            and func.get("cls")
        ):
            for ref in self.index.class_mro((func["module"], func["cls"])):
                key = (ref[0], ref[1], expr["attr"])
                labels |= self.class_attrs.get(key, frozenset())
        # Fully dotted chains may name a tainted module global.
        root, chain = _chain_of(expr)
        if root is not None and root not in env:
            module = self.index.modules.get(func["module"], {})
            dotted = ".".join(
                [module.get("aliases", {}).get(root, root)] + chain
            )
            resolved = self.index.resolve(dotted)
            if resolved is not None and resolved[0] == "global":
                labels |= self.globals_taint.get(resolved[1], frozenset())
        base_labels = self._expr(base, func, env, out)
        if (
            base_labels
            and spec.propagate_attrs
            and expr["attr"] not in spec.sanitize_attrs
        ):
            labels |= base_labels
        return labels

    # ------------------------------------------------------------------
    def _call(self, expr: dict, func: dict, env, out: _Out) -> set[Label]:
        spec = self.spec
        fn = expr["fn"]
        arg_labels = [self._expr(a, func, env, out) for a in expr["args"]]
        kw_labels = [
            (name, self._expr(value, func, env, out))
            for name, value in expr["kws"]
        ]
        path = func_path(self.index, func)
        rel_path = self.index.rel_path_of(func["id"])
        loc = (expr["line"], expr["col"])
        dotted = self._canonical_dotted(fn, func, env)
        attr_name = fn["attr"] if fn.get("k") == "attr" else None

        self._check_explicit_sinks(
            dotted, attr_name, arg_labels, kw_labels, path, rel_path, loc, out
        )
        self._check_process_boundary(
            fn, attr_name, arg_labels, kw_labels, func, path, rel_path, loc,
            out,
        )

        # -- sources and sanitizers ------------------------------------
        if dotted is not None and dotted in spec.source_calls:
            return {("SRC", rel_path, expr["line"])}
        if attr_name is not None and attr_name in spec.source_methods:
            self._expr(fn["base"], func, env, out)
            return {("SRC", rel_path, expr["line"])}
        if dotted is not None and dotted in spec.sanitize_calls:
            return set()

        resolved = self.resolver.resolve_call(
            fn, func, self.types.get(func["id"], {})
        )
        if resolved is not None and resolved[0] == "func":
            result = self._apply_summary(
                resolved[1], bool(resolved[2]), arg_labels, kw_labels,
                path, rel_path, loc, out,
            )
            self._check_region(resolved[1], arg_labels, kw_labels, result,
                               func, path, rel_path, loc, out)
            return result
        if resolved is not None and resolved[0] == "class":
            result: set[Label] = set()
            for labels in arg_labels:
                result |= labels
            for _, labels in kw_labels:
                result |= labels
            init = self.index.find_method(resolved[1], "__init__")
            if init is not None:
                result |= self._apply_summary(
                    init, True, arg_labels, kw_labels,
                    path, rel_path, loc, out,
                )
            return result

        # -- unresolved call -------------------------------------------
        result = set()
        if spec.propagate_unknown_calls:
            for labels in arg_labels:
                result |= labels
            for _, labels in kw_labels:
                result |= labels
        if attr_name is not None:
            recv = self._expr(fn["base"], func, env, out)
            if attr_name in CONTAINER_MUTATORS:
                base = fn["base"]
                if base.get("k") == "name" and base["id"] in env:
                    merged: set[Label] = set()
                    for labels in arg_labels:
                        merged |= labels
                    for _, labels in kw_labels:
                        merged |= labels
                    env[base["id"]].update(merged)
            if recv and (
                attr_name in spec.tainting_methods
                or spec.receiver_default == "taint"
            ):
                result |= recv
        return result

    # ------------------------------------------------------------------
    def _apply_summary(self, callee_id: str, bound: bool, arg_labels,
                       kw_labels, path, rel_path, loc, out: _Out):
        callee = self.index.functions.get(callee_id)
        if callee is None:
            return set()
        ret, psinks = self.summaries.get(callee_id, (frozenset(), frozenset()))
        by_param = self._map_args(callee, bound, arg_labels, kw_labels)
        result: set[Label] = {lb for lb in ret if isinstance(lb, tuple)}
        for lb in ret:
            if isinstance(lb, str):
                result |= by_param.get(int(lb[1:]), set())
        # A call made from a sanctioned file is a blessed flow: the
        # allowlisted pinning point may hand its view to the samplers
        # and tables it owns (their lifetime is bounded by its own).
        if not self.spec.sanctioned(rel_path):
            for index, site in psinks:
                labels = by_param.get(index, set())
                if labels:
                    self._record(labels, site, out)
        return result

    @staticmethod
    def _map_args(callee: dict, bound: bool, arg_labels, kw_labels):
        params = list(callee["params"]) + list(callee.get("kwonly", ()))
        offset = 1 if bound and params else 0
        by_param: dict[int, set[Label]] = {}
        for j, labels in enumerate(arg_labels):
            index = j + offset
            if index < len(params):
                by_param[index] = set(labels)
        for name, labels in kw_labels:
            if name in params:
                by_param.setdefault(params.index(name), set()).update(labels)
            elif name is None:
                # **kwargs splat: conservatively reach every parameter.
                for index in range(len(params)):
                    by_param.setdefault(index, set()).update(labels)
        return by_param

    # ------------------------------------------------------------------
    def _check_explicit_sinks(self, dotted, attr_name, arg_labels,
                              kw_labels, path, rel_path, loc, out: _Out):
        spec = self.spec
        if spec.sanctioned(rel_path):
            return
        positions = None
        matched = False
        if dotted is not None and dotted in spec.sink_calls:
            positions = spec.sink_calls[dotted]
            matched = True
        elif attr_name is not None and attr_name in spec.sink_methods:
            positions = spec.sink_methods[attr_name]
            matched = True
        if not matched:
            return
        site = (path, rel_path, loc[0], loc[1], "sink-call")
        for j, labels in enumerate(arg_labels):
            if positions is not None and j not in positions:
                continue
            if labels:
                self._record(labels, site, out)
        if positions is None:
            for _, labels in kw_labels:
                if labels:
                    self._record(labels, site, out)

    def _pool_receiver(self, fn: dict, func: dict) -> bool:
        """Does a ``recv.run/map/submit(...)`` receiver look like a pool?

        The syntactic RK301/RK302 can use the bare method-name
        heuristic because they only fire on values visible at the call
        site; the flow layer propagates taint into *every* such call,
        so ``baseline.apply(findings)`` or ``engine.run(walkers)``
        would otherwise count as process boundaries.  Gate on the
        receiver: its name mentions pool/executor, its resolved local
        type is a ``*Pool``/``*Executor`` class, or it is the
        ``multiprocessing``/``concurrent.futures`` module itself.
        """
        base = fn["base"]
        root, chain = _chain_of(base)
        if root is None:
            return False
        parts = [p.lower() for p in [root, *chain] if p != "self"]
        if any("pool" in p or "executor" in p for p in parts):
            return True
        types = self.types.get(func["id"], {})
        ref = types.get(root)
        if ref is not None and not chain:
            name = ref[1].lower()
            if "pool" in name or name.endswith("executor"):
                return True
        module = self.index.modules.get(func["module"], {})
        dotted = module.get("aliases", {}).get(root, root)
        return dotted.split(".")[0] in ("multiprocessing", "concurrent")

    def _check_process_boundary(self, fn, attr_name, arg_labels, kw_labels,
                                func, path, rel_path, loc, out: _Out):
        spec = self.spec
        if spec.process_boundary is None or spec.sanctioned(rel_path):
            return
        site = (path, rel_path, loc[0], loc[1], "process-boundary")
        if (
            attr_name in CROSS_PROCESS_METHODS
            and arg_labels
            and self._pool_receiver(fn, func)
        ):
            start = 0 if spec.process_boundary == "all" else 1
            for labels in arg_labels[start:]:
                if labels:
                    self._record(labels, site, out)
            for name, labels in kw_labels:
                if name in PARENT_SIDE_KWARGS:
                    continue
                if labels:
                    self._record(labels, site, out)
            return
        name = attr_name
        if name is None and fn.get("k") == "name":
            name = fn["id"]
        if name is not None and name.endswith("Process"):
            for kw, labels in kw_labels:
                if kw in ("target", "args", "kwargs") and labels:
                    self._record(labels, site, out)

    def _check_region(self, callee_id, arg_labels, kw_labels, result,
                      func, path, rel_path, loc, out: _Out):
        spec = self.spec
        if spec.region is None:
            return
        packages, allow = spec.region
        caller_in = _in_region(rel_path, packages) and not _allowed(
            rel_path, allow
        )
        callee_rel = (
            self.index.rel_path_of(callee_id) if callee_id is not None else ""
        )
        callee_in = (
            callee_id is not None
            and _in_region(callee_rel, packages)
            and not _allowed(callee_rel, allow)
        )
        if callee_in and not caller_in:
            # (a) tainted value handed into simulated-time code from
            # outside the region (or from an allowlisted file: the
            # allowlist exempts the *read*, never the flow).  Hops
            # within the region are not re-flagged — the entry hop
            # already was.
            site = (path, rel_path, loc[0], loc[1], "region-entry")
            for labels in arg_labels:
                if labels:
                    self._record(labels, site, out)
            for _, labels in kw_labels:
                if labels:
                    self._record(labels, site, out)
        elif caller_in and any(isinstance(lb, tuple) for lb in result):
            # (b) simulated-time code consuming a helper's wall-clock
            # return value (the direct primitive call is RK201's job).
            site = (path, rel_path, loc[0], loc[1], "region-consume")
            self._record({lb for lb in result if isinstance(lb, tuple)},
                         site, out)

    # ------------------------------------------------------------------
    def _canonical_dotted(self, fn: dict, func: dict, env) -> str | None:
        root, chain = _chain_of(fn)
        if root is None:
            return None
        params = set(func["params"]) | set(func.get("kwonly", ()))
        if root in env or root in params or root in func.get("localfuncs", {}):
            return None
        module = self.index.modules.get(func["module"], {})
        resolved_root = module.get("aliases", {}).get(root, root)
        return ".".join([resolved_root] + chain)


def _chain_of(expr: dict) -> tuple[str | None, list[str]]:
    chain: list[str] = []
    while expr.get("k") == "attr":
        chain.append(expr["attr"])
        expr = expr["base"]
    if expr.get("k") != "name":
        return None, []
    chain.reverse()
    return expr["id"], chain


def _in_region(rel_path: str, packages: tuple[str, ...]) -> bool:
    parts = rel_path.split("/")
    return any(pkg in parts for pkg in packages)


def _allowed(rel_path: str, allow: tuple[str, ...]) -> bool:
    return any(rel_path.endswith(suffix) for suffix in allow)


def func_path(index: ProjectIndex, func: dict) -> str:
    return index.path_of(func["id"])


def run_flow_rules(
    index: ProjectIndex, specs: tuple[FlowSpec, ...]
) -> list[Finding]:
    """Run every flow rule over one shared index; findings sorted."""
    resolver = CallResolver(index)
    types_cache = {
        fid: resolver.local_types(fn) for fid, fn in index.functions.items()
    }
    findings: list[Finding] = []
    for spec in specs:
        analysis = TaintAnalysis(index, spec, resolver=resolver,
                                 types_cache=types_cache)
        findings.extend(analysis.run())
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))
    return findings
