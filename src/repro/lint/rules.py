"""Rule plumbing: the per-file analysis context and the rule base class.

Every rule is an :class:`ast.NodeVisitor` subclass with a stable id
(``RK101`` …), a severity, and a one-line description.  The engine
instantiates each rule once per file with a :class:`FileContext` and
collects whatever the rule reports via :meth:`Rule.report`.

The context pre-resolves import aliases so rules can match *canonical*
dotted names instead of guessing at surface syntax: ``np.random.seed``,
``numpy.random.seed`` and ``from numpy import random as r; r.seed``
all resolve to ``numpy.random.seed``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.findings import Finding, Severity

__all__ = ["FileContext", "Rule", "resolve_dotted"]


def _collect_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the canonical dotted names they import.

    ``import numpy as np``            → ``{"np": "numpy"}``
    ``from numpy import random``      → ``{"random": "numpy.random"}``
    ``from time import perf_counter`` → ``{"perf_counter": "time.perf_counter"}``

    Only module-level and function-level imports are walked; the
    mapping is flat (last import of a name wins), which matches how a
    module actually behaves for the patterns these rules target.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                # `import a.b` binds `a`; `import a.b as c` binds c→a.b.
                aliases[local] = name.name if name.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never reach stdlib/numpy
            for name in node.names:
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def resolve_dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of a ``Name``/``Attribute`` chain.

    Returns ``None`` for anything dynamic (subscripts, call results).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


@dataclass
class FileContext:
    """Everything a rule may need to know about the file under analysis.

    ``rel_path`` uses ``/`` separators and is relative to the scan root
    (so path-scoped rules like the simulated-time rule match it against
    package-relative suffixes such as ``cluster/engine.py``).
    """

    path: str
    rel_path: str
    source: str
    tree: ast.AST
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, rel_path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            rel_path=rel_path,
            source=source,
            tree=tree,
            aliases=_collect_aliases(tree),
        )

    def resolve(self, node: ast.AST) -> str | None:
        return resolve_dotted(node, self.aliases)

    def resolve_call(self, call: ast.Call) -> str | None:
        """Canonical dotted name of a call's target, or ``None``."""
        return self.resolve(call.func)


class Rule(ast.NodeVisitor):
    """Base class for one pluggable lint rule.

    Subclasses set the class attributes and implement ``visit_*``
    methods, calling :meth:`report` for every violation.  A fresh rule
    instance is created per file, so instance state (scope stacks etc.)
    never leaks across files.
    """

    rule_id: str = "RK000"
    severity: Severity = Severity.ERROR
    description: str = ""

    def __init__(self, context: FileContext) -> None:
        self.context = context
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        self.visit(self.context.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule_id=self.rule_id,
                path=self.context.path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                message=message,
                severity=self.severity,
            )
        )
