"""CSR immutability rule (RK105).

The dynamic-graph subsystem's whole consistency model rests on one
invariant: a :class:`~repro.graph.csr.CSRGraph` is immutable once
built.  Epoch snapshots hand running walks direct references to the
CSR arrays (no defensive copies — that is what makes snapshots cheap),
samplers alias them as ``static_weights``, and the write-ahead log only
records *batch* mutations routed through
:class:`~repro.graph.dynamic.DynamicGraph`.  An in-place write to
``graph.offsets`` / ``graph.targets`` / ``graph.weights`` anywhere else
mutates every snapshot, table, and running walk that shares the array —
silently, after the fact, and unreplayably (the WAL never saw it).

The rule fires on subscript stores (``graph.targets[i] = v``,
``g.weights[a:b] *= 2``) and on known in-place mutator calls
(``.fill``, ``.sort``, ``.put``, ``.partition``, ``np.copyto``) whose
receiver is an attribute named ``offsets``/``targets``/``weights``,
in any file *outside* the ``graph`` package — graph construction and
compaction legitimately build these arrays in place.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.rules import Rule

__all__ = ["CsrMutationRule", "CSR_ARRAY_ATTRS"]

# The CSR arrays every snapshot/table aliases.  ``edge_types`` and
# ``vertex_types`` ride along: mutating them mid-walk skews Pd for
# heterogeneous programs just as silently.
CSR_ARRAY_ATTRS = frozenset(
    {"offsets", "targets", "weights", "edge_types", "vertex_types"}
)

# ndarray methods that mutate the receiver in place.
_MUTATOR_METHODS = frozenset(
    {"fill", "sort", "put", "partition", "resize", "setfield"}
)

# Module-level functions whose first argument is written in place.
_MUTATOR_FUNCTIONS = frozenset({"numpy.copyto", "numpy.put", "numpy.place"})


def _in_graph_package(rel_path: str) -> bool:
    return "graph" in rel_path.split("/")


class CsrMutationRule(Rule):
    """RK105: no in-place writes to CSR arrays outside ``graph/``."""

    rule_id = "RK105"
    severity = Severity.ERROR
    description = (
        "in-place write to a CSR array (offsets/targets/weights/...) "
        "outside the graph package; shared epoch snapshots and sampler "
        "tables alias these arrays, so mutate through "
        "DynamicGraph.commit instead"
    )

    def run(self) -> list:
        if _in_graph_package(self.context.rel_path):
            return []
        return super().run()

    # -- subscript stores ----------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store(node.target)
        self.generic_visit(node)

    def _check_store(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element)
            return
        if not isinstance(target, ast.Subscript):
            return
        attr = self._csr_attribute(target.value)
        if attr is not None:
            self.report(
                target,
                f"in-place subscript write to .{attr}; CSR arrays are "
                "shared by snapshots and sampler tables — route the "
                "mutation through DynamicGraph.commit",
            )

    # -- mutator calls -------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
        ):
            attr = self._csr_attribute(func.value)
            if attr is not None:
                self.report(
                    node,
                    f".{attr}.{func.attr}() mutates a shared CSR array "
                    "in place; route the mutation through "
                    "DynamicGraph.commit",
                )
        name = self.context.resolve_call(node)
        if name in _MUTATOR_FUNCTIONS and node.args:
            attr = self._csr_attribute(node.args[0])
            if attr is not None:
                self.report(
                    node,
                    f"{name}() writes into .{attr} in place; route the "
                    "mutation through DynamicGraph.commit",
                )
        self.generic_visit(node)

    @staticmethod
    def _csr_attribute(node: ast.AST) -> str | None:
        """The CSR attribute name if ``node`` is ``<expr>.<csr array>``."""
        if isinstance(node, ast.Attribute) and node.attr in CSR_ARRAY_ATTRS:
            return node.attr
        return None
