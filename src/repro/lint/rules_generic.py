"""Generic determinism-adjacent hygiene rules (RK401-RK403).

* ``RK401`` — mutable default arguments: one shared object across all
  calls, i.e. hidden cross-request state in a serving system.
* ``RK402`` — bare ``except:``: swallows ``KeyboardInterrupt`` and
  ``SystemExit``, turning a cancel into a hang (the serving layer's
  accounting depends on failures surfacing).
* ``RK403`` — iterating a ``set``/``frozenset`` whose order feeds
  downstream behaviour: string hashing is salted per process
  (``PYTHONHASHSEED``), so set order differs run-to-run — fatal when
  it decides message dispatch or serialisation order.  Sort first.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.rules import Rule

__all__ = ["MutableDefaultRule", "BareExceptRule", "SetIterationRule"]

_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set"})


class MutableDefaultRule(Rule):
    """RK401: no mutable default argument values."""

    rule_id = "RK401"
    severity = Severity.WARNING
    description = (
        "mutable default argument is one shared object across every "
        "call; default to None and construct inside the function"
    )

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self.report(
                    default,
                    f"mutable default in {node.name}(); use None and "
                    "construct per call",
                )
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
            ):
                self.report(
                    default,
                    f"mutable default {default.func.id}() in {node.name}(); "
                    "use None and construct per call",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


class BareExceptRule(Rule):
    """RK402: no bare ``except:`` clauses."""

    rule_id = "RK402"
    severity = Severity.WARNING
    description = (
        "bare except swallows KeyboardInterrupt/SystemExit; catch "
        "Exception (or the precise error) instead"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare except: catches KeyboardInterrupt and SystemExit; "
                "name the exception type",
            )
        self.generic_visit(node)


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class SetIterationRule(Rule):
    """RK403: no direct iteration over a syntactic set."""

    rule_id = "RK403"
    severity = Severity.WARNING
    description = (
        "iteration order over a set is salted per process "
        "(PYTHONHASHSEED); wrap in sorted() before the order can feed "
        "dispatch or serialisation"
    )

    def _check_iterable(self, node: ast.AST) -> None:
        if _is_set_expression(node):
            self.report(
                node,
                "iterating a set directly; order differs between "
                "processes — use sorted(...) to pin it",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)
