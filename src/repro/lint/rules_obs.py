"""Observability clock-injection rule (RK206).

:class:`repro.obs.Tracer` defaults its clock to ``time.perf_counter``,
which is correct for host-side engine profiling and fatally wrong
inside the cluster simulator: a span timed off the host clock makes
the exported trace differ between a run and its checkpoint replay, and
quietly reintroduces the wall-clock dependence that RK201/RK210 keep
out of simulated-time packages.

The rule therefore requires every tracer *constructed* inside a
simulated-time package to receive an explicit injected clock, and
rejects injected clocks that resolve back to the host clock anyway
(``time.*`` or :func:`repro.obs.tracer.default_clock`).  Code in those
packages that merely *receives* a tracer and declares spans via
``record_span(ts=..., dur=...)`` never reads any clock and is
untouched — that is the sanctioned pattern (see
:meth:`repro.cluster.engine.DistributedWalkEngine.observe`).
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.rules import Rule
from repro.lint.rules_time import SIMULATED_TIME_PACKAGES

__all__ = ["SimClockTracerRule"]

# Clock callables that read the host's clock.  ``default_clock`` is the
# tracer module's own alias for ``time.perf_counter``; passing it
# explicitly is the same bug as omitting the kwarg.
_HOST_CLOCKS = frozenset(
    {
        "repro.obs.default_clock",
        "repro.obs.tracer.default_clock",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.time",
        "time.time_ns",
    }
)


def _in_simulated_path(rel_path: str) -> bool:
    parts = rel_path.split("/")
    return any(pkg in parts for pkg in SIMULATED_TIME_PACKAGES)


def _is_tracer(name: str | None) -> bool:
    return name is not None and (
        name == "Tracer" or name.endswith(".Tracer")
    )


class SimClockTracerRule(Rule):
    """RK206: tracers in simulated-time packages need an injected clock."""

    rule_id = "RK206"
    severity = Severity.ERROR
    description = (
        "span/metric timing inside a simulated-time package must use an "
        "injected simulation clock: Tracer(...) without clock=, or "
        "clock= bound to time.* / default_clock, times spans off the "
        "host clock and breaks bit-identical trace replay"
    )

    def run(self) -> list:
        if not _in_simulated_path(self.context.rel_path):
            return []
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        clock_kw = next(
            (kw for kw in node.keywords if kw.arg == "clock"), None
        )
        if clock_kw is not None:
            clock_name = self.context.resolve(clock_kw.value)
            if clock_name in _HOST_CLOCKS:
                self.report(
                    clock_kw.value,
                    f"clock={clock_name} injects the host clock into a "
                    "simulated-time package; inject a clock derived from "
                    "the cost model's simulated seconds instead",
                )
        elif _is_tracer(self.context.resolve_call(node)):
            self.report(
                node,
                "Tracer() constructed inside a simulated-time package "
                "without an explicit clock= falls back to "
                "time.perf_counter; inject a simulated clock, or declare "
                "spans with record_span(ts=..., dur=...) and no clock "
                "at all",
            )
        self.generic_visit(node)
