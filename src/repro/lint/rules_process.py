"""Cross-process safety rules (RK301-RK302).

:class:`~repro.service.pool.SupervisedPool` (and raw
``multiprocessing``) move callables and payloads across process
boundaries.  Under the ``fork`` start method a closure happens to work
because memory is inherited; under ``spawn``/``forkserver`` the same
code dies at pickling time — usually in CI, on the platform the author
didn't test.  These rules make the portable contract static:

* ``RK301`` — the callable handed across the boundary must be
  module-level (no lambdas, no functions defined inside another
  function);
* ``RK302`` — payload arguments must avoid syntactically-known
  unpicklable values (lambdas, generator expressions, open file
  handles).

Both rules are heuristic by design: they only fire when the offending
value is visible at the call site, which is where these bugs are
written in practice.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.rules import Rule

__all__ = ["NonModuleCallableRule", "UnpicklablePayloadRule"]

# Attribute-call method names that hand their first positional argument
# to worker processes (SupervisedPool.run, multiprocessing.Pool.map and
# friends, concurrent.futures submit).
_CROSS_PROCESS_METHODS = frozenset(
    {"run", "map", "starmap", "imap", "imap_unordered", "apply",
     "apply_async", "submit"}
)

# Keyword arguments of those calls that are invoked on the *parent*
# side and never cross the boundary (SupervisedPool.run(describe=...)).
_PARENT_SIDE_KWARGS = frozenset({"describe"})


class _ScopedRule(Rule):
    """Shared scope tracking: which names are function-local callables."""

    def __init__(self, context) -> None:
        super().__init__(context)
        self._local_defs: list[set[str]] = []

    def _enter_function(self, node: ast.AST) -> None:
        if self._local_defs and hasattr(node, "name"):
            self._local_defs[-1].add(node.name)
        self._local_defs.append(set())

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._local_defs.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._local_defs.pop()

    def _is_local_callable(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Name)
            and any(node.id in scope for scope in self._local_defs)
        )

    @staticmethod
    def _cross_process_args(call: ast.Call) -> list[ast.AST] | None:
        """Arguments of *call* that cross a process boundary.

        Returns ``[callable, *payloads]`` for recognised pool-style
        calls and ``Process(target=...)`` constructors, else ``None``.
        """
        crossing: list[ast.AST] = []
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _CROSS_PROCESS_METHODS
            and call.args
        ):
            crossing.extend(call.args)
            crossing.extend(
                kw.value
                for kw in call.keywords
                if kw.arg not in _PARENT_SIDE_KWARGS
            )
            return crossing
        func_name = (
            call.func.attr
            if isinstance(call.func, ast.Attribute)
            else call.func.id
            if isinstance(call.func, ast.Name)
            else ""
        )
        if func_name.endswith("Process"):
            target = [kw.value for kw in call.keywords if kw.arg == "target"]
            if target:
                args = [kw.value for kw in call.keywords if kw.arg == "args"]
                return target + args
        return None


class NonModuleCallableRule(_ScopedRule):
    """RK301: callables crossing a process boundary must be module-level."""

    rule_id = "RK301"
    severity = Severity.ERROR
    description = (
        "lambda or nested function handed to a worker process; only "
        "module-level callables survive pickling under spawn start "
        "methods"
    )

    def visit_Call(self, node: ast.Call) -> None:
        crossing = self._cross_process_args(node)
        if crossing:
            head = crossing[0]
            if isinstance(head, ast.Lambda):
                self.report(
                    head,
                    "lambda passed across a process boundary; define a "
                    "module-level function instead",
                )
            elif isinstance(head, ast.Name) and self._is_local_callable(head):
                self.report(
                    head,
                    f"function {head.id!r} is defined inside another "
                    "function; workers can only import module-level "
                    "callables",
                )
        self.generic_visit(node)


class UnpicklablePayloadRule(_ScopedRule):
    """RK302: payload arguments must be picklable on their face."""

    rule_id = "RK302"
    severity = Severity.ERROR
    description = (
        "known-unpicklable value (lambda, generator expression, open "
        "file) in a cross-process payload"
    )

    def visit_Call(self, node: ast.Call) -> None:
        crossing = self._cross_process_args(node)
        if crossing:
            for payload in crossing[1:]:
                self._check_payload(payload)
        self.generic_visit(node)

    def _check_payload(self, payload: ast.AST) -> None:
        for sub in ast.walk(payload):
            if isinstance(sub, ast.Lambda):
                self.report(sub, "lambda inside a cross-process payload")
            elif isinstance(sub, ast.GeneratorExp):
                self.report(
                    sub,
                    "generator expression inside a cross-process payload; "
                    "materialise it into a list first",
                )
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "open"
            ):
                self.report(
                    sub,
                    "open file handle inside a cross-process payload; "
                    "pass the path and open it in the worker",
                )
