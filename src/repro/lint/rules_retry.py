"""Retry-loop backoff hygiene rule (RK204).

The straggler-tolerance work replaced the cluster's fixed retransmit
interval with adaptive per-link timers (Jacobson/Karels RTO) plus
exponentially backed-off, deterministically *jittered* waits
(:meth:`repro.cluster.network.LinkTimers.backoff_wait`).  A fixed-delay
retry loop — ``while not ok: time.sleep(0.1)`` — reintroduces exactly
the failure mode that change removed: every peer retries in lockstep,
so a congested link sees synchronized retry storms, and the wait never
adapts to the link actually being slow rather than lossy.

The rule fires on ``time.sleep`` / ``asyncio.sleep`` calls that sit
inside a loop in a distributed-execution package (``cluster``/
``service`` path components) whose wait argument carries no jitter
source: a constant, a plain variable, or pure arithmetic such as
``base * 2 ** attempt`` all count as unjittered.  Any randomness in the
argument — an RNG call, or a name/call mentioning jitter or a hashed
unit — clears it, as does sleeping outside a loop (a one-shot pause is
not a retry loop).
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.rules import Rule

__all__ = ["FixedRetryBackoffRule", "RETRY_SCOPED_PACKAGES"]

# Packages where retry loops talk to (simulated or real) peers and
# synchronized retries are harmful.  Matched as path components of the
# file's scan-relative path, like RK201's simulated-time scoping.
RETRY_SCOPED_PACKAGES = ("cluster", "service")

_SLEEP_CALLS = frozenset({"time.sleep", "asyncio.sleep"})

# Canonical dotted-name prefixes whose calls inject randomness into a
# wait expression.
_JITTER_CALL_PREFIXES = (
    "random.",
    "numpy.random.",
    "secrets.",
)

# Identifier substrings that mark a value as deliberately jittered.
_JITTER_NAME_HINTS = ("jitter", "rng", "random", "hash_unit", "backoff_wait")


def _in_retry_scope(rel_path: str) -> bool:
    parts = rel_path.split("/")
    return any(pkg in parts for pkg in RETRY_SCOPED_PACKAGES)


class FixedRetryBackoffRule(Rule):
    """RK204: no fixed-delay or unjittered-backoff sleeps in retry loops."""

    rule_id = "RK204"
    severity = Severity.ERROR
    description = (
        "fixed-delay or unjittered-backoff sleep inside a retry loop in a "
        "distributed package; derive waits from adaptive timers with "
        "deterministic jitter (LinkTimers.backoff_wait) so peers do not "
        "retry in lockstep"
    )

    def __init__(self, context) -> None:
        super().__init__(context)
        self._loop_depth = 0

    def run(self) -> list:
        if not _in_retry_scope(self.context.rel_path):
            return []
        return super().run()

    # -- loop tracking -------------------------------------------------
    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_While = _visit_loop
    visit_AsyncFor = _visit_loop

    # -- the check -----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = self.context.resolve_call(node)
        if name in _SLEEP_CALLS and self._loop_depth > 0:
            wait = node.args[0] if node.args else None
            if wait is None or not self._has_jitter(wait):
                kind = (
                    "constant-delay"
                    if wait is None or isinstance(wait, ast.Constant)
                    else "unjittered-backoff"
                )
                self.report(
                    node,
                    f"{name}() with a {kind} wait inside a loop retries in "
                    "lockstep with every other peer; add deterministic "
                    "jitter or use an adaptive timer "
                    "(LinkTimers.backoff_wait)",
                )
        self.generic_visit(node)

    def _has_jitter(self, expr: ast.AST) -> bool:
        """True if any subexpression injects (seeded) randomness."""
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                name = self.context.resolve(sub.func)
                if name is not None:
                    if name.startswith(_JITTER_CALL_PREFIXES):
                        return True
                    if self._hinted(name):
                        return True
                # Method calls on dynamic receivers (`rng.random()`,
                # `self._rng.uniform(...)`) resolve to None; inspect
                # the attribute chain's identifiers directly.
                if self._hinted(self._identifiers(sub.func)):
                    return True
            elif isinstance(sub, (ast.Name, ast.Attribute)):
                if self._hinted(self._identifiers(sub)):
                    return True
        return False

    @staticmethod
    def _identifiers(node: ast.AST) -> str:
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
        return ".".join(reversed(parts))

    @staticmethod
    def _hinted(name: str) -> bool:
        lowered = name.lower()
        return any(hint in lowered for hint in _JITTER_NAME_HINTS)
