"""RNG-discipline rules (RK101-RK103).

KnightKing's correctness argument is a determinism argument: two
engines sample the same walk law only if every random draw comes from
an explicitly seeded, explicitly threaded stream
(:mod:`repro.sampling.rng`).  These rules reject the three ways Python
code silently breaks that:

* ``RK101`` — the stdlib :mod:`random` module (one hidden global
  stream, shared by everything in the process);
* ``RK102`` — ``np.random.default_rng()`` without a seed (OS entropy:
  a different walk every run, irreproducible by construction);
* ``RK103`` — numpy's *legacy* global-state API (``np.random.seed``,
  ``np.random.rand`` …), whose draws depend on every other legacy call
  in the process.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.rules import Rule

__all__ = ["StdlibRandomRule", "UnseededGeneratorRule", "LegacyNumpyRandomRule"]


class StdlibRandomRule(Rule):
    """RK101: no calls into the stdlib ``random`` module."""

    rule_id = "RK101"
    severity = Severity.ERROR
    description = (
        "stdlib random module call: draws from one hidden global stream; "
        "take an np.random.Generator parameter or derive one from an "
        "explicit seed (repro.sampling.rng)"
    )

    def visit_Call(self, node: ast.Call) -> None:
        name = self.context.resolve_call(node)
        if (
            name is not None
            and (name == "random" or name.startswith("random."))
            and self._import_rooted(node)
        ):
            # `random.<fn>()` or `from random import shuffle; shuffle()`.
            # The import-rooted check keeps a local callable that merely
            # *happens* to be named `random` from firing.
            self.report(
                node,
                f"call to {name}() uses the process-global stdlib RNG; "
                "thread an explicit np.random.Generator instead",
            )
        self.generic_visit(node)

    def _import_rooted(self, node: ast.Call) -> bool:
        """True when the call chain's root name comes from an import."""
        root = node.func
        while isinstance(root, ast.Attribute):
            root = root.value
        return isinstance(root, ast.Name) and root.id in self.context.aliases


class UnseededGeneratorRule(Rule):
    """RK102: ``default_rng()`` must receive an explicit seed."""

    rule_id = "RK102"
    severity = Severity.ERROR
    description = (
        "np.random.default_rng() without a seed draws OS entropy and is "
        "irreproducible; pass a seed, SeedSequence, or use "
        "repro.sampling.rng.derive_rng"
    )

    def visit_Call(self, node: ast.Call) -> None:
        name = self.context.resolve_call(node)
        if name == "numpy.random.default_rng":
            unseeded = not node.args and not node.keywords
            none_seeded = (
                len(node.args) == 1
                and not node.keywords
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            if unseeded or none_seeded:
                self.report(
                    node,
                    "default_rng() without an explicit seed is seeded from "
                    "the OS; every run samples a different walk",
                )
        self.generic_visit(node)


# The legacy global-state surface of numpy.random.  Anything here both
# reads and advances hidden module state; the new-generation API
# (default_rng / Generator / SeedSequence / bit generators) is exempt.
_LEGACY_NP_RANDOM = frozenset(
    {
        "seed", "get_state", "set_state",
        "rand", "randn", "randint", "random_integers",
        "random", "random_sample", "ranf", "sample", "bytes",
        "choice", "shuffle", "permutation",
        "uniform", "normal", "standard_normal", "lognormal",
        "beta", "binomial", "chisquare", "dirichlet", "exponential",
        "f", "gamma", "geometric", "gumbel", "hypergeometric",
        "laplace", "logistic", "logseries", "multinomial",
        "multivariate_normal", "negative_binomial",
        "noncentral_chisquare", "noncentral_f", "pareto", "poisson",
        "power", "rayleigh", "standard_cauchy", "standard_exponential",
        "standard_gamma", "standard_t", "triangular", "vonmises",
        "wald", "weibull", "zipf",
    }
)


class LegacyNumpyRandomRule(Rule):
    """RK103: no legacy ``np.random.<dist>`` global-state calls."""

    rule_id = "RK103"
    severity = Severity.ERROR
    description = (
        "legacy numpy.random global-state API; draws depend on every "
        "other legacy call in the process — use an explicit Generator"
    )

    def visit_Call(self, node: ast.Call) -> None:
        name = self.context.resolve_call(node)
        if name is not None and name.startswith("numpy.random."):
            tail = name[len("numpy.random."):]
            if tail in _LEGACY_NP_RANDOM:
                self.report(
                    node,
                    f"{name}() mutates numpy's hidden global RNG state; "
                    "use a seeded np.random.Generator",
                )
        self.generic_visit(node)
