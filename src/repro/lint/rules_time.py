"""Simulated-time purity rule (RK201).

The cluster simulator (:mod:`repro.cluster`) runs on *simulated*
seconds produced by the cost model; replay under fault injection is
bit-identical precisely because no code path consults the machine's
clock.  A single ``time.time()`` inside a simulation path makes
checkpoint replay, chaos tests, and the Figure 7 normalization depend
on host load.

The rule fires on wall-clock reads in any module under the simulated-
time packages, except files on an explicit allowlist that measure
*real* wall time on purpose (host-side profiling of the simulation
itself, reported separately from simulated seconds).
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.rules import Rule

__all__ = ["WallClockRule", "SIMULATED_TIME_PACKAGES", "WALL_CLOCK_ALLOWLIST"]

# Packages whose execution is paced by simulated time.  Matched as
# path-prefix components of the file's scan-relative path.
SIMULATED_TIME_PACKAGES = ("cluster",)

# Files allowed to read the host clock even inside a simulated-time
# package, because they account *host* wall time of the simulation run
# (WalkStats.wall_time_seconds), which is documented as host-side
# profiling and never feeds simulated seconds, message order, or any
# replayed decision.
WALL_CLOCK_ALLOWLIST = ("cluster/engine.py",)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _in_simulated_path(rel_path: str) -> bool:
    parts = rel_path.split("/")
    return any(pkg in parts for pkg in SIMULATED_TIME_PACKAGES)


def _allowlisted(rel_path: str) -> bool:
    return any(rel_path.endswith(suffix) for suffix in WALL_CLOCK_ALLOWLIST)


class WallClockRule(Rule):
    """RK201: no wall-clock reads inside simulated-time packages."""

    rule_id = "RK201"
    severity = Severity.ERROR
    description = (
        "wall-clock read inside a simulated-time package; simulation "
        "decisions must derive from the cost model so replay stays "
        "bit-identical (allowlist: host-side wall-time accounting files)"
    )

    def run(self) -> list:
        if not _in_simulated_path(self.context.rel_path):
            return []
        if _allowlisted(self.context.rel_path):
            return []
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        name = self.context.resolve_call(node)
        if name in _WALL_CLOCK_CALLS:
            self.report(
                node,
                f"{name}() reads the host clock inside a simulated-time "
                "package; use the cost model's simulated seconds (or move "
                "host-side accounting to an allowlisted stats path)",
            )
        self.generic_visit(node)
