"""Runtime determinism sanitizer.

The static rules in this package reject the *syntax* of
nondeterminism; this module checks the *behaviour*: it wraps an engine
so that every RNG draw, every walker state transition, and (for the
distributed engine) every message-delivery batch is folded into a
rolling hash, runs the same workload twice, and reports the **first
event where the two executions diverge** — turning "replay is
bit-identical" from an assertion inside one test into a checkable
property of any run (``repro sanitize`` on the CLI).

Why first-divergence localisation matters: a final-state mismatch on a
million-step walk says *something* broke; the event index says *what*
— "run B's 3rd RNG draw differs" points at an unseeded generator,
while "draws agree until message batch 17" points at delivery-order
nondeterminism.  Event payloads are hashed (BLAKE2b, 8 bytes) rather
than stored, so tracing a huge run costs one small digest plus two
interned label strings per event.

The engines expose the seam (``WalkEngine.attach_tracer``); this
module owns everything else, so the engines never import the lint
package.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "DeterminismTracer",
    "Divergence",
    "SanitizerReport",
    "TracedRNG",
    "run_sanitized",
]

# Generator methods that consume randomness and therefore must be
# traced.  Anything else (bit_generator, spawn, ...) passes through
# untouched.
_TRACED_DRAWS = frozenset(
    {
        "random", "integers", "choice", "permutation", "permuted",
        "shuffle", "uniform", "normal", "standard_normal",
        "exponential", "poisson", "binomial", "geometric", "beta",
        "gamma", "multinomial",
    }
)


def _digest_value(value: Any) -> bytes:
    """Stable 8-byte digest of a draw result / event payload."""
    hasher = hashlib.blake2b(digest_size=8)
    if isinstance(value, np.ndarray):
        hasher.update(str(value.dtype).encode())
        hasher.update(str(value.shape).encode())
        hasher.update(np.ascontiguousarray(value).tobytes())
    elif value is None:
        hasher.update(b"none")
    else:
        array = np.asarray(value)
        hasher.update(str(array.dtype).encode())
        hasher.update(array.tobytes())
    return hasher.digest()


class TracedRNG:
    """Transparent proxy over ``np.random.Generator`` that records a
    digest of every draw.

    Only drawing methods are intercepted; attribute access otherwise
    forwards to the wrapped generator, so engine code (and program
    hooks receiving this object) runs unmodified.  The trace records
    the *results*, not the requests — two runs that ask for the same
    draws but get different values (an unseeded generator) diverge at
    the first draw.
    """

    def __init__(self, rng: np.random.Generator, tracer: "DeterminismTracer") -> None:
        self._rng = rng
        self._tracer = tracer

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._rng, name)
        if name not in _TRACED_DRAWS:
            return attr

        def traced(*args: Any, **kwargs: Any) -> Any:
            result = attr(*args, **kwargs)
            if result is None and args:
                # In-place ops (shuffle) — digest the mutated operand.
                self._tracer.record("rng", name, _digest_value(args[0]))
            else:
                self._tracer.record("rng", name, _digest_value(result))
            return result

        return traced


class DeterminismTracer:
    """Accumulates the event stream of one traced execution.

    Per event the tracer stores an 8-byte digest plus two interned
    strings (kind, label) — the value payloads themselves are hashed
    away, so tracing a million-event run costs a few tens of MB at
    most, and the labels keep every divergence report readable.
    """

    def __init__(self) -> None:
        self.digests: list[bytes] = []
        self.kinds: list[str] = []
        self.labels: list[str] = []
        self._rolling = hashlib.blake2b(digest_size=16)

    # ------------------------------------------------------------------
    # Recording (called via the engine seams)
    # ------------------------------------------------------------------
    def record(self, kind: str, label: str, digest: bytes) -> None:
        event = hashlib.blake2b(digest_size=8)
        event.update(kind.encode())
        event.update(label.encode())
        event.update(digest)
        event_digest = event.digest()
        self.digests.append(event_digest)
        self.kinds.append(kind)
        self.labels.append(label)
        self._rolling.update(event_digest)

    def trace_rng(self, rng: np.random.Generator) -> TracedRNG:
        return TracedRNG(rng, self)

    def record_transition(
        self, kind: str, walker_ids: np.ndarray, targets: np.ndarray | None
    ) -> None:
        payload = _digest_value(np.asarray(walker_ids))
        if targets is not None:
            payload += _digest_value(np.asarray(targets))
        self.record("walker", kind, payload)

    def record_delivery(
        self, kind: str, sources: np.ndarray, destinations: np.ndarray
    ) -> None:
        payload = _digest_value(np.asarray(sources)) + _digest_value(
            np.asarray(destinations)
        )
        self.record("message", kind, payload)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        return len(self.digests)

    def rolling_hash(self) -> str:
        return self._rolling.hexdigest()

    def describe(self, index: int) -> str:
        if 0 <= index < len(self.digests):
            return (
                f"{self.kinds[index]}:{self.labels[index]} "
                f"digest={self.digests[index].hex()}"
            )
        return "<no event (stream ended)>"


@dataclass(frozen=True)
class Divergence:
    """First point where two traced executions disagree."""

    index: int
    event_a: str
    event_b: str

    def format(self) -> str:
        return (
            f"first divergence at event {self.index}:\n"
            f"  run A: {self.event_a}\n"
            f"  run B: {self.event_b}"
        )


@dataclass
class SanitizerReport:
    """Outcome of a sanitized (run-twice-and-compare) execution."""

    deterministic: bool
    events: tuple[int, ...]
    rolling_hashes: tuple[str, ...]
    divergence: Divergence | None = None
    kind_counts: dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        lines = []
        for run, (count, rolling) in enumerate(
            zip(self.events, self.rolling_hashes)
        ):
            lines.append(f"run {run}: {count} events, rolling hash {rolling}")
        if self.kind_counts:
            per_kind = " ".join(
                f"{kind}={count}" for kind, count in sorted(self.kind_counts.items())
            )
            lines.append(f"run 0 event mix: {per_kind}")
        if self.deterministic:
            lines.append(
                "deterministic: all runs produced identical event streams"
            )
        else:
            assert self.divergence is not None
            lines.append("NON-DETERMINISTIC execution detected")
            lines.append(self.divergence.format())
        return "\n".join(lines)


def _first_divergence(
    reference: DeterminismTracer, candidate: DeterminismTracer
) -> Divergence | None:
    limit = min(reference.num_events, candidate.num_events)
    for index in range(limit):
        if reference.digests[index] != candidate.digests[index]:
            return Divergence(
                index=index,
                event_a=reference.describe(index),
                event_b=candidate.describe(index),
            )
    if reference.num_events != candidate.num_events:
        return Divergence(
            index=limit,
            event_a=reference.describe(limit),
            event_b=candidate.describe(limit),
        )
    return None


def run_sanitized(
    engine_factory: Callable[[], Any] | Sequence[Callable[[], Any]],
    runs: int = 2,
    run_kwargs: dict[str, Any] | None = None,
) -> SanitizerReport:
    """Execute engines under tracing and compare the event streams.

    ``engine_factory`` is either one factory — called ``runs`` times,
    the classic replay-determinism check — or a *sequence* of factories
    traced once each, whose event streams must still be identical.
    The sequence form is the cross-engine check: the step-centric and
    walker-centric engines of one seeded workload are required to fold
    to the same rolling hash (``repro sanitize --compare-engines``),
    which pins their bit-identity at the event level, not just the
    final walk matrix.

    Every factory must build a **fresh** engine per call (engines are
    single-shot); anything nondeterministic the factory itself does —
    an unseeded RNG in program setup, wall-clock-dependent
    configuration — is exactly what the comparison catches.
    """
    if callable(engine_factory):
        if runs < 2:
            raise ValueError("sanitizing needs at least two runs to compare")
        factories: list[Callable[[], Any]] = [engine_factory] * runs
    else:
        factories = list(engine_factory)
        if len(factories) < 2:
            raise ValueError(
                "sanitizing needs at least two engine factories to compare"
            )
    kwargs = run_kwargs if run_kwargs is not None else {}
    tracers: list[DeterminismTracer] = []
    for factory in factories:
        engine = factory()
        tracer = DeterminismTracer()
        engine.attach_tracer(tracer)
        engine.run(**kwargs)
        tracers.append(tracer)

    divergence = None
    for candidate in tracers[1:]:
        divergence = _first_divergence(tracers[0], candidate)
        if divergence is not None:
            break

    kind_counts: dict[str, int] = {}
    for kind in tracers[0].kinds:
        kind_counts[kind] = kind_counts.get(kind, 0) + 1

    return SanitizerReport(
        deterministic=divergence is None,
        events=tuple(t.num_events for t in tracers),
        rolling_hashes=tuple(t.rolling_hash() for t in tracers),
        divergence=divergence,
        kind_counts=kind_counts,
    )
