"""Deterministic-safe observability: metrics registry, span tracer,
exporters, and adapters over the existing stat objects.

Design rules (docs/INTERNALS.md section 16):

* **Clock injection.**  :class:`Tracer` never owns time — local
  engines inject ``perf_counter``; the cluster simulator passes its
  simulated seconds through :meth:`Tracer.record_span` and performs no
  clock reads at all (lint rules RK201/RK206/RK210 enforce this).
* **Observation only.**  Nothing in this package draws randomness or
  feeds back into engine control flow, so attaching a tracer cannot
  change a walk and simulated traces replay bit-identically.
* **Hard off-switch.**  Engines hold no tracer by default and guard
  every emission with a single attribute check; the perf harness
  certifies the disabled path at <3% steps/sec overhead.
"""

from .adapters import (
    registry_from_cluster_stats,
    registry_from_service_metrics,
    registry_from_walk_stats,
)
from .exporters import (
    to_chrome_trace,
    to_json_lines,
    to_prometheus_text,
    write_chrome_trace,
)
from .metrics import (
    ACTIVE_WALKER_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    SUPERSTEP_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import Span, Tracer, default_clock

__all__ = [
    "ACTIVE_WALKER_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "SUPERSTEP_SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "default_clock",
    "registry_from_cluster_stats",
    "registry_from_service_metrics",
    "registry_from_walk_stats",
    "to_chrome_trace",
    "to_json_lines",
    "to_prometheus_text",
    "write_chrome_trace",
]
