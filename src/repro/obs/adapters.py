"""Adapters: existing stat objects → :class:`MetricsRegistry`.

`WalkStats`, `ServiceMetrics`, and `ClusterStats` keep their public
fields (every test and report that reads them is untouched); the
adapters project them into the registry's common model so one exporter
stack serves all three.  Each adapter takes an optional registry (to
accumulate several sources) and optional labels (to keep per-shard or
per-request series apart while staying mergeable).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import (
    ACTIVE_WALKER_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    SUPERSTEP_SECONDS_BUCKETS,
    MetricsRegistry,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.engine import ClusterStats
    from ..core.stats import ServiceMetrics, WalkStats

__all__ = [
    "registry_from_walk_stats",
    "registry_from_service_metrics",
    "registry_from_cluster_stats",
]


def registry_from_walk_stats(
    stats: "WalkStats",
    registry: MetricsRegistry | None = None,
    **labels: str,
) -> MetricsRegistry:
    """Project one engine run's :class:`WalkStats` into a registry."""
    reg = registry if registry is not None else MetricsRegistry()
    reg.counter(
        "walk_steps", "successful walker moves", **labels
    ).inc(stats.total_steps)
    reg.counter(
        "walk_iterations", "engine supersteps executed", **labels
    ).inc(stats.iterations)
    reg.counter("walk_teleports", "teleport moves", **labels).inc(
        stats.teleports
    )
    reg.counter(
        "walk_messages_sent", "walker/query messages sent", **labels
    ).inc(stats.messages_sent)
    reg.counter(
        "walk_full_scan_evaluations",
        "Pd evaluations spent in zero-mass scans",
        **labels,
    ).inc(stats.full_scan_evaluations)
    counters = stats.counters
    reg.counter(
        "walk_sampling_trials", "rejection-sampling trials", **labels
    ).inc(counters.trials)
    reg.counter(
        "walk_pd_evaluations",
        "dynamic-component evaluations",
        **labels,
    ).inc(counters.pd_evaluations)
    reg.counter(
        "walk_pre_accepts", "lower-bound pre-accepted trials", **labels
    ).inc(counters.pre_accepts)
    for reason, count in (
        ("step_limit", stats.termination.by_step_limit),
        ("probability", stats.termination.by_probability),
        ("dead_end", stats.termination.by_dead_end),
    ):
        reg.counter(
            "walk_terminations",
            "walker terminations by cause",
            reason=reason,
            **labels,
        ).inc(count)
    reg.counter(
        "walk_wall_seconds",
        "wall-clock seconds in the walk loop",
        **labels,
    ).inc(stats.wall_time_seconds)
    reg.counter(
        "walk_init_seconds",
        "sampler/walker initialisation seconds",
        **labels,
    ).inc(stats.init_time_seconds)
    active = reg.histogram(
        "walk_active_walkers",
        "active walkers entering each superstep (paper Fig. 5)",
        boundaries=ACTIVE_WALKER_BUCKETS,
        **labels,
    )
    for count in stats.active_per_iteration:
        active.observe(float(count))
    if stats.graph_epoch is not None:
        reg.gauge(
            "walk_graph_epoch", "pinned dynamic-graph epoch", **labels
        ).set(stats.graph_epoch)
    if stats.maintenance is not None:
        reg.counter(
            "walk_sampler_epochs_maintained",
            "epochs whose tables were produced incrementally",
            **labels,
        ).inc(stats.maintenance.epochs_maintained)
        reg.counter(
            "walk_sampler_full_rebuilds",
            "sampler table builds that ran from scratch",
            **labels,
        ).inc(stats.maintenance.full_rebuilds)
    return reg


def registry_from_service_metrics(
    metrics: "ServiceMetrics",
    registry: MetricsRegistry | None = None,
    **labels: str,
) -> MetricsRegistry:
    """Project the serving layer's accounting into a registry.  The
    conservation law survives projection:
    ``service_submitted_total == service_served_total +
    service_shed_total + service_failed_total`` after a drain."""
    reg = registry if registry is not None else MetricsRegistry()
    for name, value, help_text in (
        ("service_submitted", metrics.submitted, "requests offered"),
        ("service_admitted", metrics.admitted, "requests queued"),
        ("service_served", metrics.served, "requests answered"),
        ("service_failed", metrics.failed, "requests that raised"),
        ("service_degraded", metrics.degraded, "requests served degraded"),
        (
            "service_deadline_hits",
            metrics.deadline_hits,
            "served with a deadline-exceeded partial",
        ),
        (
            "service_distributed_runs",
            metrics.distributed_runs,
            "requests executed on the cluster simulator",
        ),
        (
            "service_updates_applied",
            metrics.updates_applied,
            "dynamic-graph updates committed",
        ),
    ):
        reg.counter(name, help_text, **labels).inc(value)
    if metrics.shed_reasons:
        for reason, count in sorted(metrics.shed_reasons.items()):
            reg.counter(
                "service_shed", "requests shed by cause", reason=reason,
                **labels,
            ).inc(count)
    else:
        reg.counter(
            "service_shed", "requests shed by cause", reason="none",
            **labels,
        ).inc(metrics.shed)
    reg.gauge(
        "service_queue_depth_peak",
        "admission-queue high watermark",
        **labels,
    ).set(metrics.queue_depth_peak)
    latency = reg.histogram(
        "service_request_latency_seconds",
        "submit-to-response latency",
        boundaries=DEFAULT_LATENCY_BUCKETS,
        **labels,
    )
    for seconds in metrics.latencies_seconds:
        latency.observe(seconds)
    return reg


def registry_from_cluster_stats(
    cluster: "ClusterStats",
    registry: MetricsRegistry | None = None,
    **labels: str,
) -> MetricsRegistry:
    """Project one distributed run's :class:`ClusterStats` (simulated
    time, per-node load, delivery/recovery bills) into a registry."""
    reg = registry if registry is not None else MetricsRegistry()
    reg.gauge("cluster_nodes", "simulated cluster size", **labels).set(
        cluster.num_nodes
    )
    reg.counter(
        "cluster_supersteps", "BSP supersteps executed", **labels
    ).inc(cluster.num_supersteps)
    reg.counter(
        "cluster_simulated_seconds",
        "simulated run time (cost model)",
        **labels,
    ).inc(cluster.simulated_seconds)
    times = reg.histogram(
        "cluster_superstep_seconds",
        "simulated per-superstep barrier times",
        boundaries=SUPERSTEP_SECONDS_BUCKETS,
        **labels,
    )
    for seconds in cluster.superstep_times:
        times.observe(seconds)
    if cluster.trials_per_node is not None:
        for node, trials in enumerate(cluster.trials_per_node):
            reg.counter(
                "cluster_node_trials",
                "lifetime rejection trials per node",
                node=str(node),
                **labels,
            ).inc(int(trials))
    if cluster.pd_evaluations_per_node is not None:
        for node, evals in enumerate(cluster.pd_evaluations_per_node):
            reg.counter(
                "cluster_node_pd_evaluations",
                "lifetime Pd evaluations per node",
                node=str(node),
                **labels,
            ).inc(int(evals))
    if cluster.network is not None:
        network = cluster.network
        reg.counter(
            "cluster_messages", "remote messages delivered", **labels
        ).inc(network.total_messages())
        reg.counter(
            "cluster_message_bytes", "remote bytes on the wire", **labels
        ).inc(network.total_bytes())
        reg.counter(
            "cluster_local_deliveries",
            "same-node walker deliveries",
            **labels,
        ).inc(network.local_deliveries())
    if cluster.delivery is not None:
        delivery = cluster.delivery
        for name, value in (
            ("cluster_retransmissions", delivery.retransmissions),
            ("cluster_dedups", delivery.dedups),
            ("cluster_injected_drops", delivery.drops),
            ("cluster_injected_duplicates", delivery.duplicates),
            ("cluster_injected_delays", delivery.delays),
        ):
            reg.counter(
                name, "reliable-delivery accounting", **labels
            ).inc(value)
    recovery = cluster.recovery
    reg.counter("cluster_crashes", "injected node crashes", **labels).inc(
        recovery.crashes
    )
    reg.counter(
        "cluster_checkpoints_taken", "recovery checkpoints", **labels
    ).inc(recovery.checkpoints_taken)
    reg.counter(
        "cluster_replayed_supersteps",
        "supersteps replayed during recovery",
        **labels,
    ).inc(recovery.replayed_supersteps)
    reg.counter(
        "cluster_recovery_seconds",
        "simulated seconds spent recovering",
        **labels,
    ).inc(recovery.recovery_seconds)
    if cluster.health is not None:
        reg.counter(
            "cluster_straggler_suspicions",
            "health-monitor suspicion events",
            **labels,
        ).inc(cluster.health.suspect_events)
        reg.counter(
            "cluster_walkers_rebalanced",
            "walkers migrated off suspects",
            **labels,
        ).inc(cluster.health.migrated_walkers)
    return reg
