"""Exporters: Prometheus text, JSON-lines, Chrome trace-event.

All three are deterministic functions of their inputs — instruments
are emitted in sorted (name, labels) order and spans in (ts, span_id)
order — so exported artifacts from replayed simulator runs compare
bit-for-bit (the cluster trace test pins this).
"""

from __future__ import annotations

import json
from typing import Iterable

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import Span, Tracer

__all__ = [
    "to_prometheus_text",
    "to_json_lines",
    "to_chrome_trace",
    "write_chrome_trace",
]


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = tuple(labels) + extra
    if not items:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in items
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (version 0.0.4).

    Counters get a ``_total`` suffix if they do not already carry one;
    histograms expand to cumulative ``_bucket{le=...}`` series plus
    ``_sum``/``_count``, ending with the mandatory ``le="+Inf"`` bucket.
    """
    lines: list[str] = []
    seen_headers: set[str] = set()

    for inst in registry.instruments():
        if isinstance(inst, Counter):
            name = inst.name if inst.name.endswith("_total") else (
                inst.name + "_total"
            )
            if name not in seen_headers:
                seen_headers.add(name)
                if inst.help:
                    lines.append(f"# HELP {name} {inst.help}")
                lines.append(f"# TYPE {name} counter")
            lines.append(
                f"{name}{_format_labels(inst.labels)} "
                f"{_format_value(inst.value)}"
            )
        elif isinstance(inst, Gauge):
            if inst.name not in seen_headers:
                seen_headers.add(inst.name)
                if inst.help:
                    lines.append(f"# HELP {inst.name} {inst.help}")
                lines.append(f"# TYPE {inst.name} gauge")
            lines.append(
                f"{inst.name}{_format_labels(inst.labels)} "
                f"{_format_value(inst.value)}"
            )
        elif isinstance(inst, Histogram):
            if inst.name not in seen_headers:
                seen_headers.add(inst.name)
                if inst.help:
                    lines.append(f"# HELP {inst.name} {inst.help}")
                lines.append(f"# TYPE {inst.name} histogram")
            cumulative = 0
            for boundary, count in zip(inst.boundaries, inst.counts):
                cumulative += count
                le = ("le", _format_value(boundary))
                lines.append(
                    f"{inst.name}_bucket"
                    f"{_format_labels(inst.labels, (le,))} {cumulative}"
                )
            cumulative += inst.counts[-1]
            lines.append(
                f"{inst.name}_bucket"
                f'{_format_labels(inst.labels, (("le", "+Inf"),))} '
                f"{cumulative}"
            )
            lines.append(
                f"{inst.name}_sum{_format_labels(inst.labels)} "
                f"{_format_value(inst.sum)}"
            )
            lines.append(
                f"{inst.name}_count{_format_labels(inst.labels)} "
                f"{cumulative}"
            )
    return "\n".join(lines) + "\n"


def to_json_lines(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> str:
    """One JSON object per line: metric samples then spans."""
    lines: list[str] = []
    if registry is not None:
        for inst in registry.instruments():
            record: dict = {
                "record": "metric",
                "kind": inst.kind,
                "name": inst.name,
                "labels": dict(inst.labels),
            }
            if isinstance(inst, Histogram):
                record["boundaries"] = list(inst.boundaries)
                record["counts"] = list(inst.counts)
                record["sum"] = inst.sum
                record["count"] = inst.count
            else:
                record["value"] = inst.value
            lines.append(json.dumps(record, sort_keys=True))
    if tracer is not None:
        for span in sorted(tracer.spans, key=lambda s: (s.ts, s.span_id)):
            lines.append(
                json.dumps(
                    {
                        "record": "span",
                        "name": span.name,
                        "ts": span.ts,
                        "dur": span.dur,
                        "track": span.track,
                        "category": span.category,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        "trace_id": span.trace_id,
                        "args": span.args,
                    },
                    sort_keys=True,
                )
            )
    return "\n".join(lines) + ("\n" if lines else "")


def _track_order(spans: Iterable[Span]) -> list[str]:
    """Tracks sorted with node tracks in numeric order first, then the
    rest alphabetically — chrome://tracing shows rows by tid."""
    tracks: set[str] = {s.track for s in spans}

    def key(track: str):
        if track.startswith("node") and track[4:].isdigit():
            return (0, int(track[4:]), track)
        return (1, 0, track)

    return sorted(tracks, key=key)


def to_chrome_trace(
    tracer: Tracer,
    *,
    process_name: str = "repro",
) -> dict:
    """Chrome trace-event JSON (the object form with ``traceEvents``).

    Each span becomes a complete event (``ph: "X"``) with microsecond
    ``ts``/``dur``; tracks map to tids with ``thread_name`` metadata so
    Perfetto/chrome://tracing shows one labelled row per node.  Span
    ids and trace ids ride in ``args`` so cross-node walker hops remain
    stitchable after export.
    """
    tids = {track: i for i, track in enumerate(_track_order(tracer.spans))}
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in sorted(tracer.spans, key=lambda s: (s.ts, s.span_id)):
        args = dict(span.args)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "pid": 0,
                "tid": tids[span.track],
                "ts": round(span.ts * 1e6, 3),
                "dur": round(span.dur * 1e6, 3),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    tracer: Tracer, path, *, process_name: str = "repro"
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            to_chrome_trace(tracer, process_name=process_name),
            handle,
            sort_keys=True,
        )
        handle.write("\n")
