"""Typed metrics registry: counters, gauges, histograms.

The registry is the single funnel for every number the repo already
counts (``WalkStats``, ``ServiceMetrics``, ``ClusterStats``) and for
new instrumentation.  Three properties drive the design:

* **Mergeable across processes.**  SupervisedPool workers build a
  registry in the child and ship it back for :meth:`MetricsRegistry.merge`
  in the parent, so every instrument is a plain picklable dataclass and
  merge is associative/commutative (counters add, gauges take the max
  observed, histograms add bucket-wise).
* **Fixed bucket boundaries.**  Histograms declare their boundaries at
  creation; merging two histograms with different boundaries is an
  error rather than a silent re-bucketing, so cross-shard percentile
  math stays exact.
* **Deterministic.**  Nothing here reads a clock or draws randomness —
  the registry only aggregates numbers handed to it, so attaching one
  to a simulated cluster run cannot perturb replay (see RK206).
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field
from typing import Iterator

from ..errors import ObsError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "ACTIVE_WALKER_BUCKETS",
    "SUPERSTEP_SECONDS_BUCKETS",
]

# Fixed boundaries shared by every producer of the same metric family,
# so shard-local histograms always merge exactly.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
ACTIVE_WALKER_BUCKETS: tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)
SUPERSTEP_SECONDS_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ObsError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically non-decreasing count."""

    name: str
    labels: LabelKey = ()
    help: str = ""
    value: float = 0.0

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def merge_from(self, other: "Counter") -> None:
        self.value += other.value


@dataclass
class Gauge:
    """Point-in-time value.  Merging keeps the maximum, which is the
    right fold for the gauges we ship across shards (queue depth peak,
    walker high-water marks); use a counter for anything additive."""

    name: str
    labels: LabelKey = ()
    help: str = ""
    value: float = 0.0

    kind = "gauge"

    def set(self, value: float) -> None:
        self.value = float(value)

    def merge_from(self, other: "Gauge") -> None:
        self.value = max(self.value, other.value)


@dataclass
class Histogram:
    """Fixed-boundary histogram (cumulative-bucket export, Prometheus
    style).  ``counts`` has ``len(boundaries) + 1`` slots; the last is
    the overflow (+Inf) bucket."""

    name: str
    labels: LabelKey = ()
    help: str = ""
    boundaries: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    counts: list[int] = field(default_factory=list)
    sum: float = 0.0

    kind = "histogram"

    def __post_init__(self) -> None:
        bounds = tuple(float(b) for b in self.boundaries)
        if not bounds:
            raise ObsError(f"histogram {self.name} needs >= 1 boundary")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ObsError(
                f"histogram {self.name} boundaries must be strictly "
                f"increasing, got {bounds}"
            )
        self.boundaries = bounds
        if not self.counts:
            self.counts = [0] * (len(bounds) + 1)
        elif len(self.counts) != len(bounds) + 1:
            raise ObsError(
                f"histogram {self.name} has {len(self.counts)} counts "
                f"for {len(bounds)} boundaries"
            )

    @property
    def count(self) -> int:
        return sum(self.counts)

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.sum += value

    def merge_from(self, other: "Histogram") -> None:
        if other.boundaries != self.boundaries:
            raise ObsError(
                f"histogram {self.name} bucket mismatch: "
                f"{self.boundaries} vs {other.boundaries}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum


Instrument = Counter | Gauge | Histogram


@dataclass
class MetricsRegistry:
    """Keyed store of instruments.

    Instruments are keyed by ``(name, sorted label items)``; asking for
    the same key twice returns the same object, asking with a different
    instrument kind (or histogram boundaries) raises :class:`ObsError`.
    """

    _metrics: dict[tuple[str, LabelKey], Instrument] = field(
        default_factory=dict
    )

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        boundaries: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (self._check_name(name), _label_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ObsError(
                    f"metric {name} already registered as {existing.kind}"
                )
            if existing.boundaries != tuple(float(b) for b in boundaries):
                raise ObsError(
                    f"histogram {name} re-registered with different "
                    f"boundaries"
                )
            return existing
        hist = Histogram(
            name=name, labels=key[1], help=help, boundaries=boundaries
        )
        self._metrics[key] = hist
        return hist

    def _check_name(self, name: str) -> str:
        if not _NAME_RE.match(name):
            raise ObsError(f"invalid metric name {name!r}")
        return name

    def _get(self, cls, name: str, help: str, labels: dict[str, str]):
        key = (self._check_name(name), _label_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ObsError(
                    f"metric {name} already registered as {existing.kind}"
                )
            return existing
        inst = cls(name=name, labels=key[1], help=help)
        self._metrics[key] = inst
        return inst

    def instruments(self) -> Iterator[Instrument]:
        """All instruments in deterministic (name, labels) order."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def get(self, name: str, **labels: str) -> Instrument | None:
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, **labels: str) -> float:
        """Convenience: scalar value of a counter/gauge (0.0 if absent)."""
        inst = self.get(name, **labels)
        if inst is None:
            return 0.0
        if isinstance(inst, Histogram):
            return float(inst.count)
        return inst.value

    def __len__(self) -> int:
        return len(self._metrics)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (counters add, gauges max,
        histograms add bucket-wise).  Returns ``self`` for chaining."""
        for key, inst in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                # Copy so later merges never mutate the source registry.
                if isinstance(inst, Histogram):
                    mine = Histogram(
                        name=inst.name,
                        labels=inst.labels,
                        help=inst.help,
                        boundaries=inst.boundaries,
                    )
                else:
                    mine = type(inst)(
                        name=inst.name, labels=inst.labels, help=inst.help
                    )
                self._metrics[key] = mine
            if type(mine) is not type(inst):
                raise ObsError(
                    f"merge kind mismatch for {inst.name}: "
                    f"{mine.kind} vs {inst.kind}"
                )
            mine.merge_from(inst)
        return self
