"""Span tracer with explicit clock injection.

Two ways to put a span on the timeline:

* the **measured** path — ``with tracer.span("superstep"): ...`` reads
  the *injected* clock (``perf_counter`` by default) around the block.
  Local engines use this.
* the **declared** path — ``tracer.record_span(name, ts=..., dur=...)``
  takes timestamps the caller already owns.  The cluster simulator uses
  this exclusively with its simulated seconds, so tracing a distributed
  run performs **zero clock reads** inside ``repro.cluster`` (lint
  rules RK201/RK210/RK206 stay clean) and a degraded run's trace is
  bit-identical across replay.

Causality is tracked two ways: the measured path keeps a per-track
stack so nested ``span()`` blocks get parent ids automatically, and
both paths accept a ``trace_id`` so logically-related spans on
different tracks (a walker hopping between nodes, a service request
fanning out to shards) stitch into one trace.

Cost model: the hard off-switch is ``enabled=False`` (or simply not
attaching a tracer) — engines guard every emission with one attribute
check, which is what the perf harness certifies at <3% overhead.
``sample_every`` thins only *per-walker* spans (the one cardinality
that scales with workload size); structural spans (run, superstep,
stages) are always kept when tracing is on.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import ObsError

__all__ = ["Span", "Tracer", "default_clock"]


def default_clock() -> float:
    """Monotonic wall clock for local (non-simulated) engines."""
    return time.perf_counter()


@dataclass
class Span:
    """One completed span.  ``ts``/``dur`` are seconds relative to the
    tracer's epoch — wall seconds for local runs, simulated seconds for
    cluster runs."""

    name: str
    ts: float
    dur: float
    track: str = "main"
    category: str = "engine"
    span_id: int = 0
    parent_id: int | None = None
    trace_id: str | None = None
    args: dict[str, Any] = field(default_factory=dict)


class _SpanHandle:
    """Yielded by :meth:`Tracer.span`; lets the block attach result
    args (``handle.args["active"] = n``) before the span closes."""

    __slots__ = ("span_id", "args")

    def __init__(self, span_id: int, args: dict[str, Any]):
        self.span_id = span_id
        self.args = args


class Tracer:
    """Collects :class:`Span` records against one injected clock.

    Parameters
    ----------
    clock:
        zero-arg callable returning seconds.  Defaults to
        ``perf_counter``.  Simulated-time packages must inject their
        own clock or use only :meth:`record_span` (rule RK206).
    enabled:
        the hard off-switch.  When ``False`` every method is a no-op
        and engines treat the tracer as absent.
    sample_every:
        keep per-walker spans only for walker ids divisible by this
        (deterministic — no RNG).  1 keeps everything.
    max_spans:
        safety cap; recording beyond it silently drops spans so a
        forgotten tracer cannot exhaust memory on a long soak.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        *,
        enabled: bool = True,
        sample_every: int = 1,
        max_spans: int = 1_000_000,
    ) -> None:
        if sample_every < 1:
            raise ObsError(f"sample_every must be >= 1, got {sample_every}")
        self._clock = clock if clock is not None else default_clock
        self.enabled = bool(enabled)
        self.sample_every = int(sample_every)
        self.max_spans = int(max_spans)
        self.spans: list[Span] = []
        self.dropped = 0
        self._next_id = 1
        self._stacks: dict[str, list[int]] = {}
        self._lock = threading.Lock()
        self._epoch: float | None = None

    # -- clock ---------------------------------------------------------

    def now(self) -> float:
        """Seconds since the first clock read (tracer epoch)."""
        raw = self._clock()
        if self._epoch is None:
            self._epoch = raw
        return raw - self._epoch

    def sampled(self, key: int) -> bool:
        """Deterministic keep/drop decision for per-walker spans."""
        return self.enabled and key % self.sample_every == 0

    # -- declared path (simulated time) --------------------------------

    def record_span(
        self,
        name: str,
        *,
        ts: float,
        dur: float,
        track: str = "main",
        category: str = "engine",
        parent_id: int | None = None,
        trace_id: str | None = None,
        args: dict[str, Any] | None = None,
    ) -> int:
        """Record a span with caller-supplied timestamps.  Returns the
        span id (0 when disabled/dropped) for use as a later parent."""
        if not self.enabled:
            return 0
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
                return 0
            span_id = self._next_id
            self._next_id += 1
            self.spans.append(
                Span(
                    name=name,
                    ts=float(ts),
                    dur=float(dur),
                    track=track,
                    category=category,
                    span_id=span_id,
                    parent_id=parent_id,
                    trace_id=trace_id,
                    args=dict(args) if args else {},
                )
            )
        return span_id

    # -- measured path (injected clock) --------------------------------

    def begin(self, track: str = "main") -> float:
        """Timestamp to later pass to :meth:`end`."""
        return self.now()

    def end(
        self,
        name: str,
        started: float,
        *,
        track: str = "main",
        category: str = "engine",
        trace_id: str | None = None,
        args: dict[str, Any] | None = None,
    ) -> int:
        """Close an explicit begin/end pair on the injected clock."""
        if not self.enabled:
            return 0
        now = self.now()
        with self._lock:
            stack = self._stacks.get(track)
            parent = stack[-1] if stack else None
        return self.record_span(
            name,
            ts=started,
            dur=max(now - started, 0.0),
            track=track,
            category=category,
            parent_id=parent,
            trace_id=trace_id,
            args=args,
        )

    @contextmanager
    def span(
        self,
        name: str,
        *,
        track: str = "main",
        category: str = "engine",
        trace_id: str | None = None,
        args: dict[str, Any] | None = None,
    ) -> Iterator[_SpanHandle | None]:
        """Measured span around a block; nests via a per-track stack."""
        if not self.enabled:
            yield None
            return
        started = self.now()
        with self._lock:
            stack = self._stacks.setdefault(track, [])
            parent = stack[-1] if stack else None
            span_id = self._next_id
            self._next_id += 1
            stack.append(span_id)
        handle = _SpanHandle(span_id, dict(args) if args else {})
        try:
            yield handle
        finally:
            ended = self.now()
            with self._lock:
                stack = self._stacks.get(track)
                if stack and stack[-1] == span_id:
                    stack.pop()
                if len(self.spans) < self.max_spans:
                    self.spans.append(
                        Span(
                            name=name,
                            ts=started,
                            dur=max(ended - started, 0.0),
                            track=track,
                            category=category,
                            span_id=span_id,
                            parent_id=parent,
                            trace_id=trace_id,
                            args=handle.args,
                        )
                    )
                else:
                    self.dropped += 1

    # -- introspection --------------------------------------------------

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def children_of(self, span_id: int) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def __len__(self) -> int:
        return len(self.spans)
