"""True multi-process walk execution on one machine.

The cluster simulator (:mod:`repro.cluster`) *models* distribution to
count work and messages; this module actually parallelises: walkers are
sharded across worker processes, each running an independent
:class:`~repro.core.engine.WalkEngine` over the shared graph, and the
results are merged.  Because walkers never interact, sharding is exact
— the union of shard walks is distributed identically to a single-
engine run (each shard gets an independent seed stream).

This is the random-walk analogue of DrunkardMob's observation (paper
section 3) that single-machine multicore execution goes a long way:
for algorithms without cross-walker coordination, embarrassing
parallelism is real.

Execution is *supervised* (:class:`repro.service.pool.SupervisedPool`):
a worker that dies (OOM kill, ``os._exit``) surfaces immediately as
:class:`~repro.errors.WorkerError` naming the shard instead of
blocking a bare ``pool.map`` forever, worker exceptions re-surface
with their original traceback plus the shard index and seed, per-shard
timeouts are enforced, and dead workers are restarted under a capped
retry budget.  A ``deadline`` propagates into every shard engine's
chunked run loop, so parallel runs return partial, well-formed results
tagged ``deadline_exceeded`` just like single-engine runs.

Implementation notes: workers are spawned via ``multiprocessing`` with
the fork start method where available, so the CSR arrays are shared
copy-on-write.  On platforms without fork, arguments fall back to
pickling (correct, slower).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.core.program import WalkerProgram
from repro.core.stats import WalkStats
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.obs import MetricsRegistry, registry_from_walk_stats
from repro.service.breaker import RetryBudget
from repro.service.deadline import Deadline
from repro.service.pool import SupervisedPool

__all__ = ["ParallelWalkResult", "run_parallel_walk", "shard_config"]


@dataclass
class ParallelWalkResult:
    """Merged outcome of a sharded walk execution.

    ``metrics`` is the merged :class:`~repro.obs.MetricsRegistry`:
    every shard builds a delta from its own :class:`WalkStats` inside
    the worker process (labelled ``shard=<i>``), ships it back through
    the supervised pool's result pipe, and the parent folds the deltas
    — plus the pool's own supervision counters — into one registry.
    """

    stats: WalkStats
    paths: list[np.ndarray] | None
    walk_lengths: np.ndarray
    num_workers: int
    status: str = "complete"
    metrics: MetricsRegistry | None = None


def shard_config(
    config: WalkConfig, graph: CSRGraph, num_shards: int
) -> list[WalkConfig]:
    """Split a walk configuration into per-worker shards.

    Walker counts are split as evenly as possible; explicit start
    vertices are partitioned contiguously; every shard gets a distinct
    derived seed so their random streams are independent.
    """
    if num_shards <= 0:
        raise ConfigError("num_shards must be positive")
    total = config.resolve_num_walkers(graph)
    if num_shards > total:
        num_shards = total
    starts = (
        config.resolve_starts(graph) if config.start_vertices is not None else None
    )

    shards = []
    boundaries = np.linspace(0, total, num_shards + 1).astype(int)
    for shard in range(num_shards):
        low, high = int(boundaries[shard]), int(boundaries[shard + 1])
        count = high - low
        if count == 0:
            continue
        if starts is not None:
            shard_starts = starts[low:high]
        elif config.start_distribution is None:
            # Preserve the paper's default placement: walker i starts
            # at vertex i mod |V|, globally across shards.
            shard_starts = (
                np.arange(low, high, dtype=np.int64) % graph.num_vertices
            )
        else:
            shard_starts = None
        shards.append(
            WalkConfig(
                num_walkers=count,
                max_steps=config.max_steps,
                termination_probability=config.termination_probability,
                start_vertices=shard_starts,
                start_distribution=(
                    config.start_distribution if shard_starts is None else None
                ),
                seed=(config.seed * 1_000_003 + shard) & 0x7FFFFFFF,
                record_paths=config.record_paths,
                static_sampler=config.static_sampler,
            )
        )
    return shards


def _run_shard(args):
    graph, program, shard_config_, deadline, index = args
    result = WalkEngine(graph, program, shard_config_).run(deadline=deadline)
    # Per-shard metric delta, built where the stats live (the worker
    # process) and shipped back over the result pipe for merging.
    delta = registry_from_walk_stats(result.stats, shard=str(index))
    return result.stats, result.paths, result.walkers.steps, result.status, delta


def run_parallel_walk(
    graph: CSRGraph,
    program: WalkerProgram,
    config: WalkConfig | None = None,
    num_workers: int = 2,
    deadline: Deadline | float | None = None,
    shard_timeout: float | None = None,
    max_restarts: int = 2,
    retry_budget: RetryBudget | None = None,
) -> ParallelWalkResult:
    """Run a walk sharded across ``num_workers`` processes.

    With ``num_workers=1`` everything runs in-process (no pool), which
    is also the fallback used by tests on constrained platforms.

    ``deadline`` (a :class:`~repro.service.deadline.Deadline` or a
    float budget in seconds) propagates to every shard engine; the
    merged result is tagged ``deadline_exceeded`` if any shard stopped
    early.  ``shard_timeout`` is the supervision backstop: a shard
    exceeding it is terminated and raised as
    :class:`~repro.errors.WorkerError` (use a deadline for graceful
    partials, the timeout for runaway shards).  A shard whose worker
    *dies* is restarted up to ``max_restarts`` times (gated by the
    optional shared ``retry_budget``) before ``WorkerError`` is raised.
    """
    config = config if config is not None else WalkConfig()
    if isinstance(deadline, (int, float)):
        deadline = Deadline(float(deadline))
    shards = shard_config(config, graph, num_workers)
    payloads = [
        (graph, program, shard, deadline, index)
        for index, shard in enumerate(shards)
    ]
    registry = MetricsRegistry()

    if len(shards) == 1 or num_workers == 1:
        outputs = [_run_shard(payload) for payload in payloads]
    else:
        pool = SupervisedPool(
            max_workers=len(shards),
            task_timeout=shard_timeout,
            max_restarts=max_restarts,
            retry_budget=retry_budget,
            registry=registry,
        )
        outputs = pool.run(
            _run_shard,
            payloads,
            describe=lambda index: (
                f"shard {index} (seed {shards[index].seed})"
            ),
        )

    merged = WalkStats()
    all_paths: list[np.ndarray] | None = [] if config.record_paths else None
    lengths = []
    status = "complete"
    for stats, paths, steps, shard_status, delta in outputs:
        registry.merge(delta)
        merged.counters.merge(stats.counters)
        merged.termination.by_step_limit += stats.termination.by_step_limit
        merged.termination.by_probability += stats.termination.by_probability
        merged.termination.by_dead_end += stats.termination.by_dead_end
        merged.total_steps += stats.total_steps
        merged.teleports += stats.teleports
        merged.full_scan_evaluations += stats.full_scan_evaluations
        merged.iterations = max(merged.iterations, stats.iterations)
        merged.wall_time_seconds = max(
            merged.wall_time_seconds, stats.wall_time_seconds
        )
        merged.init_time_seconds += stats.init_time_seconds
        if all_paths is not None and paths is not None:
            all_paths.extend(paths)
        lengths.append(steps)
        if shard_status == "deadline_exceeded":
            status = "deadline_exceeded"

    return ParallelWalkResult(
        stats=merged,
        paths=all_paths,
        walk_lengths=np.concatenate(lengths),
        num_workers=len(shards),
        status=status,
        metrics=registry,
    )
