"""Sampling substrate: alias tables, inverse transform sampling,
rejection sampling, and deterministic RNG management.

These are the three samplers the paper contrasts in sections 3-4:
alias and ITS pre-process *static* distributions; rejection sampling on
top of them makes *dynamic* (walker-dependent) distributions cheap.
"""

from repro.sampling.alias import AliasTable, VertexAliasTables, build_alias_arrays
from repro.sampling.its import VertexITSTables, its_sample_from_cdf
from repro.sampling.rejection import (
    OutlierSpec,
    RejectionSampler,
    SamplingCounters,
    expected_trials,
)
from repro.sampling.rng import derive_rng, make_rng, spawn_rngs
from repro.sampling.typed import TypedVertexAliasTables

__all__ = [
    "AliasTable",
    "VertexAliasTables",
    "build_alias_arrays",
    "VertexITSTables",
    "its_sample_from_cdf",
    "OutlierSpec",
    "RejectionSampler",
    "SamplingCounters",
    "expected_trials",
    "TypedVertexAliasTables",
    "make_rng",
    "spawn_rngs",
    "derive_rng",
]
