"""Alias-method sampling (Walker 1977, Vose's variant).

The alias method pre-processes a discrete distribution over ``n``
outcomes into ``n`` buckets, each holding at most two "pieces", such
that buckets have equal total mass (paper section 3, Figure 1b).
Sampling is then O(1): pick a bucket uniformly, then one of its two
pieces by a biased coin.

KnightKing uses per-vertex alias tables over the static transition
component Ps as the candidate-edge generator inside rejection sampling.
:class:`VertexAliasTables` stores every vertex's table in flat arrays
aligned with the CSR edge arrays, so batch sampling across thousands of
walkers at different vertices is a handful of numpy operations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph

__all__ = ["AliasTable", "VertexAliasTables", "build_alias_arrays"]


def build_alias_arrays(weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vose's algorithm: weights -> (prob, alias) arrays.

    ``prob[i]`` is the probability that bucket ``i`` resolves to
    outcome ``i`` (rather than to ``alias[i]``).  Runs in O(n).
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.size
    if n == 0:
        raise SamplingError("cannot build an alias table over zero outcomes")
    if weights.min() < 0:
        raise SamplingError("alias weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise SamplingError("alias weights must not all be zero")

    prob = np.empty(n, dtype=np.float64)
    alias = np.arange(n, dtype=np.int64)
    scaled = weights * (n / total)

    small = [i for i in range(n) if scaled[i] < 1.0]
    large = [i for i in range(n) if scaled[i] >= 1.0]
    while small and large:
        lo = small.pop()
        hi = large.pop()
        prob[lo] = scaled[lo]
        alias[lo] = hi
        scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0
        if scaled[hi] < 1.0:
            small.append(hi)
        else:
            large.append(hi)
    # Leftovers are exactly 1 up to floating-point error.
    for index in large:
        prob[index] = 1.0
    for index in small:
        prob[index] = 1.0
    return prob, alias


class AliasTable:
    """Alias table over a single discrete distribution."""

    def __init__(self, weights: np.ndarray) -> None:
        self._weights = np.asarray(weights, dtype=np.float64)
        self._prob, self._alias = build_alias_arrays(self._weights)

    @property
    def size(self) -> int:
        return self._prob.size

    @property
    def weights(self) -> np.ndarray:
        return self._weights

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one outcome index in O(1)."""
        bucket = int(rng.integers(0, self.size))
        if rng.random() < self._prob[bucket]:
            return bucket
        return int(self._alias[bucket])

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` outcomes, vectorised."""
        buckets = rng.integers(0, self.size, size=count)
        coins = rng.random(count)
        take_bucket = coins < self._prob[buckets]
        return np.where(take_bucket, buckets, self._alias[buckets])


class VertexAliasTables:
    """Per-vertex alias tables over each vertex's out-edge weights.

    The table of vertex ``v`` occupies the same flat index range as its
    CSR edge slice, so a sampled bucket maps directly to a flat edge
    index.  Build cost is O(|E|) total, matching the paper's O(n)
    per-vertex pre-processing bound.

    Parameters
    ----------
    graph:
        the graph whose static component to pre-process.
    static_weights:
        optional flat array of per-edge static components Ps.  Defaults
        to the graph's weights (or all-ones when unweighted) — the
        ``edgeStaticComp`` default of the paper's API.
    """

    def __init__(self, graph: CSRGraph, static_weights: np.ndarray | None = None) -> None:
        if static_weights is None:
            static_weights = (
                graph.weights
                if graph.weights is not None
                else np.ones(graph.num_edges, dtype=np.float64)
            )
        static_weights = np.asarray(static_weights, dtype=np.float64)
        if static_weights.size != graph.num_edges:
            raise SamplingError("static weights must align with graph edges")
        if graph.num_edges and static_weights.min() < 0:
            raise SamplingError("static weights must be non-negative")

        self._graph = graph
        self._static = static_weights
        self._prob = np.empty(graph.num_edges, dtype=np.float64)
        self._alias = np.empty(graph.num_edges, dtype=np.int64)
        self._totals = np.zeros(graph.num_vertices, dtype=np.float64)
        for vertex in range(graph.num_vertices):
            start, end = graph.edge_range(vertex)
            if start == end:
                continue
            slice_weights = static_weights[start:end]
            total = slice_weights.sum()
            self._totals[vertex] = total
            if total <= 0:
                # All-zero static weights: vertex is a dead end for
                # sampling purposes; mark buckets unusable.
                self._prob[start:end] = 0.0
                self._alias[start:end] = start
                continue
            prob, alias = build_alias_arrays(slice_weights)
            self._prob[start:end] = prob
            self._alias[start:end] = alias + start  # flatten local indices

    @classmethod
    def _from_state(
        cls,
        graph: CSRGraph,
        static_weights: np.ndarray,
        prob: np.ndarray,
        alias: np.ndarray,
        totals: np.ndarray,
    ) -> "VertexAliasTables":
        """Install pre-computed flat tables (incremental path).

        The caller (:mod:`repro.sampling.incremental`) guarantees the
        arrays equal what ``__init__`` would compute over ``graph``:
        untouched vertices' slices are copied (with flat alias indices
        shifted to the new layout) and touched vertices re-run Vose.
        """
        tables = cls.__new__(cls)
        tables._graph = graph
        tables._static = static_weights
        tables._prob = prob
        tables._alias = alias
        tables._totals = totals
        return tables

    @property
    def graph(self) -> CSRGraph:
        return self._graph

    @property
    def static_weights(self) -> np.ndarray:
        """The Ps array the tables were built over."""
        return self._static

    def total_static(self, vertex: int) -> float:
        """Sum of Ps over ``vertex``'s out-edges."""
        return float(self._totals[vertex])

    @property
    def totals(self) -> np.ndarray:
        """Per-vertex total static mass (|V|-length array)."""
        return self._totals

    def sample(self, vertex: int, rng: np.random.Generator) -> int:
        """Draw a flat edge index from ``vertex``'s static distribution.

        Raises :class:`SamplingError` on vertices without positive-mass
        out-edges (callers should treat those as walk termination).
        """
        start, end = self._graph.edge_range(vertex)
        if start == end or self._totals[vertex] <= 0:
            raise SamplingError(f"vertex {vertex} has no sampleable out-edges")
        bucket = start + int(rng.integers(0, end - start))
        if rng.random() < self._prob[bucket]:
            return bucket
        return int(self._alias[bucket])

    def sample_batch(
        self, vertices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorised :meth:`sample` for an array of vertices.

        All vertices must have at least one positive-mass out-edge.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self._graph.offsets[vertices]
        degrees = self._graph.offsets[vertices + 1] - starts
        if degrees.size and degrees.min() <= 0:
            raise SamplingError("sample_batch hit a vertex with no out-edges")
        buckets = starts + (rng.random(vertices.size) * degrees).astype(np.int64)
        coins = rng.random(vertices.size)
        take_bucket = coins < self._prob[buckets]
        return np.where(take_bucket, buckets, self._alias[buckets])
