"""Incremental sampler maintenance for dynamic graphs.

When an epoch commit touches a handful of vertices, rebuilding every
per-vertex sampling structure from scratch wastes O(|E|) work (and for
alias tables, an O(|E|) Python-level Vose pass — by far the most
expensive part of engine init).  This module rebuilds only the touched
vertices' slices and *byte-copies* everything else from the previous
epoch's tables, with the layout shift (CSR offsets move when degrees
change) applied to flat indices.

The contract is exact equality, not approximation: the incremental
result must be bit-identical to a from-scratch
:class:`~repro.sampling.alias.VertexAliasTables` /
:class:`~repro.sampling.its.VertexITSTables` build over the new graph.
That holds because both constructions are per-vertex decomposable —
Vose's algorithm only reads one vertex's slice, and the ITS CDF is a
strictly per-slice prefix sum (see
:func:`~repro.sampling.its.segmented_cumsum`) — so copying an untouched
slice *is* rebuilding it.

Because "must be equal" is an invariant worth defending at runtime, the
module also provides the self-verification half: re-derive sampled
vertices' slices from scratch and compare exactly.  The dynamic-graph
subsystem runs these checks per epoch (sampled or exhaustive), counts
mismatches in :class:`MaintenanceStats`, and falls back to a full
rebuild when a check fails.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.sampling.alias import VertexAliasTables, build_alias_arrays
from repro.sampling.its import VertexITSTables

__all__ = [
    "MaintenanceStats",
    "default_static_weights",
    "incremental_alias_tables",
    "incremental_its_tables",
    "slice_gather_map",
    "verify_alias_tables",
    "verify_its_tables",
]


@dataclass
class MaintenanceStats:
    """Counters of the incremental-maintenance machinery.

    Attributes
    ----------
    epochs_maintained:
        epochs whose tables were produced incrementally.
    vertices_rebuilt / vertices_copied:
        per-vertex work split: slices re-derived from scratch vs slices
        copied from the previous epoch's tables.
    full_rebuilds:
        table builds that ran from scratch (first build, a stale cache,
        or a verification fallback).
    verify_checks / verify_mismatches:
        self-verification probes executed and the ones that failed.
    verify_fallbacks:
        incremental builds discarded for a full rebuild because a probe
        failed — the graceful-degradation path.
    """

    epochs_maintained: int = 0
    vertices_rebuilt: int = 0
    vertices_copied: int = 0
    full_rebuilds: int = 0
    verify_checks: int = 0
    verify_mismatches: int = 0
    verify_fallbacks: int = 0

    def copy(self) -> "MaintenanceStats":
        return replace(self)

    def summary(self) -> str:
        return (
            f"maintenance: {self.epochs_maintained} incremental epochs, "
            f"{self.vertices_rebuilt} vertices rebuilt, "
            f"{self.vertices_copied} copied, "
            f"{self.full_rebuilds} full rebuilds, "
            f"{self.verify_checks} verify checks "
            f"({self.verify_mismatches} mismatches, "
            f"{self.verify_fallbacks} fallbacks)"
        )


def default_static_weights(graph: CSRGraph) -> np.ndarray:
    """The default static component Ps: edge weights, or all-ones.

    Matches what the samplers use when ``edge_static_comp`` returns
    ``None`` — the only case the incremental path maintains (a program
    with a custom static component gets a fresh build instead).
    """
    if graph.weights is not None:
        return graph.weights
    return np.ones(graph.num_edges, dtype=np.float64)


def slice_gather_map(
    old_offsets: np.ndarray,
    new_offsets: np.ndarray,
    vertices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Flat (src, dst) index arrays copying ``vertices``' edge slices.

    ``vertices`` must have identical degree under both layouts (they
    are the *untouched* vertices of an epoch); raises
    :class:`SamplingError` otherwise, because a silent mis-copy would
    corrupt every downstream sample.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    old_starts = old_offsets[vertices]
    new_starts = new_offsets[vertices]
    degrees = old_offsets[vertices + 1] - old_starts
    if not np.array_equal(degrees, new_offsets[vertices + 1] - new_starts):
        raise SamplingError(
            "slice_gather_map over vertices whose degree changed"
        )
    total = int(degrees.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    slice_bases = np.zeros(vertices.size, dtype=np.int64)
    np.cumsum(degrees[:-1], out=slice_bases[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(slice_bases, degrees)
    src = np.repeat(old_starts, degrees) + within
    dst = np.repeat(new_starts, degrees) + within
    return src, dst


def _untouched(num_vertices: int, touched: np.ndarray) -> np.ndarray:
    mask = np.ones(num_vertices, dtype=bool)
    mask[touched] = False
    return np.nonzero(mask)[0]


def incremental_alias_tables(
    prev: VertexAliasTables,
    graph: CSRGraph,
    static_weights: np.ndarray,
    touched: np.ndarray,
) -> VertexAliasTables:
    """Alias tables for ``graph``, reusing ``prev`` outside ``touched``.

    Touched vertices re-run Vose exactly as the from-scratch
    constructor does; untouched vertices' ``prob`` slices are copied
    and their flat ``alias`` indices shifted by the offset delta.
    """
    touched = np.asarray(touched, dtype=np.int64)
    old_graph = prev.graph
    prob = np.empty(graph.num_edges, dtype=np.float64)
    alias = np.empty(graph.num_edges, dtype=np.int64)
    totals = np.zeros(graph.num_vertices, dtype=np.float64)

    untouched = _untouched(graph.num_vertices, touched)
    src, dst = slice_gather_map(old_graph.offsets, graph.offsets, untouched)
    prob[dst] = prev._prob[src]
    shift = graph.offsets[untouched] - old_graph.offsets[untouched]
    degrees = np.diff(graph.offsets)
    alias[dst] = prev._alias[src] + np.repeat(shift, degrees[untouched])
    totals[untouched] = prev._totals[untouched]

    for vertex in touched:
        start, end = graph.edge_range(int(vertex))
        if start == end:
            continue
        slice_weights = static_weights[start:end]
        total = slice_weights.sum()
        totals[vertex] = total
        if total <= 0:
            prob[start:end] = 0.0
            alias[start:end] = start
            continue
        vose_prob, vose_alias = build_alias_arrays(slice_weights)
        prob[start:end] = vose_prob
        alias[start:end] = vose_alias + start
    return VertexAliasTables._from_state(
        graph, static_weights, prob, alias, totals
    )


def incremental_its_tables(
    prev: VertexITSTables,
    graph: CSRGraph,
    static_weights: np.ndarray,
    touched: np.ndarray,
) -> VertexITSTables:
    """ITS tables for ``graph``, reusing ``prev`` outside ``touched``.

    Per-vertex CDF slices are copied for untouched vertices (exact,
    because the CDF is strictly per-slice) and re-accumulated for
    touched ones; the global-coordinate arrays are re-derived by the
    shared install path, identical to a from-scratch build.
    """
    touched = np.asarray(touched, dtype=np.int64)
    old_graph = prev.graph
    cdf = np.empty(graph.num_edges, dtype=np.float64)
    totals = np.zeros(graph.num_vertices, dtype=np.float64)

    untouched = _untouched(graph.num_vertices, touched)
    src, dst = slice_gather_map(old_graph.offsets, graph.offsets, untouched)
    cdf[dst] = prev._cdf[src]
    totals[untouched] = prev._totals[untouched]

    for vertex in touched:
        start, end = graph.edge_range(int(vertex))
        if start == end:
            continue
        cdf[start:end] = np.cumsum(static_weights[start:end])
        totals[vertex] = cdf[end - 1]
    return VertexITSTables._from_state(graph, static_weights, cdf, totals)


def verify_alias_tables(
    tables: VertexAliasTables, vertices: np.ndarray
) -> list[int]:
    """Vertices whose alias slices differ from a from-scratch rebuild.

    Exact comparison, no tolerance: the incremental contract is bit
    identity, and any drift — however small — would desynchronise
    replays across processes.
    """
    graph = tables.graph
    static = tables.static_weights
    bad: list[int] = []
    for vertex in np.asarray(vertices, dtype=np.int64):
        vertex = int(vertex)
        start, end = graph.edge_range(vertex)
        if start == end:
            if tables._totals[vertex] != 0.0:
                bad.append(vertex)
            continue
        slice_weights = static[start:end]
        total = slice_weights.sum()
        if total <= 0:
            expected_prob = np.zeros(end - start)
            expected_alias = np.full(end - start, start, dtype=np.int64)
        else:
            expected_prob, local_alias = build_alias_arrays(slice_weights)
            expected_alias = local_alias + start
        if (
            tables._totals[vertex] != total
            or not np.array_equal(tables._prob[start:end], expected_prob)
            or not np.array_equal(tables._alias[start:end], expected_alias)
        ):
            bad.append(vertex)
    return bad


def verify_its_tables(
    tables: VertexITSTables, vertices: np.ndarray
) -> list[int]:
    """Vertices whose CDF slices differ from a from-scratch rebuild."""
    graph = tables.graph
    static = tables.static_weights
    bad: list[int] = []
    for vertex in np.asarray(vertices, dtype=np.int64):
        vertex = int(vertex)
        start, end = graph.edge_range(vertex)
        if start == end:
            if tables._totals[vertex] != 0.0:
                bad.append(vertex)
            continue
        expected = np.cumsum(static[start:end])
        if tables._totals[vertex] != (expected[-1] if end > start else 0.0):
            bad.append(vertex)
            continue
        if not np.array_equal(tables._cdf[start:end], expected):
            bad.append(vertex)
    return bad
