"""Inverse transform sampling (ITS) over per-vertex edge distributions.

ITS (paper section 3, Figure 1a) stores the cumulative distribution of
each vertex's out-edge weights as a prefix-sum array; sampling draws a
uniform value in ``[0, total)`` and binary-searches the CDF, costing
O(log n) per draw after O(n) pre-processing.

Two consumers in this reproduction use ITS:

* KnightKing itself can use ITS instead of alias as the static
  candidate generator (the engines accept either); and
* the Gemini baseline's two-phase sampler uses ITS in both phases, as
  described in the paper's evaluation setup (section 7.1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph

__all__ = ["VertexITSTables", "its_sample_from_cdf", "segmented_cumsum"]

# Degree cutoff for the rank-iteration segmented prefix sum: slices no
# longer than this are accumulated together, one vectorised pass per
# rank; longer slices get a direct per-slice ``np.cumsum``.  Both paths
# add the same float64 values in the same left-to-right order, so the
# result is bit-identical either way — the split is purely about not
# paying O(max_degree) passes for a handful of hub vertices.
_RANK_ITERATION_CUTOFF = 256


def segmented_cumsum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-slice inclusive prefix sums, slice ``i`` = ``[offsets[i], offsets[i+1])``.

    Bit-identical to running ``np.cumsum`` on every slice separately:
    each slice is accumulated strictly left-to-right in float64, with no
    cross-slice carry.  That per-slice decomposability is what lets the
    dynamic-graph path rebuild only touched vertices' CDFs and byte-copy
    the rest while remaining exactly equal to a from-scratch build.
    """
    values = np.asarray(values, dtype=np.float64)
    out = values.copy()
    starts = np.asarray(offsets[:-1], dtype=np.int64)
    degrees = np.asarray(offsets[1:], dtype=np.int64) - starts
    if out.size == 0 or degrees.size == 0:
        return out
    max_degree = int(degrees.max())
    small = degrees <= _RANK_ITERATION_CUTOFF
    for rank in range(1, min(max_degree, _RANK_ITERATION_CUTOFF)):
        sel = starts[small & (degrees > rank)] + rank
        if sel.size == 0:
            break
        out[sel] += out[sel - 1]
    for vertex in np.nonzero(~small)[0]:
        lo = starts[vertex]
        hi = lo + degrees[vertex]
        out[lo:hi] = np.cumsum(values[lo:hi])
    return out


def its_sample_from_cdf(cdf: np.ndarray, rng: np.random.Generator) -> int:
    """Sample an index from a single inclusive prefix-sum array."""
    total = float(cdf[-1])
    if total <= 0:
        raise SamplingError("ITS over an all-zero distribution")
    draw = rng.random() * total
    return int(np.searchsorted(cdf, draw, side="right"))


class VertexITSTables:
    """Per-vertex inclusive prefix sums over out-edge static weights.

    Layout matches :class:`~repro.sampling.alias.VertexAliasTables`:
    vertex ``v``'s CDF occupies its CSR edge slice in one flat array,
    with ``cdf[offsets[v+1]-1]`` equal to the vertex's total weight.
    """

    def __init__(self, graph: CSRGraph, static_weights: np.ndarray | None = None) -> None:
        if static_weights is None:
            static_weights = (
                graph.weights
                if graph.weights is not None
                else np.ones(graph.num_edges, dtype=np.float64)
            )
        static_weights = np.asarray(static_weights, dtype=np.float64)
        if static_weights.size != graph.num_edges:
            raise SamplingError("static weights must align with graph edges")
        if graph.num_edges and static_weights.min() < 0:
            raise SamplingError("static weights must be non-negative")

        self._graph = graph
        self._static = static_weights
        # Per-vertex prefix sums first (strictly per-slice, so a
        # dynamic-graph epoch can rebuild just the touched slices and
        # stay bit-identical to this from-scratch path), then the
        # global-coordinate arrays are *derived* from them.
        cdf = segmented_cumsum(static_weights, graph.offsets)
        degrees = graph.out_degrees()
        nonempty = degrees > 0
        totals = np.zeros(graph.num_vertices, dtype=np.float64)
        ends = graph.offsets[1:]
        totals[nonempty] = cdf[ends[nonempty] - 1]
        self._install(cdf, totals)

    def _install(self, cdf: np.ndarray, totals: np.ndarray) -> None:
        """Derive the global-coordinate arrays from per-vertex state.

        ``base[v]`` is the exclusive prefix sum of per-vertex totals and
        ``running`` shifts every slice into those global coordinates:
        batch sampling maps each draw to ``base[v] + u * total[v]`` and
        resolves every lane with one searchsorted.  Kept as a separate
        step so the incremental-maintenance path (new ``cdf``/``totals``
        with only touched slices rebuilt) derives them identically.
        """
        graph = self._graph
        self._cdf = cdf
        self._totals = totals
        base = np.zeros(graph.num_vertices, dtype=np.float64)
        np.cumsum(totals[:-1], out=base[1:])
        self._base = base
        degrees = np.diff(graph.offsets)
        self._running = cdf + np.repeat(base, degrees)

    @classmethod
    def _from_state(
        cls,
        graph: CSRGraph,
        static_weights: np.ndarray,
        cdf: np.ndarray,
        totals: np.ndarray,
    ) -> "VertexITSTables":
        """Install pre-computed per-vertex state (incremental path).

        The caller (:mod:`repro.sampling.incremental`) guarantees that
        ``cdf``/``totals`` equal what ``__init__`` would compute; the
        global-coordinate arrays are derived through the same
        :meth:`_install`, so the result is bit-identical to a
        from-scratch build.
        """
        tables = cls.__new__(cls)
        tables._graph = graph
        tables._static = static_weights
        tables._install(cdf, totals)
        return tables

    @property
    def graph(self) -> CSRGraph:
        return self._graph

    @property
    def static_weights(self) -> np.ndarray:
        return self._static

    def total_static(self, vertex: int) -> float:
        return float(self._totals[vertex])

    @property
    def totals(self) -> np.ndarray:
        """Per-vertex total static mass (|V|-length array)."""
        return self._totals

    def cdf_of(self, vertex: int) -> np.ndarray:
        """The inclusive prefix-sum slice of ``vertex``."""
        start, end = self._graph.edge_range(vertex)
        return self._cdf[start:end]

    def sample(self, vertex: int, rng: np.random.Generator) -> int:
        """Draw a flat edge index via binary search in O(log d)."""
        start, end = self._graph.edge_range(vertex)
        total = self._totals[vertex]
        if start == end or total <= 0:
            raise SamplingError(f"vertex {vertex} has no sampleable out-edges")
        draw = rng.random() * total
        return start + int(
            np.searchsorted(self._cdf[start:end], draw, side="right")
        )

    def sample_batch(
        self, vertices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorised :meth:`sample` via one global-CDF searchsorted.

        Each lane's draw is shifted into the coordinates of the global
        prefix sum (``base[v] + u * total[v]``), so a single C-level
        ``np.searchsorted`` resolves every lane's binary search at
        once.  Equivalent to the lane-parallel search kept as
        :meth:`_sample_batch_stepped` (the tests check edge-for-edge
        agreement under a shared RNG stream).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return np.zeros(0, dtype=np.int64)
        starts = self._graph.offsets[vertices]
        ends = self._graph.offsets[vertices + 1]
        if np.any(starts >= ends):
            raise SamplingError("sample_batch hit a vertex with no out-edges")
        totals = self._totals[vertices]
        if totals.min() <= 0:
            raise SamplingError("sample_batch hit an all-zero distribution")
        draws = self._base[vertices] + rng.random(vertices.size) * totals
        positions = np.searchsorted(self._running, draws, side="right")
        # Floating-point slack between the global prefix sum and the
        # per-vertex one can land a draw one bucket outside its slice.
        return np.clip(positions, starts, ends - 1)

    def _sample_batch_stepped(
        self, vertices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Reference lane-parallel binary search (pre-vectorisation).

        Kept because its per-lane arithmetic is the semantic spec for
        :meth:`sample_batch`: both consume one ``rng.random`` call of
        the batch size, so under a shared seed they must agree
        edge-for-edge (up to the same clamping rule).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return np.zeros(0, dtype=np.int64)
        low = self._graph.offsets[vertices].copy()
        high = self._graph.offsets[vertices + 1].copy()
        if np.any(low >= high):
            raise SamplingError("sample_batch hit a vertex with no out-edges")
        totals = self._totals[vertices]
        if totals.min() <= 0:
            raise SamplingError("sample_batch hit an all-zero distribution")
        draws = rng.random(vertices.size) * totals

        # Find the first index whose inclusive prefix sum exceeds draw.
        clamp = max(self._cdf.size - 1, 0)
        active = low < high
        while active.any():
            mid = (low + high) >> 1
            go_right = active & (self._cdf[np.minimum(mid, clamp)] <= draws)
            low = np.where(go_right, mid + 1, low)
            high = np.where(active & ~go_right, mid, high)
            active = low < high
        # Floating-point slack can push a draw past the last bucket.
        return np.minimum(low, self._graph.offsets[vertices + 1] - 1)
