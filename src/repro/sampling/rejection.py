"""Rejection sampling for dynamic random walk (paper section 4).

This module is the reference implementation of KnightKing's core idea:
sample a *candidate* edge from the pre-processed static distribution
Ps, then accept or reject it against the dynamic component Pd — so that
only the candidate's Pd is ever computed, instead of scanning all
out-edges to rebuild the full distribution.

The geometry (Figures 2 and 3 of the paper):

* the *envelope* ``y = Q(v)`` is a per-vertex constant upper-bounding
  every Pd value; a trial throws a dart uniformly under the envelope
  and accepts if it lands inside the candidate's probability bar;
* an optional *lower bound* ``y = L(v)`` pre-accepts darts that land on
  or below it without evaluating Pd at all (saving remote state queries
  for second-order walks);
* *outliers* — a few edges whose Pd towers above the rest — are folded:
  the envelope drops to the non-outlier maximum and each outlier's
  chopped upper part becomes an "appendix" region appended to the
  dartboard, visited with probability proportional to its (estimated)
  area and corrected on arrival.

Expected trials per sample follow the paper's equation (3):
``E = Q(v) * sum(Ps) / sum(Ps * Pd)`` — independent of vertex degree.

The scalar :class:`RejectionSampler` here is the semantic reference used
by the generic engine and the property-based tests; the vectorised
kernels in :mod:`repro.core.kernels` implement the same math in batch.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ProgramError, SamplingError
from repro.sampling.alias import VertexAliasTables
from repro.sampling.its import VertexITSTables

__all__ = [
    "OutlierSpec",
    "SamplingCounters",
    "RejectionSampler",
    "expected_trials",
]

StaticTables = VertexAliasTables | VertexITSTables

# Rejection sampling terminates with probability 1, but a buggy user
# program (e.g. an upper bound of +inf) could loop forever; cap trials
# at a value no legitimate distribution gets near.
DEFAULT_MAX_TRIALS = 1_000_000


@dataclass(frozen=True)
class OutlierSpec:
    """Declaration of one outlier edge to fold out of the envelope.

    Attributes
    ----------
    edge:
        flat edge index of the outlier.  The paper notes that users may
        not know the exact outlier edge; here the walker usually does
        (node2vec's outlier is the return edge to ``walker.prev``).
    pd_bound:
        upper bound on this edge's Pd; must be >= its true Pd.
    width:
        upper bound on the outlier's static mass Ps.  The appendix area
        is estimated as ``width * (pd_bound - envelope)`` and the
        correction on arrival divides the true chopped area by it.
    static_mass:
        the outlier's *exact* static mass, when known.  Defaults to the
        tables' Ps of ``edge``; node2vec passes the summed mass of all
        parallel return edges so folding stays exact on multigraphs.
    """

    edge: int
    pd_bound: float
    width: float = 1.0
    static_mass: float | None = None


@dataclass
class SamplingCounters:
    """Work counters, the machine-independent quantities the paper
    reports (Table 1, Table 5, Figure 6 all plot Pd evaluations/step)."""

    trials: int = 0
    pd_evaluations: int = 0
    pre_accepts: int = 0
    appendix_trials: int = 0
    accepts: int = 0

    def acceptance_rate(self) -> float | None:
        """Observed accepts/trials, or ``None`` before any trials.

        The fused multi-trial kernel sizes its speculation from this
        rate (see :func:`repro.core.kernels.adaptive_trial_count`)."""
        if self.trials <= 0:
            return None
        return self.accepts / self.trials

    def merge(self, other: "SamplingCounters") -> None:
        self.trials += other.trials
        self.pd_evaluations += other.pd_evaluations
        self.pre_accepts += other.pre_accepts
        self.appendix_trials += other.appendix_trials
        self.accepts += other.accepts

    def reset(self) -> None:
        self.trials = 0
        self.pd_evaluations = 0
        self.pre_accepts = 0
        self.appendix_trials = 0
        self.accepts = 0


def expected_trials(
    static_weights: np.ndarray, dynamic_values: np.ndarray, envelope: float
) -> float:
    """Paper equation (3): mean trials to accept one sample."""
    static_weights = np.asarray(static_weights, dtype=np.float64)
    dynamic_values = np.asarray(dynamic_values, dtype=np.float64)
    effective = float((static_weights * dynamic_values).sum())
    if effective <= 0:
        raise SamplingError("distribution has zero total mass")
    return envelope * float(static_weights.sum()) / effective


class RejectionSampler:
    """Scalar rejection sampler over a graph's static tables.

    Parameters
    ----------
    static_tables:
        pre-built :class:`VertexAliasTables` (O(1) candidate draws, the
        engine default) or :class:`VertexITSTables` (O(log d) draws).
    """

    def __init__(self, static_tables: StaticTables) -> None:
        self._tables = static_tables
        self._graph = static_tables.graph

    @property
    def graph(self):
        return self._graph

    def sample(
        self,
        vertex: int,
        rng: np.random.Generator,
        pd_of: Callable[[int], float],
        upper: float,
        lower: float = 0.0,
        outliers: Sequence[OutlierSpec] = (),
        counters: SamplingCounters | None = None,
        max_trials: int = DEFAULT_MAX_TRIALS,
    ) -> int:
        """Sample one out-edge of ``vertex``; returns its flat index.

        ``pd_of`` maps a flat edge index to its dynamic component Pd.
        ``upper`` is the envelope Q(v) for non-outlier edges; each
        declared outlier may exceed it up to its own ``pd_bound``.

        Raises :class:`ProgramError` if a Pd evaluation exceeds its
        declared bound (which would make the sampler silently wrong),
        and :class:`SamplingError` when the vertex has no out-edges or
        acceptance never happens within ``max_trials``.
        """
        for _ in range(max_trials):
            edge = self.try_once(
                vertex, rng, pd_of, upper, lower, outliers, counters
            )
            if edge is not None:
                return edge
        raise SamplingError(
            f"no acceptance after {max_trials} trials at vertex {vertex}; "
            "check the program's bounds against its Pd definition"
        )

    def try_once(
        self,
        vertex: int,
        rng: np.random.Generator,
        pd_of: Callable[[int], float],
        upper: float,
        lower: float = 0.0,
        outliers: Sequence[OutlierSpec] = (),
        counters: SamplingCounters | None = None,
    ) -> int | None:
        """A single rejection-sampling trial; ``None`` means rejected.

        This is the unit of work one engine iteration spends per
        second-order walker (paper section 5.1: a rejected walker is
        "stuck at their current vertex for the next iteration").
        """
        if upper <= 0:
            raise ProgramError("dynamic upper bound must be positive")
        if lower < 0 or lower > upper:
            raise ProgramError("lower bound must lie in [0, upper]")

        main_area = self._tables.total_static(vertex) * upper
        if main_area <= 0:
            raise SamplingError(f"vertex {vertex} has no sampleable out-edges")
        appendix_areas = [
            spec.width * (spec.pd_bound - upper) for spec in outliers
        ]
        for spec, area in zip(outliers, appendix_areas):
            if area < 0:
                raise ProgramError(
                    f"outlier bound {spec.pd_bound} below envelope {upper}"
                )
        total_area = main_area + sum(appendix_areas)

        if counters is not None:
            counters.trials += 1
        region = rng.random() * total_area
        if region < main_area:
            edge = self._main_trial(vertex, rng, pd_of, upper, lower, counters)
        else:
            edge = self._appendix_trial(
                region - main_area,
                appendix_areas,
                outliers,
                rng,
                pd_of,
                upper,
                counters,
            )
        if edge is not None and counters is not None:
            counters.accepts += 1
        return edge

    # ------------------------------------------------------------------
    def _main_trial(
        self,
        vertex: int,
        rng: np.random.Generator,
        pd_of: Callable[[int], float],
        upper: float,
        lower: float,
        counters: SamplingCounters | None,
    ) -> int | None:
        """One dart under the envelope; None means rejected."""
        edge = self._tables.sample(vertex, rng)
        dart = rng.random() * upper
        if dart <= lower:
            if counters is not None:
                counters.pre_accepts += 1
            return edge
        if counters is not None:
            counters.pd_evaluations += 1
        dynamic = pd_of(edge)
        if dynamic < 0:
            raise ProgramError("edgeDynamicComp returned a negative value")
        # Values above the envelope are legal only for declared
        # outliers; the main region still covers them up to the
        # envelope, so the comparison below stays correct.
        if dart <= dynamic:
            return edge
        return None

    def _appendix_trial(
        self,
        position: float,
        appendix_areas: Sequence[float],
        outliers: Sequence[OutlierSpec],
        rng: np.random.Generator,
        pd_of: Callable[[int], float],
        upper: float,
        counters: SamplingCounters | None,
    ) -> int | None:
        """A dart in an appendix region (the folded top of an outlier).

        Accept with probability
        ``Ps(e) * (Pd(e) - Q)+ / (width * (pd_bound - Q))`` — true
        chopped area over estimated appendix area — which corrects for
        both an over-estimated width and an over-estimated bound.
        """
        if counters is not None:
            counters.appendix_trials += 1
        index = 0
        remaining = position
        while index < len(appendix_areas) - 1 and remaining >= appendix_areas[index]:
            remaining -= appendix_areas[index]
            index += 1
        spec = outliers[index]
        estimated = appendix_areas[index]
        if estimated <= 0:
            return None
        if counters is not None:
            counters.pd_evaluations += 1
        dynamic = pd_of(spec.edge)
        if dynamic > spec.pd_bound:
            raise ProgramError(
                f"Pd {dynamic} exceeds declared outlier bound {spec.pd_bound}"
            )
        static = (
            spec.static_mass
            if spec.static_mass is not None
            else float(self._tables.static_weights[spec.edge])
        )
        if static > spec.width * (1.0 + 1e-12):
            raise ProgramError(
                f"Ps {static} exceeds declared outlier width {spec.width}"
            )
        chopped = static * max(dynamic - upper, 0.0)
        if rng.random() * estimated < chopped:
            return spec.edge
        return None
