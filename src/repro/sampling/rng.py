"""Deterministic random-stream management.

Every stochastic component in this library draws from a numpy
``Generator`` derived from a user seed through ``SeedSequence.spawn``,
so that results are reproducible run-to-run and independent across
components (walkers vs. graph generation vs. weight assignment) —
important when an experiment compares two engines on "the same walk
workload".
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "derive_rng"]


def make_rng(seed: int | None) -> np.random.Generator:
    """A fresh PCG64 generator; ``None`` seeds from the OS."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """``count`` independent generators derived from one seed."""
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_rng(seed: int, *keys: int) -> np.random.Generator:
    """A generator keyed on ``(seed, *keys)``.

    Distinct key tuples give statistically independent streams; the
    same tuple always gives the same stream.  Used to pin e.g. "the
    RNG of simulated node 3" without coordinating global draw order.
    """
    sequence = np.random.SeedSequence(entropy=seed, spawn_key=tuple(keys))
    return np.random.default_rng(sequence)
